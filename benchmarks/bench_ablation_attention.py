"""E8 — §2.3: attention variants (vertical [41], visibility [11], sparse [15]).

For a sweep of table sizes, reports the attended-pair count of each
attention pattern (the FLOPs proxy MATE's efficiency argument rests on)
and wall-clock of a forward pass per variant at fixed size.  Expected
shape: sparse/vertical attend to far fewer pairs than dense as tables
grow, at equal backbone size.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.models import (
    attention_flops_proxy,
    dense_mask,
    mate_head_masks,
    vertical_mask,
    visibility_mask,
)
from repro.tables import Table

from .conftest import print_table

SIZES = [(4, 3), (10, 4), (20, 5)]
VARIANTS = ["bert", "turl", "tabert", "mate"]


def grid_table(rows: int, cols: int) -> Table:
    return Table([f"col {c}" for c in range(cols)],
                 [[f"v {r} {c}" for c in range(cols)] for r in range(rows)],
                 table_id=f"g{rows}x{cols}")


def test_attended_pairs_sweep(benchmark, tokenizer, config):
    """FLOPs-proxy series per attention pattern vs table size."""
    model = create_model("bert", tokenizer, config=config, seed=0)
    heads = config.num_heads

    def experiment():
        rows = []
        for n_rows, n_cols in SIZES:
            batch, _ = model.batch([grid_table(n_rows, n_cols)])
            seq = batch.seq_len
            dense = attention_flops_proxy(
                np.repeat(dense_mask(batch), heads, axis=1))
            visibility = attention_flops_proxy(
                np.repeat(visibility_mask(batch), heads, axis=1))
            vertical = attention_flops_proxy(
                np.repeat(vertical_mask(batch), heads, axis=1))
            sparse = attention_flops_proxy(mate_head_masks(batch, heads))
            rows.append([f"{n_rows}x{n_cols}", seq, dense, visibility,
                         vertical, sparse,
                         f"{sparse / dense:.2f}"])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "E8: attended (q,k) pairs per attention pattern (lower = cheaper)",
        ["table", "seq len", "dense", "visibility (TURL)",
         "vertical (TaBERT)", "sparse (MATE)", "mate/dense"],
        rows,
    )
    # The sparsity advantage must grow with table size.
    ratios = [float(r[-1]) for r in rows]
    assert ratios[-1] < ratios[0]
    for row in rows:
        assert row[5] < row[2]  # sparse < dense everywhere


@pytest.mark.parametrize("name", VARIANTS)
def test_forward_latency(benchmark, name, tokenizer, config):
    """Wall-clock of one encoder forward per attention variant (20x5)."""
    model = create_model(name, tokenizer, config=config, seed=0)
    model.eval()
    batch, _ = model.batch([grid_table(20, 5)])

    from repro.nn import no_grad

    def forward():
        with no_grad():
            return model(batch)

    out = benchmark(forward)
    assert np.all(np.isfinite(out.data))
