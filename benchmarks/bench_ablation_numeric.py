"""E13 (extension) — §3.4's numeric failure mode, and a mitigation.

The hands-on session highlights "accurately representing numeric tables"
as a standing challenge.  This bench ablates the magnitude-aware numeric
channel (``EncoderConfig.numeric_features``) on column-type prediction
over numeric-heavy GitTables-style data: distinguishing `temperature`
from `pressure` from `hours-per-week` requires value magnitudes, which
subword tokens of digits barely expose.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import build_coltype_dataset, split_tables
from repro.tables import ColumnType, infer_schema
from repro.tasks import (
    ColumnTypePredictor,
    FinetuneConfig,
    build_label_set,
    finetune,
)

from .conftest import print_table


def numeric_column_examples(tables):
    """Column-type examples restricted to numeric columns."""
    examples = []
    for example in build_coltype_dataset(tables):
        schema = infer_schema(example.table)
        if schema[example.column] is ColumnType.NUMBER:
            examples.append(example)
    return examples


def test_numeric_channel_ablation(benchmark, git_corpus, tokenizer, config):
    train_tables, _, test_tables = split_tables(git_corpus)
    train = numeric_column_examples(train_tables)
    test = numeric_column_examples(test_tables)
    labels = build_label_set(train)

    def run(numeric_features: bool) -> dict[str, float]:
        model_config = dataclasses.replace(config,
                                           numeric_features=numeric_features)
        model = create_model("tapas", tokenizer, config=model_config, seed=0)
        predictor = ColumnTypePredictor(model, labels,
                                        np.random.default_rng(0))
        finetune(predictor, train,
                 FinetuneConfig(epochs=8, batch_size=8, learning_rate=3e-3))
        return predictor.evaluate(test)

    def experiment():
        return {"tokens only": run(False),
                "tokens + numeric channel": run(True)}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, f"{m['accuracy']:.3f}", f"{m['macro_f1']:.3f}"]
            for name, m in results.items()]
    print_table(
        f"E13: numeric-channel ablation on numeric-column typing "
        f"({len(train)} train / {len(test)} test columns, "
        f"{len(labels)} labels)",
        ["input channels", "accuracy", "macro-F1"],
        rows,
    )
    for metrics in results.values():
        assert 0.0 <= metrics["accuracy"] <= 1.0
