"""E7 — §2.3: structure-aware position embeddings (Herzig et al. [19]).

TAPAS's contribution at the input level is the extra row/column/segment
embedding channels.  Same backbone size, same QA task, flat positions
(BERT) vs. factored positions (TAPAS): the structure-aware model should
locate answer cells more accurately.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import build_qa_dataset, split_tables
from repro.tasks import CellSelectionQA, FinetuneConfig, finetune

from .conftest import print_table


def test_position_embedding_ablation(benchmark, wiki_corpus, tokenizer,
                                     config):
    """Cell-selection accuracy with flat vs row/column position channels."""
    train_tables, _, test_tables = split_tables(wiki_corpus[:60])
    rng = np.random.default_rng(0)
    train = build_qa_dataset(train_tables, rng, per_table=2)
    test = build_qa_dataset(test_tables, rng, per_table=2)

    def run(name: str) -> dict[str, float]:
        model = create_model(name, tokenizer, config=config, seed=0)
        qa = CellSelectionQA(model, np.random.default_rng(0))
        finetune(qa, train, FinetuneConfig(epochs=6, batch_size=8,
                                           learning_rate=3e-3))
        return qa.evaluate(test)

    def experiment():
        return {"bert (flat positions)": run("bert"),
                "tapas (row/col/segment)": run("tapas")}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, f"{m['cell_accuracy']:.3f}", f"{m['value_accuracy']:.3f}"]
            for name, m in results.items()]
    print_table(
        f"E7: position-embedding ablation on cell-selection QA "
        f"({len(train)} train / {len(test)} test)",
        ["model", "cell accuracy", "value accuracy"],
        rows,
    )
    for metrics in results.values():
        assert 0.0 <= metrics["cell_accuracy"] <= 1.0
