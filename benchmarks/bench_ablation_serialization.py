"""E6 — §2.2/§2.3: serialization ablation.

The survey notes input processing is "typically set without exploring the
different possible variations except for a few cases [9, 37]": row vs.
column serialization, context-first vs. table-first.  This bench runs that
comparison — same model, same task, varying only the serializer — on
table retrieval, the task most directly shaped by how table content is
linearized into the encoder.
"""

import numpy as np
import pytest

from repro.corpus import build_retrieval_dataset
from repro.models import TableBert
from repro.serialize import SERIALIZERS
from repro.tasks import BiEncoderRetriever, FinetuneConfig, finetune

from .conftest import print_table

SETTINGS = [
    ("row_major", True), ("row_major", False),
    ("column_major", True), ("column_major", False),
    ("template", True),
]


def test_serialization_ablation(benchmark, wiki_corpus, tokenizer, config):
    """Retrieval MRR per (serializer, context order) after equal training."""
    corpus = wiki_corpus[:40]
    examples = build_retrieval_dataset(corpus, np.random.default_rng(0))

    def run(serializer_name: str, context_first: bool) -> dict[str, float]:
        serializer = SERIALIZERS[serializer_name](
            tokenizer, max_tokens=config.max_position,
            context_first=context_first)
        model = TableBert(config, tokenizer, np.random.default_rng(0),
                          serializer=serializer)
        retriever = BiEncoderRetriever(model, corpus=corpus)
        finetune(retriever, examples,
                 FinetuneConfig(epochs=6, batch_size=8, learning_rate=3e-3))
        return retriever.evaluate(examples, corpus)

    def experiment():
        return {(name, first): run(name, first) for name, first in SETTINGS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, "context-first" if first else "table-first",
             f"{m['hits@1']:.3f}", f"{m['mrr']:.3f}"]
            for (name, first), m in results.items()]
    print_table(
        "E6: serialization × context order ablation on table retrieval "
        "(equal training budget)",
        ["serializer", "context order", "hits@1", "mrr"],
        rows,
    )
    for metrics in results.values():
        assert 0.0 <= metrics["mrr"] <= 1.0
    # Training must lift every variant well above the random-ranking MRR
    # (~ harmonic mean over 40 candidates ≈ 0.1).
    assert all(m["mrr"] > 0.2 for m in results.values())
