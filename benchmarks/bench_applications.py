"""E10 — §2.1: the applications sweep ("versatility" takeaway).

One fine-tuning run per surveyed task family — QA, fact verification,
retrieval, column types, imputation, text-to-SQL — on the same corpus with
the same encoder family, each reporting its standard metric.  This is the
table the tutorial's first take-away gestures at: a single representation
substrate serves every data application.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import (
    build_coltype_dataset,
    build_imputation_dataset,
    build_nli_dataset,
    build_qa_dataset,
    build_retrieval_dataset,
    build_text2sql_dataset,
    split_tables,
)
from repro.tasks import (
    BiEncoderRetriever,
    CellSelectionQA,
    ColumnTypePredictor,
    FinetuneConfig,
    LexicalRetriever,
    NliClassifier,
    SketchParser,
    ValueImputer,
    build_label_set,
    build_value_vocabulary_from_tables,
    finetune,
)

from .conftest import print_table

FT = FinetuneConfig(epochs=6, batch_size=8, learning_rate=3e-3, seed=0)


def test_applications_sweep(benchmark, wiki_corpus, tokenizer, config):
    train_tables, _, test_tables = split_tables(wiki_corpus[:60])
    rng = np.random.default_rng(0)

    def encoder():
        return create_model("tapas", tokenizer, config=config, seed=0)

    def run_qa():
        train = build_qa_dataset(train_tables, rng, per_table=2)
        test = build_qa_dataset(test_tables, rng, per_table=2)
        qa = CellSelectionQA(encoder(), np.random.default_rng(0))
        finetune(qa, train, FT)
        return "cell accuracy", qa.evaluate(test)["cell_accuracy"]

    def run_nli():
        train = build_nli_dataset(train_tables, rng, per_table=2)
        test = build_nli_dataset(test_tables, rng, per_table=2)
        clf = NliClassifier(encoder(), np.random.default_rng(0))
        finetune(clf, train, FT)
        return "accuracy", clf.evaluate(test)["accuracy"]

    def run_retrieval():
        examples = build_retrieval_dataset(wiki_corpus[:60],
                                           np.random.default_rng(0))
        retriever = BiEncoderRetriever(encoder(), corpus=wiki_corpus[:60])
        finetune(retriever, examples, FT)
        return "mrr", retriever.evaluate(examples, wiki_corpus[:60])["mrr"]

    def run_coltype():
        train = build_coltype_dataset(train_tables)
        test = build_coltype_dataset(test_tables)
        predictor = ColumnTypePredictor(encoder(), build_label_set(train),
                                        np.random.default_rng(0))
        finetune(predictor, train, FT)
        return "accuracy", predictor.evaluate(test)["accuracy"]

    def run_imputation():
        train = build_imputation_dataset(train_tables, rng, per_table=2)
        test = build_imputation_dataset(test_tables, rng, per_table=2)
        imputer = ValueImputer(
            encoder(),
            build_value_vocabulary_from_tables(train_tables, text_only=True),
            np.random.default_rng(0))
        finetune(imputer, train, FT)
        return "accuracy", imputer.evaluate(test)["accuracy"]

    def run_text2sql():
        train = build_text2sql_dataset(train_tables, rng, per_table=2)
        test = build_text2sql_dataset(test_tables, rng, per_table=2)
        parser = SketchParser(encoder(), np.random.default_rng(0))
        finetune(parser, train, FT)
        return "denotation acc", parser.evaluate(test)["denotation_accuracy"]

    tasks = {
        "question answering": run_qa,
        "fact verification (NLI)": run_nli,
        "table retrieval": run_retrieval,
        "column types (metadata)": run_coltype,
        "data imputation": run_imputation,
        "text-to-SQL": run_text2sql,
    }

    def experiment():
        return {name: fn() for name, fn in tasks.items()}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[task, metric, f"{value:.3f}"]
            for task, (metric, value) in results.items()]
    print_table(
        "E10: one encoder family across the surveyed application sweep",
        ["task", "metric", "hold-out score"],
        rows,
    )
    for _, value in results.values():
        assert 0.0 <= value <= 1.0


def test_retrieval_lexical_reference(benchmark, wiki_corpus):
    """BM25 reference point for the retrieval row of E10."""
    examples = build_retrieval_dataset(wiki_corpus[:60],
                                       np.random.default_rng(0))
    retriever = LexicalRetriever()

    def experiment():
        return retriever.evaluate(examples, wiki_corpus[:60])

    metrics = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("E10: BM25 lexical reference",
                ["metric", "score"],
                [[k, f"{v:.3f}"] for k, v in metrics.items()])
    assert metrics["mrr"] > 0.2
