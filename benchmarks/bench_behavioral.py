"""E14 (extension) — the behavioral test battery across the model zoo.

Runs the CheckList-style suite of :mod:`repro.eval.behavioral` (the
"family of data-driven basic tests" §2.4 asks for) over every encoder in
the zoo, including the extension models, and prints pass rates per test.
Expected shape: structure-aware models pass the INV battery at higher
rates than the flat baseline; MFT tests pass universally.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.eval import run_suite

from .conftest import print_table

MODELS = ["bert", "tapas", "turl", "mate", "tabbie", "tuta"]


def test_behavioral_battery(benchmark, wiki_corpus, tokenizer, config):
    probes = [t for t in wiki_corpus[:8] if t.num_rows >= 2]

    def experiment():
        reports = {}
        for name in MODELS:
            model = create_model(name, tokenizer, config=config, seed=0)
            reports[name] = run_suite(model, probes, seed=0)
        return reports

    reports = benchmark.pedantic(experiment, rounds=1, iterations=1)

    test_names = [r.name for r in next(iter(reports.values())).reports]
    rows = []
    for test_name in test_names:
        row = [test_name]
        for name in MODELS:
            report = next(r for r in reports[name].reports
                          if r.name == test_name)
            row.append(f"{report.pass_rate:.2f}")
        rows.append(row)
    print_table(
        "E14: behavioral suite pass rates (rows = tests, columns = models)",
        ["test"] + MODELS,
        rows,
    )

    for name, report in reports.items():
        for mft in report.by_kind("MFT"):
            assert mft.pass_rate == 1.0, f"{name} failed MFT {mft.name}"
