"""E14 — compiled tape-replay pretraining throughput and bit-equality.

Reruns the Fig. 2c workload (TURL, batch 8, the wiki corpus) with
``PretrainConfig(compile=True)``: the first step of each padded-batch
signature records the autograd tape into a flat program, every later
step replays it through the :class:`~repro.nn.compile.TapeExecutor` —
no Tensor/node construction, fused elementwise kernels, reused buffers.
The corpus is pinned to one batch signature so 23 of the 24 steps are
replays (steady state).

The correctness half — eager and compiled model state byte-identical —
is asserted unconditionally.  The ≥2x step-throughput half is asserted
only on machines with 4+ usable cores, mirroring ``bench_parallel``:
starved runners time-slice the BLAS pool and the baseline noise swamps
the dispatch-overhead savings being measured.
"""

import os
import time

import numpy as np
import pytest

from repro.core import create_model
from repro.parallel import FixedClock
from repro.pretrain import Pretrainer, PretrainConfig

from .conftest import print_table

STEPS = 24
BATCH_SIZE = 8
SPEEDUP_TARGET = 2.0


def run_pretraining(corpus, tokenizer, config,
                    compile_flag: bool) -> tuple[float, bytes, int]:
    """One seeded Fig. 2c run; returns (seconds, state bytes, programs)."""
    model = create_model("turl", tokenizer, config=config, seed=0)
    trainer = Pretrainer(model, PretrainConfig(
        steps=STEPS, batch_size=BATCH_SIZE, learning_rate=3e-3, seed=0,
        compile=compile_flag), clock=FixedClock())
    started = time.perf_counter()
    trainer.train(corpus)
    elapsed = time.perf_counter() - started
    checkpoint = trainer.capture()
    blob = b"".join(np.ascontiguousarray(v).tobytes()
                    for _, v in sorted(checkpoint.model_state.items()))
    programs = len(trainer._programs) if trainer._programs is not None else 0
    return elapsed, blob, programs


def test_compiled_throughput(benchmark, wiki_corpus, tokenizer, config):
    """Eager vs tape-replay throughput on the Fig. 2c workload."""
    corpus = wiki_corpus[:BATCH_SIZE]  # one padded signature -> replays
    results = {}

    def experiment():
        for compile_flag in (False, True):
            results[compile_flag] = run_pretraining(
                corpus, tokenizer, config, compile_flag)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    eager_s, eager_state, _ = results[False]
    compiled_s, compiled_state, programs = results[True]
    speedup = eager_s / compiled_s if compiled_s > 0 else float("inf")
    cores = os.cpu_count() or 1

    print_table(
        "E14: compiled tape-replay pretraining (Fig. 2c workload, TURL)",
        ["mode", "total s", "step ms", "speedup"],
        [["eager", f"{eager_s:.2f}",
          f"{eager_s / STEPS * 1e3:.1f}", "1.00x"],
         ["compiled", f"{compiled_s:.2f}",
          f"{compiled_s / STEPS * 1e3:.1f}", f"{speedup:.2f}x"]],
    )
    print(f"\nrecorded programs: {programs} "
          f"({STEPS - programs} of {STEPS} steps replayed)")

    # Correctness is unconditional: replay must not move one bit.
    assert compiled_state == eager_state, (
        "compiled model state diverged from eager")
    assert 1 <= programs < STEPS, (
        f"expected steady-state replay, recorded {programs} programs "
        f"over {STEPS} steps")

    # The throughput claim needs a machine where the eager baseline
    # isn't already starved for compute; below that, report only.
    if cores >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x step throughput from tape "
            f"replay on {cores} cores, measured {speedup:.2f}x")
    else:
        print(f"(speedup assertion skipped: {cores} usable core(s); "
              f"measured {speedup:.2f}x)")


def test_compiled_serving_latency(benchmark, wiki_corpus, tokenizer, config):
    """Forward-only replay: encoder latency with compiled inference."""
    model = create_model("turl", tokenizer, config=config, seed=0)
    batch, _ = model.batch(wiki_corpus[:BATCH_SIZE])

    def encode(runs: int) -> float:
        started = time.perf_counter()
        with model.inference():
            for _ in range(runs):
                model(batch)
        return time.perf_counter() - started

    def experiment():
        with model.inference():
            eager_out = model(batch).data.copy()
        eager_s = encode(16)
        model.enable_compiled_inference()
        with model.inference():
            compiled_out = model(batch).data.copy()  # records
        compiled_s = encode(16)
        return eager_s, compiled_s, eager_out, compiled_out

    eager_s, compiled_s, eager_out, compiled_out = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    ratio = eager_s / compiled_s if compiled_s > 0 else float("inf")
    print_table(
        "E14: forward-only encoding, batch of 8 tables",
        ["mode", "total s (16 runs)", "per batch ms", "speedup"],
        [["eager", f"{eager_s:.3f}", f"{eager_s / 16 * 1e3:.2f}", "1.00x"],
         ["compiled", f"{compiled_s:.3f}",
          f"{compiled_s / 16 * 1e3:.2f}", f"{ratio:.2f}x"]],
    )
    assert eager_out.tobytes() == compiled_out.tobytes(), (
        "compiled encoding diverged from eager")
