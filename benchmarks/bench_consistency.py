"""E11 — §2.4: the representation-consistency benchmark gap.

The survey closes by calling for "a new family of data-driven basic tests
[...] to measure the consistency of the data representation".  This bench
runs three such tests across the model zoo: row-permutation consistency,
value-substitution sensitivity, header-drop shift.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.eval import (
    header_drop_shift,
    row_permutation_consistency,
    value_substitution_sensitivity,
)

from .conftest import print_table

MODELS = ["bert", "tapas", "turl", "mate", "tabbie", "tuta"]


def test_consistency_suite(benchmark, wiki_corpus, tokenizer, config):
    probes = [t for t in wiki_corpus[:10] if t.num_rows >= 2]

    def run(name: str) -> dict[str, float]:
        model = create_model(name, tokenizer, config=config, seed=0)
        rng = np.random.default_rng(0)
        permutation = np.mean([row_permutation_consistency(model, t, rng)
                               for t in probes])
        sensitivity = np.mean([value_substitution_sensitivity(model, t, rng)
                               for t in probes])
        header_shift = np.mean([header_drop_shift(model, t) for t in probes])
        return {"permutation": float(permutation),
                "sensitivity": float(sensitivity),
                "header_shift": float(header_shift)}

    def experiment():
        return {name: run(name) for name in MODELS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[name, f"{r['permutation']:.3f}", f"{r['sensitivity']:.4f}",
             f"{r['header_shift']:.4f}"]
            for name, r in results.items()]
    print_table(
        "E11: representation consistency tests "
        "(permutation: ↑ better; sensitivity: ↑ better)",
        ["model", "row-permutation consistency", "value sensitivity",
         "header-drop shift"],
        rows,
    )
    for r in results.values():
        assert -1.0 <= r["permutation"] <= 1.0
        assert r["sensitivity"] >= 0.0
        # A representation that ignores cell values entirely is degenerate.
        assert r["sensitivity"] > 1e-6
