"""E1 — Fig. 1: the pretrain → fine-tune framework, pretrained vs scratch.

Pretrains TURL with MER over an entity-table corpus, then measures masked
entity imputation on cells never used for supervision — against the same
model without pretraining.  The paper's framework claim at miniature
scale: the pretrained representation transfers, the scratch one does not.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import build_imputation_dataset, split_tables
from repro.pretrain import Pretrainer, PretrainConfig
from repro.tasks import EntityImputer, FinetuneConfig, finetune

from .conftest import print_table


def test_pretrained_vs_scratch(benchmark, wiki_corpus, tokenizer, config):
    """The E1 headline: downstream benefit of unsupervised pretraining."""
    train_tables, _, _ = split_tables(wiki_corpus)
    rng = np.random.default_rng(7)
    labeled = [e for e in build_imputation_dataset(train_tables[:12], rng,
                                                   per_table=2)
               if e.answer_entity_id is not None]
    evaluation = [e for e in build_imputation_dataset(train_tables[12:], rng,
                                                      per_table=2)
                  if e.answer_entity_id is not None]

    def run(pretrain_steps: int) -> dict[str, float]:
        model = create_model("turl", tokenizer, config=config, seed=0)
        if pretrain_steps:
            Pretrainer(model, PretrainConfig(
                steps=pretrain_steps, batch_size=8, learning_rate=3e-3,
                mer_mask_probability=0.4, mask_probability=0.1,
            )).train(train_tables)
        imputer = EntityImputer(model)
        zero_shot = imputer.evaluate(evaluation)["accuracy"]
        finetune(imputer, labeled,
                 FinetuneConfig(epochs=4, batch_size=8, learning_rate=5e-4))
        tuned = imputer.evaluate(evaluation)["accuracy"]
        return {"zero_shot": zero_shot, "finetuned": tuned}

    def experiment():
        return {"scratch": run(0), "pretrained": run(250)}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name, f"{r['zero_shot']:.3f}", f"{r['finetuned']:.3f}"]
        for name, r in results.items()
    ]
    print_table(
        "E1 (Fig. 1): pretrain→fine-tune vs from-scratch "
        f"({len(labeled)} labels, {len(evaluation)} eval cells)",
        ["setting", "zero-shot acc", "fine-tuned acc"],
        rows,
    )
    # Shape check: pretraining gives a usable representation, scratch does not.
    assert results["pretrained"]["zero_shot"] >= results["scratch"]["zero_shot"]


def test_pretrain_step_cost(benchmark, wiki_corpus, tokenizer, config):
    """Wall-clock of one pretraining step (the unit the framework scales by)."""
    model = create_model("turl", tokenizer, config=config, seed=0)
    trainer = Pretrainer(model, PretrainConfig(steps=1, batch_size=8))
    model.train()
    benchmark(trainer.train_step, wiki_corpus)
