"""E2 — Fig. 2a / §3.1: off-the-shelf model inputs and outputs.

Regenerates the hands-on comparison of input formats and output encodings
across the model zoo: per model, its serialized input length on the Fig. 1
sample table, parameter count, structural channels, and encode latency.
"""

import numpy as np
import pytest

from repro.core import create_model

from .conftest import print_table

MODELS = ["bert", "tapas", "tabert", "turl", "mate", "tabbie", "tuta"]
_results: dict[str, dict] = {}


@pytest.mark.parametrize("name", MODELS)
def test_encode_offtheshelf(benchmark, name, tokenizer, config, fig1_table):
    """Time ``model.encode(table)`` — the Fig. 2a inference call."""
    model = create_model(name, tokenizer, config=config, seed=0)
    encoding = benchmark(model.encode, fig1_table)

    info = model.describe()
    _results[name] = {
        "tokens": len(encoding),
        "params": info["parameters"],
        "channels": "/".join("y" if info[k] else "n" for k in
                             ("row_embeddings", "column_embeddings",
                              "role_embeddings")),
        "cells": len(encoding.cell_embeddings),
        "dim": encoding.dim,
    }
    assert encoding.table_embedding.shape == (config.dim,)
    assert np.all(np.isfinite(encoding.token_embeddings))


def test_report(benchmark, tokenizer, config, fig1_table):
    """Print the Fig. 2a comparison table once all models ran."""
    def build_report():
        rows = []
        for name in MODELS:
            if name not in _results:  # run standalone: fill in
                model = create_model(name, tokenizer, config=config, seed=0)
                encoding = model.encode(fig1_table)
                info = model.describe()
                _results[name] = {
                    "tokens": len(encoding), "params": info["parameters"],
                    "channels": "-", "cells": len(encoding.cell_embeddings),
                    "dim": encoding.dim,
                }
            r = _results[name]
            rows.append([name, r["params"], r["tokens"], r["cells"],
                         r["dim"], r["channels"]])
        return rows

    rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    print_table(
        "E2 (Fig. 2a): off-the-shelf inputs and outputs",
        ["model", "params", "input tokens", "cell embeddings", "dim",
         "row/col/role"],
        rows,
    )
