"""E3 — Fig. 2b / §3.2: table processing and encoding.

Sweeps the serialization strategies over a grid of table sizes and reports
sequence length, truncation rate and cell-alignment preservation — the
input-processing trade-offs §3.2 demonstrates — plus serialization
throughput.
"""

import numpy as np
import pytest

from repro.serialize import SERIALIZERS
from repro.tables import Table

from .conftest import print_table

SIZES = [(3, 3), (8, 4), (20, 5), (60, 6)]


def grid_table(rows: int, cols: int) -> Table:
    header = [f"column {c}" for c in range(cols)]
    body = [[f"value {r} {c}" for c in range(cols)] for r in range(rows)]
    return Table(header, body, table_id=f"grid-{rows}x{cols}")


@pytest.mark.parametrize("name", sorted(SERIALIZERS))
def test_serialize_throughput(benchmark, name, tokenizer):
    """Time serializing a mid-size table with each strategy."""
    serializer = SERIALIZERS[name](tokenizer, max_tokens=192)
    table = grid_table(8, 4)
    out = benchmark(serializer.serialize, table)
    assert len(out) <= 192


def test_processing_grid(benchmark, tokenizer):
    """The Fig. 2b comparison: length / truncation / alignment per strategy."""
    def experiment():
        rows = []
        for name in sorted(SERIALIZERS):
            serializer = SERIALIZERS[name](tokenizer, max_tokens=192)
            for n_rows, n_cols in SIZES:
                table = grid_table(n_rows, n_cols)
                out = serializer.serialize(table)
                total_cells = n_rows * n_cols
                kept = len(out.cell_spans)
                rows.append([
                    name, f"{n_rows}x{n_cols}", len(out),
                    f"{out.truncated_cells / total_cells:.2f}",
                    f"{kept / total_cells:.2f}",
                    out.num_rows_serialized,
                ])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "E3 (Fig. 2b): serialization strategies vs table size (budget=192)",
        ["serializer", "table", "tokens", "truncated", "cells kept", "rows kept"],
        rows,
    )
    # Template serialization repeats headers per row → longer sequences on
    # the smallest (untruncated) table.
    smallest = {row[0]: int(row[2]) for row in rows
                if row[1] == f"{SIZES[0][0]}x{SIZES[0][1]}"}
    assert smallest["template"] >= smallest["row_major"]
    # Everything respects the token budget.
    assert all(int(row[2]) <= 192 for row in rows)
