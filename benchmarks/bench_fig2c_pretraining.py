"""E4 — Fig. 2c / §3.3: pretraining and output encoding.

Runs TURL pretraining with its two objectives and regenerates the
exercise's artefacts: loss curves per objective, masked-recovery accuracy
over steps, and the attention-entropy contrast between TURL's visibility
matrix and dense attention.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.models import dense_mask
from repro.pretrain import Pretrainer, PretrainConfig
from repro.viz import attention_entropy

from .conftest import print_table

STEPS = 120
REPORT_EVERY = 20


def test_pretraining_curves(benchmark, wiki_corpus, tokenizer, config):
    """Loss/accuracy series for MLM + MER joint pretraining."""
    def experiment():
        model = create_model("turl", tokenizer, config=config, seed=0)
        trainer = Pretrainer(model, PretrainConfig(
            steps=STEPS, batch_size=8, learning_rate=3e-3,
            mask_probability=0.15, mer_mask_probability=0.3, seed=0))
        history = trainer.train(wiki_corpus)
        return model, history

    model, history = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for start in range(0, STEPS, REPORT_EVERY):
        window = history[start:start + REPORT_EVERY]
        rows.append([
            f"{start}-{start + REPORT_EVERY - 1}",
            f"{np.mean([r.mlm_loss for r in window]):.3f}",
            f"{np.mean([r.mer_loss for r in window]):.3f}",
            f"{np.mean([r.mlm_accuracy for r in window]):.3f}",
            f"{np.mean([r.mer_accuracy for r in window]):.3f}",
        ])
    print_table(
        "E4 (Fig. 2c): TURL pretraining curves (MLM + MER)",
        ["steps", "mlm loss", "mer loss", "mlm acc", "mer acc"],
        rows,
    )

    first, last = history[:REPORT_EVERY], history[-REPORT_EVERY:]
    assert np.mean([r.mlm_loss for r in last]) < np.mean([r.mlm_loss for r in first])
    assert np.mean([r.mer_loss for r in last]) < np.mean([r.mer_loss for r in first])
    assert np.mean([r.mer_accuracy for r in last]) > np.mean(
        [r.mer_accuracy for r in first])

    # Attention-entropy report: the visibility matrix concentrates attention.
    batch, _ = model.batch(wiki_corpus[:2])
    model(batch)
    turl_entropy = np.mean([attention_entropy(m)
                            for m in model.encoder.attention_maps()])
    bert = create_model("bert", tokenizer, config=config, seed=0)
    bert_batch, _ = bert.batch(wiki_corpus[:2])
    bert(bert_batch)
    bert_entropy = np.mean([attention_entropy(m)
                            for m in bert.encoder.attention_maps()])
    print_table(
        "E4: mean attention entropy (nats)",
        ["model", "entropy"],
        [["turl (visibility matrix)", f"{turl_entropy:.3f}"],
         ["bert (dense, untrained)", f"{bert_entropy:.3f}"]],
    )
    assert turl_entropy < bert_entropy


def test_masking_throughput(benchmark, wiki_corpus, tokenizer, config):
    """Cost of producing one masked batch (the §3.3 masking procedure)."""
    from repro.pretrain import combine_masking, mask_for_mer, mask_for_mlm
    model = create_model("turl", tokenizer, config=config, seed=0)
    batch, serialized = model.batch(wiki_corpus[:8])
    rng = np.random.default_rng(0)

    def mask_once():
        mlm = mask_for_mlm(batch, serialized, tokenizer.vocab, rng)
        mer = mask_for_mer(batch, serialized, tokenizer.vocab, rng)
        return combine_masking(mlm, mer)

    masked = benchmark(mask_once)
    assert masked.batch.token_ids.shape == batch.token_ids.shape
