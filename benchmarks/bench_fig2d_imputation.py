"""E5 — Fig. 2d / §3.4: fine-tuning for data imputation + failure analysis.

Fine-tunes a value imputer on WikiTables-style and GitTables-style corpora
and reports hold-out accuracy/F1 with the sliced failure analysis the
exercise performs: numeric vs textual tables, descriptive vs missing
headers.  Expected shape: textual/entity cells are imputable, numeric
cells are near-impossible, headerless tables degrade.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import build_imputation_dataset, split_tables
from repro.eval import header_slicer, numeric_table_slicer, sliced_accuracy
from repro.tasks import (
    FinetuneConfig,
    ValueImputer,
    build_value_vocabulary_from_tables,
    finetune,
)

from .conftest import print_table


def run_corpus(corpus, tokenizer, config, text_cells_only):
    train_tables, _, test_tables = split_tables(corpus)
    rng = np.random.default_rng(0)
    train = build_imputation_dataset(train_tables, rng, per_table=3,
                                     text_cells_only=text_cells_only)
    test = build_imputation_dataset(test_tables, rng, per_table=3,
                                    text_cells_only=text_cells_only)
    vocabulary = build_value_vocabulary_from_tables(
        train_tables, text_only=text_cells_only)
    model = create_model("tapas", tokenizer, config=config, seed=0)
    imputer = ValueImputer(model, vocabulary, np.random.default_rng(0))
    finetune(imputer, train, FinetuneConfig(epochs=10, batch_size=8,
                                            learning_rate=3e-3))
    metrics = imputer.evaluate(test)
    predictions = [p.label for p in imputer.predict(test)]
    golds = [e.answer_text for e in test]
    tables_of = [e.table for e in test]
    return metrics, predictions, golds, tables_of


def test_imputation_by_corpus(benchmark, wiki_corpus, git_corpus, tokenizer,
                              config):
    """Main Fig. 2d table: imputation quality per corpus with slices."""
    def experiment():
        results = {}
        results["wikitables"] = run_corpus(wiki_corpus, tokenizer, config,
                                           text_cells_only=True)
        results["gittables"] = run_corpus(git_corpus, tokenizer, config,
                                          text_cells_only=True)
        results["gittables+numeric"] = run_corpus(
            git_corpus, tokenizer, config, text_cells_only=False)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [[name, f"{m['accuracy']:.3f}", f"{m['macro_f1']:.3f}",
             f"{m['coverage']:.2f}"]
            for name, (m, *_rest) in results.items()]
    print_table(
        "E5 (Fig. 2d): hold-out imputation per corpus",
        ["corpus", "accuracy", "macro-F1", "gold coverage"],
        rows,
    )

    slice_rows = []
    for name, (_, predictions, golds, tables_of) in results.items():
        for slicer_name, slicer in (("numeric", numeric_table_slicer),
                                    ("header", header_slicer)):
            for label, acc in sorted(
                    sliced_accuracy(tables_of, predictions, golds,
                                    slicer).items()):
                slice_rows.append([name, f"{slicer_name}:{label}",
                                   f"{acc:.3f}"])
    print_table("E5: failure analysis slices", ["corpus", "slice", "accuracy"],
                slice_rows)

    # Shape: adding numeric cells to the task hurts (the paper's numeric
    # failure mode).
    text_only = results["gittables"][0]["accuracy"]
    with_numeric = results["gittables+numeric"][0]["accuracy"]
    assert with_numeric <= text_only + 1e-9


def test_imputer_prediction_latency(benchmark, wiki_corpus, tokenizer,
                                    small_config):
    """Per-batch prediction cost of the fine-tuned artefact."""
    train_tables, _, _ = split_tables(wiki_corpus)
    rng = np.random.default_rng(0)
    examples = build_imputation_dataset(train_tables[:6], rng, per_table=2)
    vocabulary = build_value_vocabulary_from_tables(train_tables,
                                                    text_only=True)
    model = create_model("tapas", tokenizer, config=small_config, seed=0)
    imputer = ValueImputer(model, vocabulary, np.random.default_rng(0))
    imputer.eval()
    benchmark(imputer.predict, examples[:8])
