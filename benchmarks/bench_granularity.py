"""E9 — §2.3: output representation granularity.

"The Output Model Representation has different granularity depending on
the intended downstream task, i.e., cell, row, column or table
representations."  This bench probes that claim directly: a 1-nearest-
neighbour column-type probe using column vectors vs. table vectors vs.
the [CLS]-free token mean — matching granularity to the task should win.
"""

import numpy as np
import pytest

from repro.core import create_model
from repro.corpus import build_coltype_dataset, split_tables
from repro.pretrain import Pretrainer, PretrainConfig

from .conftest import print_table


def probe_accuracy(vectors_train, labels_train, vectors_test, labels_test):
    """1-NN classification accuracy with cosine similarity."""
    train = np.asarray(vectors_train, dtype=np.float64)
    test = np.asarray(vectors_test, dtype=np.float64)
    train = train / (np.linalg.norm(train, axis=1, keepdims=True) + 1e-9)
    test = test / (np.linalg.norm(test, axis=1, keepdims=True) + 1e-9)
    hits = 0
    for vector, gold in zip(test, labels_test):
        nearest = int(np.argmax(train @ vector))
        hits += labels_train[nearest] == gold
    return hits / max(1, len(labels_test))


def test_granularity_probe(benchmark, wiki_corpus, tokenizer, config):
    """Column-type 1-NN probe at three representation granularities."""
    train_tables, _, test_tables = split_tables(wiki_corpus[:60])
    train_examples = build_coltype_dataset(train_tables)
    test_examples = build_coltype_dataset(test_tables)

    def experiment():
        model = create_model("tapas", tokenizer, config=config, seed=0)
        # Brief MLM pretraining so representations carry content signal.
        Pretrainer(model, PretrainConfig(steps=60, batch_size=8,
                                         learning_rate=3e-3)).train(train_tables)

        def collect(examples):
            by_granularity = {"column": [], "table": [], "token-mean": []}
            labels = []
            for example in examples:
                encoding = model.encode(example.table)
                if example.column not in encoding.column_embeddings:
                    continue
                by_granularity["column"].append(
                    encoding.column_embeddings[example.column])
                by_granularity["table"].append(encoding.table_embedding)
                by_granularity["token-mean"].append(
                    encoding.token_embeddings.mean(axis=0))
                labels.append(example.label)
            return by_granularity, labels

        train_vecs, train_labels = collect(train_examples)
        test_vecs, test_labels = collect(test_examples)
        return {
            granularity: probe_accuracy(train_vecs[granularity], train_labels,
                                        test_vecs[granularity], test_labels)
            for granularity in train_vecs
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[granularity, f"{accuracy:.3f}"]
            for granularity, accuracy in results.items()]
    print_table(
        "E9: column-type 1-NN probe per representation granularity",
        ["granularity", "accuracy"],
        rows,
    )
    # Matching granularity (column vectors for a column task) must beat the
    # table-level vector, which cannot distinguish columns at all.
    assert results["column"] > results["table"]
