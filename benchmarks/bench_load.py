"""E15 — replicated serving under Zipf-popularity table traffic.

Replays a synthetic multi-user workload against the full serving tier
(:class:`repro.serve.ReplicatedFrontend`): requests over every served
task head, tables drawn Zipf-popularity style (a few hot tables take
most of the traffic — the regime where the content-addressed
:class:`EncodingCache` pays off or thrashes), clients closed-loop so
queue depth stays realistic.  Three gates:

1. **Differential** (unconditional): every response from the replicated
   front-end is byte-identical — label and score — to the single-process
   :class:`InferenceEngine` answering the same traffic, for every task
   head.  Replication must never move a bit.
2. **Tail SLO** (unconditional): with a per-request deadline configured,
   the p99 latency of answered requests stays under the deadline (the
   front-end late-fails anything slower, so this checks the shed/deadline
   machinery is actually wired) and nothing hangs.
3. **Throughput** (hardware-gated like ``bench_parallel``): ≥2x
   requests-per-second at 4 replicas vs the single-process engine, only
   asserted on 4+ usable cores; below that the table still prints.

Overload behaviour — burst past the admission bound → structured,
retryable ``overloaded`` sheds mapping to HTTP 503 — is asserted
unconditionally as gate 4.

``--quick`` (the CI `serve-load` job) shrinks the request count, not the
gates.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.corpus import (
    ColumnTypeExample,
    ImputationExample,
    NLIExample,
    QAExample,
    RetrievalExample,
    Text2SqlExample,
)
from repro.models import Tapas
from repro.runtime import MetricsRegistry, using_registry
from repro.serve import (
    FrontendConfig,
    InferenceEngine,
    ReplicatedFrontend,
    ServeConfig,
    build_predictor,
    json_safe_label,
)
from repro.serve.requests import SERVED_TASKS
from repro.serve.server import _ERROR_STATUS

from .conftest import print_table

ZIPF_EXPONENT = 1.1
REPLICAS = 4
DEADLINE_SECONDS = 30.0
SPEEDUP_TARGET = 2.0

_QUESTIONS = ["what is the highest value?", "how many entries are there?",
              "what is the lowest value?"]
_STATEMENTS = ["the first row is the largest", "every value is positive",
               "the table has three columns"]


def _zipf_traffic(tables, count: int, seed: int = 0):
    """``count`` submissions over every task head; tables drawn by rank
    popularity (rank r with probability ∝ r^-s)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(tables) + 1, dtype=float)
    popularity = ranks ** -ZIPF_EXPONENT
    popularity /= popularity.sum()
    submissions = []
    for i in range(count):
        table = tables[int(rng.choice(len(tables), p=popularity))]
        task = SERVED_TASKS[i % len(SERVED_TASKS)]
        if task == "qa":
            example = QAExample(table, _QUESTIONS[i % 3], None, ())
        elif task == "nli":
            example = NLIExample(table, _STATEMENTS[i % 3], 0)
        elif task == "imputation":
            example = ImputationExample(
                table, int(rng.integers(table.num_rows)),
                int(rng.integers(table.num_columns)), "")
        elif task == "coltype":
            example = ColumnTypeExample(table, i % table.num_columns, "")
        elif task == "retrieval":
            example = RetrievalExample(query=_QUESTIONS[i % 3],
                                       positive_table_id="")
        else:
            example = Text2SqlExample(table, _QUESTIONS[i % 3], None)
        submissions.append((task, example))
    return submissions


@pytest.fixture(scope="module")
def serving(wiki_corpus, config, tokenizer, quick):
    corpus = wiki_corpus[: 8 if quick else 16]
    count = 48 if quick else 144

    def build_engine() -> InferenceEngine:
        encoder = Tapas(config, tokenizer, np.random.default_rng(0))
        rng = np.random.default_rng(0)
        predictors = {task: build_predictor(task, encoder, corpus, rng)
                      for task in SERVED_TASKS}
        return InferenceEngine(
            predictors, ServeConfig(max_batch=8, cache_entries=256))

    return build_engine, _zipf_traffic(corpus, count)


def _percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = int(q / 100.0 * len(ordered) + 0.5)
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


def test_replicated_is_byte_identical_per_task(serving):
    """Gate 1: the fleet answers exactly like one engine, task by task."""
    build_engine, traffic = serving
    reference = build_engine().process(traffic)
    frontend = ReplicatedFrontend(
        build_engine(),
        FrontendConfig(replicas=2, max_queue=len(traffic), max_batch=8))
    with frontend:
        results = frontend.process(traffic, timeout=600)
    mismatches = []
    for (task, _), expected, got in zip(traffic, reference, results):
        if "error" in got:
            mismatches.append((task, "error", got["error"]))
            continue
        if (got["label"] != json_safe_label(expected.prediction.label)
                or got["score"] != expected.prediction.score):
            mismatches.append((task, expected.prediction, got))
    assert mismatches == [], mismatches[:5]
    replicas_used = {r["replica"] for r in results}
    assert replicas_used - {-1}, "no request was answered by a replica"


def test_load_throughput_and_tail_slo(benchmark, serving):
    """Gates 2–3: closed-loop Zipf load — RPS, p50/p99, deadline bound."""
    build_engine, traffic = serving
    clients = 4
    measurements = {}

    def closed_loop(frontend):
        """Each client thread owns a slice and runs it sequentially."""
        outputs = [None] * len(traffic)

        def client(offset: int) -> None:
            for i in range(offset, len(traffic), clients):
                ticket = frontend.submit(*traffic[i])
                ticket.wait(DEADLINE_SECONDS + 60.0)
                outputs[i] = ReplicatedFrontend.result_payload(ticket)

        threads = [threading.Thread(target=client, args=(offset,))
                   for offset in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - started, outputs

    def experiment():
        # Single-process baseline: the one-engine loop every client
        # would otherwise share.
        engine = build_engine()
        engine.process(traffic[:2])                      # warm-up
        started = time.perf_counter()
        for submission in traffic:
            engine.process([submission])
        measurements["single_s"] = time.perf_counter() - started

        with using_registry(MetricsRegistry()) as registry:
            frontend = ReplicatedFrontend(build_engine(), FrontendConfig(
                replicas=REPLICAS, max_queue=len(traffic),
                deadline_seconds=DEADLINE_SECONDS, max_batch=8))
            with frontend:
                frontend.process(traffic[:2], timeout=600)   # warm-up
                elapsed, outputs = closed_loop(frontend)
                measurements["fleet"] = frontend.healthz()
            measurements["replicated_s"] = elapsed
            measurements["outputs"] = outputs
            measurements["registry"] = registry
        return measurements

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    outputs = measurements["outputs"]
    answered = [o for o in outputs if o is not None and "error" not in o]
    failed = [o for o in outputs if o is not None and "error" in o]
    latencies = [o["latency_seconds"] for o in answered]
    single_rps = len(traffic) / measurements["single_s"]
    replicated_rps = len(traffic) / measurements["replicated_s"]
    speedup = replicated_rps / single_rps
    p50, p99 = _percentile(latencies, 50.0), _percentile(latencies, 99.0)
    cores = os.cpu_count() or 1

    print_table(
        f"E15: Zipf serving load — {len(traffic)} requests, "
        f"{len(SERVED_TASKS)} tasks, {clients} clients",
        ["mode", "total s", "req/s", "p50 ms", "p99 ms", "speedup"],
        [["single-process", f"{measurements['single_s']:.2f}",
          f"{single_rps:.1f}", "-", "-", "1.00x"],
         [f"{REPLICAS} replicas", f"{measurements['replicated_s']:.2f}",
          f"{replicated_rps:.1f}", f"{p50 * 1e3:.0f}", f"{p99 * 1e3:.0f}",
          f"{speedup:.2f}x"]])

    # Gate 2: every request resolved; the tail sits under the deadline.
    assert len(answered) + len(failed) == len(traffic)
    assert failed == [], f"{len(failed)} requests failed: {failed[:3]}"
    assert p99 <= DEADLINE_SECONDS, (
        f"p99 {p99:.2f}s exceeded the {DEADLINE_SECONDS:g}s deadline")
    registry = measurements["registry"]
    timer = registry.timer("serve.frontend.latency_seconds")
    assert timer.percentile(99.0) <= DEADLINE_SECONDS
    # Zipf repeats dedup across the fleet (affinity routing pins tables).
    assert measurements["fleet"]["cache"]["hits"] > 0

    # Gate 3: the speedup claim needs hardware that can actually run the
    # replicas concurrently; below 4 cores, report without asserting.
    if cores >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x req/s at {REPLICAS} replicas "
            f"on {cores} cores, measured {speedup:.2f}x")
    else:
        print(f"\n(speedup assertion skipped: {cores} usable core(s); "
              f"measured {speedup:.2f}x)")


def test_overload_sheds_structured_retryable(serving):
    """Gate 4: burst past the admission bound → retryable 503 sheds."""
    build_engine, traffic = serving
    bound = 8
    burst = traffic[: min(len(traffic), 40)]
    with using_registry(MetricsRegistry()) as registry:
        frontend = ReplicatedFrontend(
            build_engine(), FrontendConfig(max_queue=bound))
        with frontend:
            tickets = frontend.submit_many(burst)
            shed = [t for t in tickets if t.done() and t.error is not None]
            kept = [t for t in tickets if t not in shed]
            for ticket in kept:
                assert ticket.wait(600)
        assert len(shed) == len(burst) - bound
        for ticket in shed:
            assert ticket.error["code"] == "overloaded"
            assert ticket.error["retryable"] is True
            assert _ERROR_STATUS[ticket.error["code"]] == 503
        for ticket in kept:
            assert ticket.response is not None, ticket.error
        assert registry.counter("serve.frontend.shed").value == len(shed)
    print_table(
        "E15: overload shedding — burst vs admission bound",
        ["burst", "bound", "admitted", "shed (503 retryable)"],
        [[str(len(burst)), str(bound), str(len(kept)), str(len(shed))]])
