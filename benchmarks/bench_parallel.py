"""E13 — data-parallel pretraining throughput and bit-equality.

Reruns the Fig. 2c workload (TURL, batch 8, the wiki corpus) through
``repro.parallel`` and reports step throughput for workers ∈ {1, 4}
plus the engine's telemetry (shard/reduce time, imbalance).  The
correctness half — checkpoint bytes identical across worker counts — is
asserted unconditionally; the ≥2x speedup half only where the hardware
can physically provide it (4+ usable cores), since on a 1-core runner
the forked workers time-slice one CPU and IPC overhead dominates.
"""

import os
import time

import numpy as np
import pytest

from repro.core import create_model
from repro.parallel import FixedClock, ParallelConfig
from repro.pretrain import Pretrainer, PretrainConfig
from repro.runtime import MetricsRegistry, using_registry

from .conftest import print_table

STEPS = 24
BATCH_SIZE = 8
SHARD_SIZE = 2
SPEEDUP_TARGET = 2.0


def run_pretraining(wiki_corpus, tokenizer, config,
                    workers: int) -> tuple[float, bytes, MetricsRegistry]:
    """One seeded Fig. 2c run; returns (seconds, checkpoint bytes, registry)."""
    model = create_model("turl", tokenizer, config=config, seed=0)
    trainer = Pretrainer(model, PretrainConfig(
        steps=STEPS, batch_size=BATCH_SIZE, learning_rate=3e-3, seed=0,
        parallel=ParallelConfig(workers=workers, shard_size=SHARD_SIZE)),
        clock=FixedClock())
    registry = MetricsRegistry()
    with using_registry(registry):
        started = time.perf_counter()
        trainer.train(wiki_corpus)
        elapsed = time.perf_counter() - started
    checkpoint = trainer.capture()
    blob = b"".join(np.ascontiguousarray(v).tobytes()
                    for _, v in sorted(checkpoint.model_state.items()))
    return elapsed, blob, registry


def test_parallel_throughput(benchmark, wiki_corpus, tokenizer, config,
                             tmp_path):
    """Serial-vs-4-worker throughput on the Fig. 2c workload."""
    results = {}

    def experiment():
        for workers in (1, 4):
            results[workers] = run_pretraining(
                wiki_corpus, tokenizer, config, workers)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    serial_s, serial_state, _ = results[1]
    parallel_s, parallel_state, registry = results[4]
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    shard_ms = registry.histogram("parallel.shard_ms")
    reduce_ms = registry.histogram("parallel.reduce_ms")
    imbalance = registry.histogram("parallel.imbalance")
    cores = os.cpu_count() or 1

    print_table(
        "E13: data-parallel pretraining (Fig. 2c workload, TURL)",
        ["workers", "total s", "step ms", "speedup"],
        [["1", f"{serial_s:.2f}", f"{serial_s / STEPS * 1e3:.1f}", "1.00x"],
         ["4", f"{parallel_s:.2f}", f"{parallel_s / STEPS * 1e3:.1f}",
          f"{speedup:.2f}x"]],
    )
    print_table(
        "E13: engine telemetry (workers=4)",
        ["metric", "mean", "max"],
        [["parallel.shard_ms", f"{shard_ms.mean:.2f}",
          f"{shard_ms.max_value:.2f}"],
         ["parallel.reduce_ms", f"{reduce_ms.mean:.3f}",
          f"{reduce_ms.max_value:.3f}"],
         ["parallel.imbalance", f"{imbalance.mean:.3f}",
          f"{imbalance.max_value:.3f}"]],
    )

    # Correctness is unconditional: worker count must not move one bit.
    assert serial_state == parallel_state, (
        "workers=4 model state diverged from workers=1")
    assert shard_ms.count == STEPS * (BATCH_SIZE // SHARD_SIZE)

    # The speedup claim needs hardware that can actually run 4 shard
    # computations concurrently; below that, report without asserting.
    if cores >= 4:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x step throughput at 4 workers "
            f"on {cores} cores, measured {speedup:.2f}x")
    else:
        print(f"\n(speedup assertion skipped: {cores} usable core(s); "
              f"measured {speedup:.2f}x)")


def test_engine_overhead_at_one_worker(benchmark, wiki_corpus, tokenizer,
                                       small_config):
    """The workers=1 engine path must stay close to the fused loop."""
    def run(parallel):
        model = create_model("turl", tokenizer, config=small_config, seed=0)
        trainer = Pretrainer(model, PretrainConfig(
            steps=8, batch_size=BATCH_SIZE, seed=0, parallel=parallel),
            clock=FixedClock())
        started = time.perf_counter()
        trainer.train(wiki_corpus)
        return time.perf_counter() - started

    def experiment():
        return (run(None),
                run(ParallelConfig(workers=1, shard_size=SHARD_SIZE)))

    fused_s, engine_s = benchmark.pedantic(experiment, rounds=1, iterations=1)
    ratio = engine_s / fused_s if fused_s > 0 else float("inf")
    print_table(
        "E13: workers=1 engine overhead vs fused loop",
        ["path", "total s", "ratio"],
        [["fused (parallel=None)", f"{fused_s:.2f}", "1.00x"],
         ["engine (workers=1)", f"{engine_s:.2f}", f"{ratio:.2f}x"]],
    )
    # Sharded forwards lose some batch-level BLAS efficiency; 3x is the
    # alarm threshold for a regression, not a performance target.
    assert ratio < 3.0, f"workers=1 engine path is {ratio:.2f}x fused"
