"""Runtime-telemetry overhead smoke bench.

Verifies the central promise of :mod:`repro.runtime`: instrumentation
costs nothing measurable until someone turns it on.  Three configurations
of the same encoder forward+backward workload are timed:

- ``disabled``  — no tape hook installed (the production fast path);
- ``profiled``  — inside :func:`repro.runtime.profile`;
- ``telemetry`` — step telemetry emitted to an in-memory sink.

The disabled path must sit well under the profiled path, and the whole
suite doubles as the marker-gated check that a metrics-enabled pipeline
run produces a parseable JSONL artifact.
"""

import json
import time

import numpy as np
import pytest

from repro.core import create_model, run_imputation_pipeline
from repro.nn import get_tape_hook
from repro.runtime import profile
from repro.pretrain import PretrainConfig
from repro.tasks import FinetuneConfig

from .conftest import print_table

TRIALS = 9


def _workload(model, batch):
    hidden = model(batch)
    loss = (hidden * hidden).mean()
    loss.backward()
    model.zero_grad()


def _interleaved_medians(disabled_fn, profiled_fn,
                         trials: int = TRIALS) -> tuple[float, float]:
    """Alternate A/B samples so clock drift hits both modes equally."""
    disabled_samples, profiled_samples = [], []
    for _ in range(trials):
        start = time.perf_counter()
        disabled_fn()
        disabled_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        profiled_fn()
        profiled_samples.append(time.perf_counter() - start)
    return (float(np.median(disabled_samples)),
            float(np.median(profiled_samples)))


def test_disabled_path_overhead(benchmark, wiki_corpus, tokenizer,
                                small_config):
    """Per-op hook check must be invisible next to the numpy math."""
    model = create_model("bert", tokenizer, config=small_config, seed=0)
    batch, _ = model.batch(wiki_corpus[:4])
    model.train()
    _workload(model, batch)  # warm caches before timing

    assert get_tape_hook() is None

    def profiled_once():
        with profile(emit=False) as prof:
            _workload(model, batch)
        assert prof.total_calls > 0

    disabled, profiled = benchmark.pedantic(
        lambda: _interleaved_medians(lambda: _workload(model, batch),
                                     profiled_once),
        rounds=1, iterations=1)

    print_table(
        "runtime telemetry overhead (encoder fwd+bwd)",
        ["mode", "median s", "vs disabled"],
        [["disabled", f"{disabled:.4f}", "1.00x"],
         ["profiled", f"{profiled:.4f}", f"{profiled / disabled:.2f}x"]],
    )
    # The disabled fast path does strictly less work per op than the
    # profiled one; the margin only absorbs scheduler/clock noise.
    assert disabled <= profiled * 1.25


@pytest.mark.metrics
def test_pipeline_metrics_artifact_parseable(wiki_corpus, tokenizer,
                                             small_config, tmp_path):
    """A metrics-enabled pipeline run must yield a parseable JSONL file."""
    path = tmp_path / "pipeline-metrics.jsonl"
    run_imputation_pipeline(
        wiki_corpus[:20], model_name="bert", tokenizer=tokenizer,
        config=small_config,
        pretrain_config=PretrainConfig(steps=3, batch_size=4),
        finetune_config=FinetuneConfig(epochs=1, batch_size=8),
        metrics_out=path)
    events = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = {event["kind"] for event in events}
    assert "train_step" in kinds and "pipeline_run" in kinds
    sources = {e.get("source") for e in events if e["kind"] == "train_step"}
    assert sources == {"pretrain", "finetune"}
    for event in events:
        if event["kind"] == "train_step":
            assert {"step", "loss", "lr", "grad_norm",
                    "wall_time", "tokens"} <= set(event)
