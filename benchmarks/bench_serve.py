"""Serving-engine throughput bench: single vs batched vs batched+cached.

A repeated-table workload (the table-QA serving pattern: many clients
asking the same questions of the same tables) is answered three ways:

- ``single``          one request per forward, no cache — the naive loop;
- ``batched``         micro-batches of 8, no cache;
- ``batched+cached``  the full :class:`repro.serve.InferenceEngine`:
  micro-batching plus the content-addressed encoding cache.

The acceptance bar is batched+cached ≥ 3× the single-request throughput,
which falls out of the arithmetic: 80 requests over 8 distinct
(table, question) pairs cost 80 serializations and 80 padded forwards
singly, but only 8 of each through the engine — every repeat is a
content-hash hit that skips both tokenization and the transformer.
"""

import time

import numpy as np
import pytest

from repro.corpus import build_qa_dataset
from repro.models import Tapas
from repro.serve import InferenceEngine, ServeConfig
from repro.tasks import CellSelectionQA

from .conftest import print_table

REPEATS = 10         # times each distinct request recurs in the workload
DISTINCT = 8         # distinct (table, question) pairs


@pytest.fixture(scope="module")
def workload(wiki_corpus, config, tokenizer):
    tables = wiki_corpus[:4]
    examples = build_qa_dataset(tables, np.random.default_rng(0),
                                per_table=2)[:DISTINCT]
    assert len(examples) == DISTINCT
    requests = [examples[i % DISTINCT] for i in range(DISTINCT * REPEATS)]
    # The full-size bench config: serving wins scale with forward cost,
    # so the encoder must look like a model, not a toy.
    encoder = Tapas(config, tokenizer, np.random.default_rng(0))
    qa = CellSelectionQA(encoder, np.random.default_rng(0))
    return qa, requests


def _throughput(fn, requests) -> tuple[float, float]:
    start = time.perf_counter()
    responses = fn(requests)
    elapsed = time.perf_counter() - start
    assert len(responses) == len(requests)
    return len(requests) / elapsed, elapsed


def test_serving_throughput(workload):
    qa, requests = workload

    def single(reqs):
        qa.encoder.set_encoding_cache(None)
        out = []
        for request in reqs:
            out.extend(qa.predict([request], batch_size=1))
        return out

    def batched(reqs):
        qa.encoder.set_encoding_cache(None)
        return qa.predict(reqs, batch_size=8)

    engine = InferenceEngine({"qa": qa},
                             ServeConfig(max_batch=8, cache_entries=64))

    def batched_cached(reqs):
        # single()/batched() detached the engine-installed cache; restore it.
        qa.encoder.set_encoding_cache(engine.cache)
        return engine.process([("qa", r) for r in reqs])

    # Warm-up outside the timed region (BLAS init, tokenizer caches).
    single(requests[:2])

    single_tput, single_s = _throughput(single, requests)
    batched_tput, batched_s = _throughput(batched, requests)
    cached_tput, cached_s = _throughput(batched_cached, requests)

    rows = [
        ["single", f"{single_s * 1e3:.0f}", f"{single_tput:.1f}", "1.0x"],
        ["batched", f"{batched_s * 1e3:.0f}", f"{batched_tput:.1f}",
         f"{batched_tput / single_tput:.1f}x"],
        ["batched+cached", f"{cached_s * 1e3:.0f}", f"{cached_tput:.1f}",
         f"{cached_tput / single_tput:.1f}x"],
    ]
    print_table(
        f"Serving throughput — {len(requests)} requests, "
        f"{DISTINCT} distinct, micro-batch 8",
        ["mode", "total ms", "req/s", "speedup"], rows)

    # The engine saw every repeat after the first as a cache hit.
    assert engine.cache.misses == DISTINCT
    assert engine.cache.hits == len(requests) - DISTINCT

    # Pure numpy batching is roughly a wash (BLAS already saturates one
    # matmul, and padding to the longest sequence wastes flops), so only
    # sanity-bound it; the acceptance bar is on batching+caching.
    assert batched_tput > 0.5 * single_tput
    assert cached_tput >= 3.0 * single_tput, (
        f"batched+cached {cached_tput:.1f} req/s < 3x single "
        f"{single_tput:.1f} req/s")

    # Answers agree across modes (same weights, same inputs).
    single_labels = [p.label for p in single(requests[:DISTINCT])]
    cached_labels = [r.prediction.label
                     for r in batched_cached(requests[:DISTINCT])]
    assert single_labels == cached_labels
