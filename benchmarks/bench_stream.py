"""E16 — bounded-memory streamed corpora vs materialized lists.

The streaming layer's resource claim: consuming a large corpus through
the shard protocol holds only one shard's tables resident, so peak RSS
stays flat in corpus size, while materializing the same corpus grows
linearly.  The bench regenerates that curve and gates on it:

1. **Peak memory** (unconditional): a subprocess consuming the
   10k-table git corpus (3k under ``--quick``) through
   ``iter_tables()`` must peak *measurably* below a subprocess holding
   the materialized list — strictly lower and by at least
   ``_MIN_MARGIN_KB``.  Each mode runs in its own interpreter because
   the peak is a process-lifetime high-water mark.
2. **Identity** (unconditional): both subprocesses fold the identical
   row count, so the memory win is not bought by skipping tables.

The table also reports wall time and throughput per mode, and the
shard-window cache counters for a bounded in-process sweep.
"""

import subprocess
import sys
from pathlib import Path

from repro.corpus import GitTableStream, ShardWindow

from .conftest import print_table

#: "Measurably below": the streamed peak must undercut the materialized
#: peak by at least this many KiB (probe data shows ~10 MB at 3k tables
#: and ~34 MB at 10k; 4 MB keeps headroom for allocator noise).
_MIN_MARGIN_KB = 4 * 1024

#: Children report ``VmHWM`` from /proc/self/status, not ``ru_maxrss``:
#: on Linux the getrusage high-water mark lives in ``signal_struct`` and
#: survives ``execve``, so a child forked from a fat bench process would
#: inherit the parent's peak as a floor.  ``VmHWM`` is per-``mm`` and
#: resets on exec, so it sees only the child's own footprint.
_PEAK_KB = """\
def peak_kb():
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmHWM:"):
                return int(line.split()[1])
    raise RuntimeError("VmHWM missing from /proc/self/status")
"""

_CHILD = """\
import sys, time

mode, size = sys.argv[1], int(sys.argv[2])
from repro.corpus import GitTableStream

{peak_kb}

stream = GitTableStream(size, seed=0, shard_tables=64)
start = time.perf_counter()
rows = 0
if mode == "materialized":
    tables = stream.materialize()
    for table in tables:
        rows += table.num_rows
else:
    for table in stream.iter_tables():
        rows += table.num_rows
elapsed = time.perf_counter() - start
print(rows, peak_kb(), elapsed)
""".format(peak_kb=_PEAK_KB)


def consume_in_subprocess(tmp_path: Path, mode: str, size: int):
    """Run one consumption pass in a fresh interpreter.

    Returns ``(rows, peak_rss_kb, elapsed_s)`` as reported by the child
    itself — measuring from the parent would aggregate both modes into
    one high-water mark.
    """
    script = tmp_path / "consume.py"
    script.write_text(_CHILD)
    src = str(Path(__file__).resolve().parents[1] / "src")
    result = subprocess.run(
        [sys.executable, str(script), mode, str(size)],
        capture_output=True, text=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"}, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    out = result.stdout.split()
    return int(out[0]), int(out[1]), float(out[2])


def test_streamed_peak_rss_below_materialized(tmp_path, quick):
    size = 3_000 if quick else 10_000
    results = {mode: consume_in_subprocess(tmp_path, mode, size)
               for mode in ("materialized", "streamed")}

    rows = [[mode, size, folded, f"{peak / 1024:.1f}",
             f"{elapsed:.2f}", f"{size / elapsed:,.0f}"]
            for mode, (folded, peak, elapsed) in results.items()]
    print_table(
        f"E16: peak RSS, {size:,}-table git corpus",
        ["mode", "tables", "rows folded", "peak MB", "secs", "tables/s"],
        rows,
    )

    mat_rows, mat_peak, _ = results["materialized"]
    str_rows, str_peak, _ = results["streamed"]
    # Gate 2: same corpus was actually consumed in both modes.
    assert str_rows == mat_rows
    # Gate 1: bounded-memory claim, with margin.
    assert str_peak + _MIN_MARGIN_KB <= mat_peak, (
        f"streamed peak {str_peak} KB is not measurably below "
        f"materialized peak {mat_peak} KB (margin {_MIN_MARGIN_KB} KB)")


def test_shard_window_stays_bounded(quick):
    """A full sequential sweep through a bounded window never holds more
    than ``max_shards`` shards and generates each shard exactly once."""
    size = 1_000 if quick else 4_000
    stream = GitTableStream(size, seed=0, shard_tables=64)
    window = ShardWindow(stream, max_shards=4)
    for index in range(size):
        window.table(index)

    print_table(
        "E16: shard-window counters, sequential sweep",
        ["shards", "resident", "generated", "evicted", "hits"],
        [[stream.num_shards, len(window), window.generated,
          window.evicted, window.hits]],
    )
    assert len(window) <= 4
    assert window.generated == stream.num_shards
    assert window.evicted == stream.num_shards - len(window)


def test_streamed_training_holds_rss_flat(tmp_path):
    """Peak RSS of a short streamed pretraining run is within noise of
    the same run over a 4x larger stream — the trainer's footprint is
    set by the shard window, not the corpus size."""
    script = tmp_path / "train.py"
    script.write_text(
        "import sys\n"
        + _PEAK_KB +
        "from repro.corpus import KnowledgeBase, WikiTableStream\n"
        "from repro.core import build_tokenizer_for_tables\n"
        "from repro.core import create_model\n"
        "from repro.models import EncoderConfig\n"
        "from repro.parallel import FixedClock\n"
        "from repro.pretrain import Pretrainer, PretrainConfig\n"
        "size = int(sys.argv[1])\n"
        "kb = KnowledgeBase(seed=0)\n"
        "stream = WikiTableStream(kb, size, seed=0, shard_tables=64)\n"
        "tokenizer = build_tokenizer_for_tables(stream.head_tables(64),\n"
        "                                       vocab_size=600)\n"
        "config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=16,\n"
        "                       num_heads=2, num_layers=1, hidden_dim=32,\n"
        "                       max_position=128,\n"
        "                       num_entities=kb.num_entities)\n"
        "model = create_model('bert', tokenizer, config=config, seed=0)\n"
        "trainer = Pretrainer(model, PretrainConfig(steps=4, batch_size=4,\n"
        "                                           seed=0),\n"
        "                     clock=FixedClock())\n"
        "trainer.train(stream)\n"
        "print(peak_kb())\n"
    )
    src = str(Path(__file__).resolve().parents[1] / "src")
    peaks = {}
    for size in (512, 2048):
        peaks[size] = int(subprocess.run(
            [sys.executable, str(script), str(size)],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            timeout=300,
        ).stdout)

    print_table(
        "E16: streamed pretraining peak RSS vs corpus size",
        ["corpus tables", "peak MB"],
        [[size, f"{peak / 1024:.1f}"] for size, peak in peaks.items()],
    )
    # 4x the corpus must cost well under 4x the memory: flat within 25%.
    assert peaks[2048] <= peaks[512] * 1.25, peaks
