"""E12 — §2.3 / TAPEX [27]: pretraining a neural SQL executor.

Trains the encoder-decoder on executor-labelled (query, table, denotation)
triples and reports denotation accuracy against the symbolic executor as
training progresses — the learning-to-execute curve of the TAPEX paper at
miniature scale.  The symbolic executor is the 1.0 reference line.
"""

import numpy as np
import pytest

from repro.models import Tapex
from repro.nn import Adam
from repro.sql import denotation_text, generate_labeled_queries

from .conftest import print_table

EPOCH_CHECKPOINTS = (0, 20, 40, 60)


def test_learning_to_execute(benchmark, wiki_corpus, tokenizer, config):
    tables = wiki_corpus[:5]
    rng = np.random.default_rng(0)
    dataset = []
    for table in tables:
        for query, denotation in generate_labeled_queries(table, 4, rng):
            dataset.append((table, query.render(),
                            denotation_text(denotation)))

    def normalize(text: str) -> str:
        # Compare in token space so "a, b" ≡ "a , b" (decoder spacing).
        return tokenizer.decode(tokenizer.encode(text))

    def experiment():
        model = Tapex(config, tokenizer, np.random.default_rng(0),
                      max_answer_tokens=10)
        optimizer = Adam(model.parameters(), lr=5e-3)
        batch_tables = [t for t, _, _ in dataset]
        batch_queries = [q for _, q, _ in dataset]
        batch_answers = [a for _, _, a in dataset]

        def denotation_accuracy():
            correct = sum(model.generate(t, q) == normalize(a)
                          for t, q, a in dataset)
            return correct / len(dataset)

        curve = {}
        for epoch in range(max(EPOCH_CHECKPOINTS) + 1):
            if epoch in EPOCH_CHECKPOINTS:
                curve[epoch] = denotation_accuracy()
            optimizer.zero_grad()
            loss = model.loss(batch_tables, batch_queries, batch_answers)
            loss.backward()
            optimizer.step()
        curve[max(EPOCH_CHECKPOINTS) + 1] = denotation_accuracy()
        return curve

    curve = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[epoch, f"{accuracy:.3f}", "1.000"]
            for epoch, accuracy in sorted(curve.items())]
    print_table(
        f"E12: neural executor denotation accuracy vs epochs "
        f"({len(dataset)} training triples)",
        ["epoch", "neural executor", "symbolic executor (oracle)"],
        rows,
    )
    epochs = sorted(curve)
    assert curve[epochs[-1]] > curve[epochs[0]]
    assert curve[epochs[-1]] >= 0.4  # learns at least the frequent patterns
