"""Shared fixtures for the benchmark harness.

Each bench file regenerates one experiment from DESIGN.md's experiment
index (E1–E12) and prints the corresponding rows/series.  Heavyweight
resources (knowledge base, corpora, tokenizer) are session-scoped so the
suite stays fast.

Every bench run also produces one machine-readable JSONL metrics
artifact (step telemetry, profile stats, and the printed result tables)
under ``benchmarks/artifacts/`` — override the location with the
``REPRO_BENCH_METRICS`` environment variable.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import build_tokenizer_for_tables
from repro.corpus import KnowledgeBase, generate_git_corpus, generate_wiki_corpus
from repro.models import EncoderConfig
from repro.runtime import JsonlSink, get_registry
from repro.tables import Table, TableContext


def pytest_addoption(parser):
    """``--quick``: CI smoke sizing for the load bench (fewer requests,
    same gates).  ``--sanitize-threads``: run the whole bench session
    under the runtime lock sanitizer and fail on any violation."""
    parser.addoption("--quick", action="store_true", default=False,
                     help="run load benches at CI smoke scale")
    parser.addoption("--sanitize-threads", action="store_true",
                     default=False,
                     help="wrap every lock created during the session in "
                          "the runtime lock sanitizer; fail the session "
                          "on lock-order violations")


@pytest.fixture(scope="session")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="session", autouse=True)
def session_lock_sanitizer(request):
    """Optionally sanitize the whole bench session (``--sanitize-threads``).

    The sanitizer installs before any bench builds its serving stack, so
    cache/front-end/queue/registry locks are all wrapped; at teardown any
    recorded lock-order inversion fails the session with its witness.
    """
    if not request.config.getoption("--sanitize-threads"):
        yield None
        return
    from repro.analysis import LockSanitizer

    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
    assert sanitizer.violations == [], sanitizer.render_report()


@pytest.fixture(scope="session", autouse=True)
def bench_metrics_artifact():
    """Capture the whole bench session's telemetry as one JSONL file."""
    override = os.environ.get("REPRO_BENCH_METRICS")
    if override:
        path = Path(override)
    else:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        path = Path(__file__).parent / "artifacts" / f"metrics-{stamp}.jsonl"
    registry = get_registry()
    sink = registry.add_sink(JsonlSink(path))
    try:
        yield path
    finally:
        registry.emit_snapshot()
        registry.remove_sink(sink)
        sink.close()
        if sink.events_written:
            print(f"\nbench metrics artifact: {path} "
                  f"({sink.events_written} events)")


@pytest.fixture(scope="session")
def kb():
    return KnowledgeBase(seed=0)


@pytest.fixture(scope="session")
def wiki_corpus(kb):
    return generate_wiki_corpus(kb, 80, seed=0)


@pytest.fixture(scope="session")
def git_corpus():
    return generate_git_corpus(80, seed=0)


@pytest.fixture(scope="session")
def tokenizer(wiki_corpus, git_corpus):
    extra = ["what is the when how many entries are there lowest highest "
             "total average where and not below above at most least "
             "select from t sum avg min max count limit"] * 3
    return build_tokenizer_for_tables(wiki_corpus + git_corpus,
                                      vocab_size=1400, extra_texts=extra)


@pytest.fixture(scope="session")
def config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=32, num_heads=4, num_layers=2,
        hidden_dim=64, max_position=192, max_rows=24, max_columns=12,
        num_entities=kb.num_entities,
    )


@pytest.fixture(scope="session")
def small_config(tokenizer, kb):
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=16, num_heads=2, num_layers=1,
        hidden_dim=32, max_position=192, num_entities=kb.num_entities,
    )


@pytest.fixture(scope="session")
def fig1_table():
    """The paper's running example table (Fig. 1)."""
    return Table(
        ["country", "capital", "population"],
        [["Australia", "Canberra", 25.69],
         ["France", "Paris", 67.75],
         ["Japan", "Tokyo", 125.7]],
        context=TableContext(title="population in million by country"),
        table_id="fig1",
    )


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render an experiment's result table to stdout (and the metrics sink)."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    get_registry().emit({
        "kind": "bench_table", "title": title, "headers": list(headers),
        "rows": [[str(c) for c in row] for row in rows],
    })
