"""Behavioral testing of table representations (§2.4's open challenge).

The paper closes: "a new family of data-driven basic tests should be
designed to measure the consistency of the data representation."  This
example runs exactly such a battery — CheckList-style invariance (INV),
directional (DIR) and minimum-functionality (MFT) tests — across the model
zoo, showing how structure-aware designs earn their consistency.

Run:  python examples/behavioral_testing.py
"""

import numpy as np

from repro.core import build_tokenizer_for_tables, create_model
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.eval import default_suite, run_suite
from repro.models import EncoderConfig


def main() -> None:
    kb = KnowledgeBase(seed=0)
    probes = [t for t in generate_wiki_corpus(kb, 12, seed=0)
              if t.num_rows >= 2]
    tokenizer = build_tokenizer_for_tables(probes, vocab_size=900)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=24,
                           num_heads=2, num_layers=1, hidden_dim=48,
                           max_position=192, num_entities=kb.num_entities)

    print("Test battery:")
    for test in default_suite():
        print(f"  [{test.kind}] {test.name} (threshold {test.threshold})")
    print()

    models = ["bert", "tapas", "turl", "mate", "tabbie", "tuta"]
    reports = {}
    for name in models:
        model = create_model(name, tokenizer, config=config, seed=0)
        reports[name] = run_suite(model, probes, seed=0)
        print(reports[name].render())
        print()

    # The headline: flat serialization is NOT order-consistent; every
    # structure-aware design is.
    print("=== takeaway ===")
    for name in models:
        inv = reports[name].by_kind("INV")
        rate = float(np.mean([r.pass_rate for r in inv]))
        print(f"  {name:<7} invariance pass rate: {rate:.2f}")
    print("\nRow/column embeddings and structural attention buy exactly the "
          "consistency\nproperties a relational representation should have — "
          "the benchmark family\nthe paper's §2.4 calls for makes that "
          "measurable.")


if __name__ == "__main__":
    main()
