"""Table fact verification with cell-level explanations (§2.1 + §2.4).

Fine-tunes an NLI classifier on entailed/refuted statements, then explains
individual verdicts with gradient×input saliency — addressing the paper's
closing complaint that "model usage remains a black box".

Run:  python examples/fact_verification.py
"""

import numpy as np

from repro.core import build_tokenizer_for_tables, create_model
from repro.corpus import KnowledgeBase, build_nli_dataset, generate_wiki_corpus
from repro.models import EncoderConfig
from repro.tasks import FinetuneConfig, NliClassifier, finetune
from repro.viz import gradient_saliency, render_attribution


def main() -> None:
    kb = KnowledgeBase(seed=0)
    corpus = generate_wiki_corpus(kb, 50, seed=0)
    tokenizer = build_tokenizer_for_tables(corpus, vocab_size=1200)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=32,
                           num_heads=4, num_layers=2, hidden_dim=64,
                           max_position=192, num_entities=kb.num_entities)

    model = create_model("tapas", tokenizer, config=config, seed=0)
    classifier = NliClassifier(model, np.random.default_rng(0))

    examples = build_nli_dataset(corpus, np.random.default_rng(0), per_table=3)
    print(f"Fine-tuning the fact checker on {len(examples)} statements ...")
    finetune(classifier, examples,
             FinetuneConfig(epochs=10, batch_size=8, learning_rate=3e-3))
    metrics = classifier.evaluate(examples)
    print(f"training-set metrics: accuracy={metrics['accuracy']:.3f} "
          f"f1={metrics['f1']:.3f}\n")

    # Verify a few statements and justify each verdict with saliency.
    label_names = {0: "REFUTED", 1: "ENTAILED"}
    for example in examples[:2]:
        prediction = classifier.predict([example])[0].label
        verdict = label_names[prediction]
        gold = label_names[example.label]
        print(f'Statement: "{example.statement}"')
        print(f"Verdict:   {verdict} (gold: {gold})")

        def verdict_logit(hidden, _pred=prediction):
            logits = classifier.head(hidden[:, 0])
            return logits[0, _pred]

        batch, _ = model.batch([example.table], [example.statement])
        attribution = gradient_saliency(
            model, example.table, context=example.statement,
            scalar_fn=verdict_logit)
        print("Cell relevance (gradient × input):")
        print(render_attribution(attribution))
        top = attribution.top_cells(2)
        cells = ", ".join(f"{example.table.cell(r, c).text()!r}"
                          for (r, c), _ in top)
        print(f"Most influential cells: {cells}\n")


if __name__ == "__main__":
    main()
