"""Data imputation fine-tuning and failure analysis (Fig. 2d / §3.4).

Pretrains TURL with MLM + masked entity recovery over an entity-focused
corpus, fine-tunes it for data imputation on both WikiTables-style and
GitTables-style tables, reports hold-out accuracy/F1, and slices the errors
by the failure axes the tutorial highlights (numeric tables, headerless
tables).

Run:  python examples/imputation_finetuning.py
"""

import numpy as np

from repro.core import build_tokenizer_for_tables, create_model
from repro.corpus import (
    KnowledgeBase,
    build_imputation_dataset,
    generate_git_corpus,
    generate_wiki_corpus,
    split_tables,
)
from repro.eval import header_slicer, numeric_table_slicer, sliced_accuracy
from repro.models import EncoderConfig
from repro.pretrain import Pretrainer, PretrainConfig
from repro.tasks import (
    FinetuneConfig,
    ValueImputer,
    build_value_vocabulary_from_tables,
    finetune,
)


def evaluate_corpus(name, tables, tokenizer, config):
    """Fine-tune a value imputer on one corpus; return sliced metrics."""
    train_tables, _, test_tables = split_tables(tables)
    rng = np.random.default_rng(0)
    train = build_imputation_dataset(train_tables, rng, per_table=3,
                                     text_cells_only=False)
    test = build_imputation_dataset(test_tables, rng, per_table=3,
                                    text_cells_only=False)

    model = create_model("turl", tokenizer, config=config, seed=0)
    print(f"\n=== {name}: pretraining (MLM + MER) ===")
    history = Pretrainer(model, PretrainConfig(
        steps=60, batch_size=8, learning_rate=5e-3)).train(train_tables)
    print(f"  loss {history[0].loss:.3f} → {history[-1].loss:.3f} "
          f"over {len(history)} steps")

    vocabulary = build_value_vocabulary_from_tables(train_tables)
    imputer = ValueImputer(model, vocabulary, np.random.default_rng(0))
    finetune(imputer, train, FinetuneConfig(epochs=10, batch_size=8,
                                            learning_rate=3e-3))

    metrics = imputer.evaluate(test)
    print(f"  hold-out: accuracy={metrics['accuracy']:.3f} "
          f"macro-F1={metrics['macro_f1']:.3f} "
          f"(gold-in-vocabulary coverage={metrics['coverage']:.2f})")

    predictions = [p.label for p in imputer.predict(test)]
    golds = [e.answer_text for e in test]
    tables_of = [e.table for e in test]
    for slicer_name, slicer in (("numeric", numeric_table_slicer),
                                ("header", header_slicer)):
        sliced = sliced_accuracy(tables_of, predictions, golds, slicer)
        rendered = ", ".join(f"{k}={v:.3f}" for k, v in sorted(sliced.items()))
        print(f"  by {slicer_name}: {rendered}")
    return metrics


def main() -> None:
    kb = KnowledgeBase(seed=0)
    wiki = generate_wiki_corpus(kb, 60, seed=0)
    git = generate_git_corpus(60, seed=0)
    tokenizer = build_tokenizer_for_tables(wiki + git, vocab_size=1200)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=24,
                           num_heads=2, num_layers=1, hidden_dim=48,
                           max_position=160, num_entities=kb.num_entities)

    wiki_metrics = evaluate_corpus("WikiTables-style (entity tables)", wiki,
                                   tokenizer, config)
    git_metrics = evaluate_corpus("GitTables-style (CSV tables)", git,
                                  tokenizer, config)

    print("\n=== takeaway (§3.4) ===")
    easier = "entity" if wiki_metrics["accuracy"] >= git_metrics["accuracy"] \
        else "CSV"
    print(f"Imputation is easier on {easier} tables at this scale; numeric "
          "values and missing headers are the dominant failure modes, "
          "matching the tutorial's discussion.")


if __name__ == "__main__":
    main()
