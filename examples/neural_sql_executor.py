"""TAPEX in miniature: pretraining a neural SQL executor (§2.3, [27]).

Generates executor-labelled (SQL, table) → denotation pairs, trains the
encoder-decoder to *be* the executor, and reports denotation accuracy
against the symbolic engine — plus a look at where it still fails.

Run:  python examples/neural_sql_executor.py
"""

import numpy as np

from repro.core import build_tokenizer_for_tables
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.models import EncoderConfig, Tapex
from repro.nn import Adam
from repro.sql import denotation_text, generate_labeled_queries


def main() -> None:
    kb = KnowledgeBase(seed=0)
    tables = generate_wiki_corpus(kb, 6, seed=0)
    rng = np.random.default_rng(0)

    # Executor-labelled supervision: the symbolic engine provides gold
    # denotations for randomly generated queries.
    dataset = []
    for table in tables:
        for query, denotation in generate_labeled_queries(table, 4, rng):
            dataset.append((table, query.render(), denotation_text(denotation)))
    print(f"Training set: {len(dataset)} (query, table, denotation) triples")
    print(f"  e.g. {dataset[0][1]}  →  {dataset[0][2]!r}\n")

    sql_texts = [q for _, q, _ in dataset] + [a for _, _, a in dataset]
    tokenizer = build_tokenizer_for_tables(tables, vocab_size=900,
                                           extra_texts=sql_texts * 2)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=32,
                           num_heads=4, num_layers=1, hidden_dim=64,
                           max_position=160, decoder_layers=1,
                           num_entities=kb.num_entities)
    model = Tapex(config, tokenizer, np.random.default_rng(0),
                  max_answer_tokens=10)
    optimizer = Adam(model.parameters(), lr=5e-3)

    batch_tables = [t for t, _, _ in dataset]
    batch_queries = [q for _, q, _ in dataset]
    batch_answers = [a for _, _, a in dataset]
    print("Learning to execute ...")
    for epoch in range(45):
        optimizer.zero_grad()
        loss = model.loss(batch_tables, batch_queries, batch_answers)
        loss.backward()
        optimizer.step()
        if epoch % 10 == 0 or epoch == 29:
            print(f"  epoch {epoch:>2}: loss={float(loss.data):.3f}")

    def normalize(text: str) -> str:
        # Compare in token space so "a, b" ≡ "a , b" (decoder spacing).
        return tokenizer.decode(tokenizer.encode(text))

    correct = 0
    failures = []
    for table, query, answer in dataset:
        predicted = model.generate(table, query)
        if predicted == normalize(answer):
            correct += 1
        elif len(failures) < 3:
            failures.append((query, answer, predicted))
    print(f"\nDenotation accuracy vs. symbolic executor: "
          f"{correct}/{len(dataset)} = {correct / len(dataset):.2f}")
    if failures:
        print("Sample failures (query → gold | predicted):")
        for query, gold, predicted in failures:
            print(f"  {query}\n    → {gold!r} | {predicted!r}")


if __name__ == "__main__":
    main()
