"""Table question answering with a TAPAS-style model (§2.1's live demo).

Fine-tunes cell-selection QA on executor-labelled questions, then answers a
few questions over the Fig. 1 example table, and visualizes where the model
attends while answering — the attention utility code of §3.3.

Run:  python examples/question_answering.py
"""

import numpy as np

from repro.core import build_tokenizer_for_tables, create_model
from repro.corpus import KnowledgeBase, build_qa_dataset, generate_wiki_corpus
from repro.models import EncoderConfig
from repro.tasks import CellSelectionQA, FinetuneConfig, finetune
from repro.viz import attention_heatmap, top_attended_tokens


def main() -> None:
    kb = KnowledgeBase(seed=0)
    corpus = generate_wiki_corpus(kb, 50, seed=0)
    tokenizer = build_tokenizer_for_tables(
        corpus, vocab_size=1000,
        extra_texts=["what is the when is ?"] * 3)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=24,
                           num_heads=2, num_layers=2, hidden_dim=48,
                           max_position=160, num_entities=kb.num_entities)

    model = create_model("tapas", tokenizer, config=config, seed=0)
    qa = CellSelectionQA(model, np.random.default_rng(0))

    examples = build_qa_dataset(corpus, np.random.default_rng(0), per_table=3)
    print(f"Fine-tuning on {len(examples)} executor-labelled QA examples ...")
    finetune(qa, examples, FinetuneConfig(epochs=10, batch_size=8,
                                          learning_rate=3e-3))
    metrics = qa.evaluate(examples)
    print(f"train metrics: cell accuracy={metrics['cell_accuracy']:.3f} "
          f"value accuracy={metrics['value_accuracy']:.3f}\n")

    # Demo on tables the model was fine-tuned over (at this miniature scale
    # the model does not yet generalize to unseen tables — one of the open
    # challenges §2.4 discusses; E7 quantifies it).
    print("Answering questions (Fig. 1 style):")
    seen_questions = set()
    demos = []
    for e in examples:
        if "country" in e.table.header and e.question not in seen_questions:
            seen_questions.add(e.question)
            demos.append(e)
        if len(demos) == 3:
            break
    demos = demos or examples[:3]
    for example in demos:
        (prediction,) = qa.predict([example])
        row, col = prediction.label
        gold = {example.table.cell(r, c).text()
                for r, c in example.answer_coordinates}
        predicted = example.table.cell(row, col).text()
        marker = "✓" if predicted in gold else "✗"
        print(f"  Q: {example.question}")
        print(f"  A: {predicted}  (cell {prediction.label}, "
              f"gold {sorted(gold)}) {marker}\n")

    # Peek inside: what does the model attend to for the last question?
    table, question = demos[-1].table, demos[-1].question
    batch, serialized = model.batch([table], [question])
    model(batch)
    weights = model.encoder.attention_maps()[-1][0, 0]  # last layer, head 0
    tokens = serialized[0].tokens
    print("Attention of layer -1 / head 0 (first 20 tokens):")
    print(attention_heatmap(weights, tokens, max_tokens=20))
    cls_top = top_attended_tokens(weights, tokens, query_index=0, k=5)
    print("\n[CLS] attends most to:",
          ", ".join(f"{t} ({w:.2f})" for t, w in cls_top))


if __name__ == "__main__":
    main()
