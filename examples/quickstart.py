"""Quickstart — the hands-on session's first exercise (Fig. 2a).

Loads a table from CSV, encodes it with three off-the-shelf models (vanilla
BERT, TAPAS, TaBERT analogues), and compares their input formats and output
encodings — exactly the comparison §3.1 walks attendees through.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import build_tokenizer_for_tables, create_model, load_table
from repro.corpus import KnowledgeBase, generate_wiki_corpus
from repro.core import save_pretrained, load_pretrained

CSV = """Country,Capital,Population
Australia,Canberra,25.69
France,Paris,67.75
Japan,Tokyo,125.7
"""


def main() -> None:
    # ------------------------------------------------------------------
    # Step 1: load a sample table (the paper's Fig. 1 example).
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "countries.csv"
        path.write_text(CSV)
        table = load_table(path, title="Population in Million by Country")
    print(f"Loaded table: {table}")
    print(f"Context: {table.context.text()!r}\n")

    # A tokenizer trained on a small table corpus (stands in for the
    # pretrained checkpoints the tutorial downloads from HuggingFace).
    corpus = generate_wiki_corpus(KnowledgeBase(seed=0), 30, seed=0)
    tokenizer = build_tokenizer_for_tables(corpus + [table], vocab_size=800)

    # ------------------------------------------------------------------
    # Step 2: encode the table with each model and compare.
    # ------------------------------------------------------------------
    print(f"{'model':<8} {'serializer':<12} {'params':>8} {'tokens':>7} "
          f"{'row/col/role embeddings':>25}")
    for name in ("bert", "tapas", "tabert"):
        model = create_model(name, tokenizer, seed=0)
        encoding = model.encode(table)
        info = model.describe()
        channels = "/".join(
            "yes" if info[k] else "no"
            for k in ("row_embeddings", "column_embeddings", "role_embeddings"))
        print(f"{name:<8} {info['serializer']:<12} {info['parameters']:>8} "
              f"{len(encoding):>7} {channels:>25}")

    # ------------------------------------------------------------------
    # Step 3: inspect the intermediate objects (what §3.1 does after each
    # pipeline stage).
    # ------------------------------------------------------------------
    model = create_model("tapas", tokenizer, seed=0)
    encoding = model.encode(table)
    print(f"\nSerialized input (first 18 tokens): "
          f"{' '.join(encoding.tokens[:18])} ...")
    print(f"Table embedding shape:  {encoding.table_embedding.shape}")
    print(f"Cell (1, 1) ['Paris'] embedding shape: "
          f"{encoding.cell_embeddings[(1, 1)].shape}")
    print(f"Column embeddings available for columns: "
          f"{sorted(encoding.column_embeddings)}")

    # ------------------------------------------------------------------
    # Step 4: save and reload, the load_pretrained(path) line of Fig. 2a.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        save_pretrained(model, Path(tmp) / "tapas-tiny")
        reloaded = load_pretrained(Path(tmp) / "tapas-tiny")
        same = (reloaded.encode(table).table_embedding
                == encoding.table_embedding).all()
    print(f"\nsave_pretrained → load_pretrained roundtrip identical: {same}")


if __name__ == "__main__":
    main()
