"""Table retrieval: dense bi-encoder vs. a BM25 lexical baseline (§2.1).

Trains the bi-encoder contrastively on (query, table) pairs and compares
Hits@k / MRR against BM25 over the same corpus — the classic dense-vs-sparse
retrieval story at miniature scale.

Run:  python examples/table_retrieval.py
"""

import numpy as np

from repro.core import build_tokenizer_for_tables, create_model
from repro.corpus import (
    KnowledgeBase,
    build_retrieval_dataset,
    generate_wiki_corpus,
)
from repro.models import EncoderConfig
from repro.tasks import (
    BiEncoderRetriever,
    FinetuneConfig,
    LexicalRetriever,
    finetune,
)


def render(name: str, metrics: dict) -> str:
    return (f"{name:<22} hits@1={metrics['hits@1']:.3f} "
            f"hits@3={metrics['hits@3']:.3f} mrr={metrics['mrr']:.3f}")


def main() -> None:
    kb = KnowledgeBase(seed=0)
    corpus = generate_wiki_corpus(kb, 40, seed=0)
    examples = build_retrieval_dataset(corpus, np.random.default_rng(0))
    print(f"Corpus: {len(corpus)} tables; {len(examples)} queries\n")

    tokenizer = build_tokenizer_for_tables(corpus, vocab_size=900)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab), dim=24,
                           num_heads=2, num_layers=1, hidden_dim=48,
                           max_position=160, num_entities=kb.num_entities)
    model = create_model("bert", tokenizer, config=config, seed=0)

    dense = BiEncoderRetriever(model, corpus=corpus)
    lexical = LexicalRetriever()

    print(render("BM25 (lexical)", lexical.evaluate(examples, corpus)))
    print(render("bi-encoder (untrained)", dense.evaluate(examples, corpus)))

    print("\nContrastive fine-tuning of the bi-encoder ...")
    finetune(dense, examples, FinetuneConfig(epochs=10, batch_size=8,
                                             learning_rate=3e-3))
    trained = dense.evaluate(examples, corpus)
    print(render("bi-encoder (trained)", trained))

    print("\nExample ranking:")
    index = dense.index(corpus)
    query = examples[0].query
    top = dense.rank(query, index)[:3]
    print(f"  query: {query!r}")
    print(f"  gold:  {examples[0].positive_table_id}")
    print(f"  top-3: {top}")


if __name__ == "__main__":
    main()
