"""repro — Models and Practice of Neural Table Representations.

A from-scratch reproduction of the system taught by the SIGMOD 2023
tutorial: structure-aware transformer encoders for relational tables
(BERT/TAPAS/TaBERT/TURL/TAPEX/MATE analogues), their pretraining objectives
(masked cell LM, masked entity recovery), and the downstream task zoo the
survey covers (QA, fact verification, retrieval, metadata prediction, data
imputation, text-to-SQL) — all on a pure-numpy autograd substrate.

Quickstart (the Fig. 2a snippet):

    >>> from repro import load_table, create_model, build_tokenizer_for_tables
    >>> table = load_table("data/countries.csv")          # load sample table
    >>> tokenizer = build_tokenizer_for_tables([table])
    >>> model = create_model("tapas", tokenizer)           # or load_pretrained
    >>> encoding = model.encode(table)                     # encode the table
    >>> encoding.table_embedding.shape
    (48,)
"""

from .core import (
    build_tokenizer_for_tables,
    create_model,
    load_pretrained,
    run_imputation_pipeline,
    save_pretrained,
)
from .parallel import DataParallelEngine, FixedClock, ParallelConfig
from .runtime import TrainRecord, get_registry, profile
from .tables import Table, TableContext, load_table
from .tasks import Prediction, TaskPredictor

__version__ = "0.1.0"

__all__ = [
    "Table", "TableContext", "load_table",
    "create_model", "save_pretrained", "load_pretrained",
    "build_tokenizer_for_tables", "run_imputation_pipeline",
    "TrainRecord", "get_registry", "profile",
    "ParallelConfig", "DataParallelEngine", "FixedClock",
    "Prediction", "TaskPredictor",
    "__version__",
]
