"""``python -m repro`` — same entry point as the ``repro`` console script."""

import sys

from .cli import main

sys.exit(main())
