"""repro.analysis — static analysis over models, tapes and source.

Three layers, all offline:

- **Shape inference** (:mod:`.shapes`, :mod:`.infer`, :mod:`.checker`) —
  symbolic :class:`ShapeSpec` flow through every nn layer and model
  family; ``repro check`` proves serialization → embedding → attention →
  head wiring per ``(model, task, serializer)`` triple with *zero*
  forward passes.
- **Tape sanitizer** (:mod:`.tape`) — post-hoc autograd-graph checks:
  dead parameters, untouched ops, float64 creep, NaN-prone fan-out.
- **Lint** (:mod:`.lint`) — AST rules for repo invariants
  (``repro lint``).
- **Concurrency** (:mod:`.concurrency`, :mod:`.locksan`) — static
  race/lock-order analysis (REPRO008/REPRO009, ``repro check
  --concurrency``) plus the runtime :class:`LockSanitizer`
  (``repro serve --sanitize-threads``).

:mod:`.gradcheck` adds finite-difference spot checks
(``repro check --numeric``).
"""

from .checker import (
    CHECKED_TASKS,
    CheckResult,
    check_all,
    check_model,
    check_pair,
    numeric_spot_check,
)
from .concurrency import (
    ConcurrencyReport,
    GuardInfo,
    LockEdge,
    analyze_files,
    analyze_source,
)
from .gradcheck import check_gradient, numeric_gradient
from .infer import check_attention_mask, infer_decoder, infer_shapes, register_handler
from .lint import LintFinding, RULES, lint_file, lint_source, run_lint
from .locksan import LockSanitizer, SanitizerError
from .shapes import Dim, ShapeError, ShapeSpec, broadcast_shapes, dims_equal
from .tape import (
    Finding,
    OpCounter,
    TapeReport,
    TapeTracer,
    reachable_from,
    sanitize_tape,
    trace_tape,
)

__all__ = [
    "Dim", "ShapeSpec", "ShapeError", "dims_equal", "broadcast_shapes",
    "infer_shapes", "infer_decoder", "register_handler",
    "check_attention_mask",
    "CheckResult", "check_pair", "check_all", "check_model",
    "numeric_spot_check", "CHECKED_TASKS",
    "Finding", "TapeReport", "OpCounter", "TapeTracer",
    "trace_tape", "sanitize_tape", "reachable_from",
    "LintFinding", "RULES", "run_lint", "lint_file", "lint_source",
    "ConcurrencyReport", "GuardInfo", "LockEdge",
    "analyze_files", "analyze_source",
    "LockSanitizer", "SanitizerError",
    "numeric_gradient", "check_gradient",
]
