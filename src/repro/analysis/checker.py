"""Static model × task × serialization compatibility checking.

This is the `repro check` engine: it instantiates a model family and a
task head (constructors only build leaf parameters — no autograd ops are
recorded) and then *plays the forward pass symbolically* with
:func:`~repro.analysis.infer.infer_shapes`:

serialization → embedding channels → structural attention masks →
encoder stack(s) → task head,

proving at each edge that trailing axes, embedding id ranges, mask
broadcasts and head fan-ins line up with the :class:`EncoderConfig`.  A
failure surfaces as the dotted path of the first incompatible edge
(``embed.role_embedding: ids may reach 3 but the table holds only 2
rows``) without a single array flowing through the network — tests
assert zero tape ops via :class:`~repro.analysis.tape.OpCounter`.

Symbolic dims: ``B`` (batch), ``T`` (sequence), ``T_dec`` (decoder
steps), ``n_rows`` / ``n_cols`` (per-table span counts feeding the
pointer heads of text-to-SQL).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .infer import check_attention_mask, infer_shapes, register_handler
from .shapes import Dim, ShapeError, ShapeSpec
from ..models import (
    MODEL_CLASSES,
    Mate,
    TaBert,
    Tabbie,
    TableEncoder,
    Tapas,
    Tapex,
    Turl,
)
from ..nn import Encoder, Module
from ..serialize import SERIALIZERS, TokenRole
from ..tables import Table, TableContext
from ..text import WordPieceTokenizer

__all__ = [
    "CheckResult", "check_pair", "check_all", "check_model",
    "build_check_fixture", "numeric_spot_check", "CHECKED_TASKS",
]

#: Task heads the checker wires on top of every encoder family.
CHECKED_TASKS = ("qa", "nli", "imputation", "coltype", "retrieval", "text2sql")


# ----------------------------------------------------------------------
# Model-family walkers (registered into the infer dispatch)
# ----------------------------------------------------------------------
def _mask_spec(batch: Dim, heads: Dim, seq: Dim) -> ShapeSpec:
    return ShapeSpec((batch, heads, seq, seq), dtype="bool")


def _infer_stack(stack: Encoder, hidden: ShapeSpec, mask: ShapeSpec,
                 path: tuple[str, ...]) -> ShapeSpec:
    """Walk an encoder stack, proving the mask broadcast at every layer."""
    for i, layer in enumerate(stack.layers):
        check_attention_mask(layer.attention, hidden, mask,
                             path + ("layers", str(i), "attention"))
    return infer_shapes(stack, hidden, path)


def _infer_embed(model: TableEncoder, ids: ShapeSpec,
                 path: tuple[str, ...]) -> ShapeSpec:
    """Symbolic twin of ``TableEncoder.embed``: sum the enabled channels."""
    config = model.config
    base = path + ("embed",)
    batch_seq = ids.shape

    total = infer_shapes(model.token_embedding, ids,
                         base + ("token_embedding",))
    # Positions run 0..T-1 with T capped by the serializer budget.
    positions = ShapeSpec(batch_seq, dtype="int",
                          max_value=model.serializer.max_tokens - 1)
    channels = [infer_shapes(model.position_embedding, positions,
                             base + ("position_embedding",))]
    if model.uses_row_embeddings:
        rows = ShapeSpec(batch_seq, dtype="int", max_value=config.max_rows)
        channels.append(infer_shapes(model.row_embedding, rows,
                                     base + ("row_embedding",)))
    if model.uses_column_embeddings:
        cols = ShapeSpec(batch_seq, dtype="int", max_value=config.max_columns)
        channels.append(infer_shapes(model.column_embedding, cols,
                                     base + ("column_embedding",)))
    if model.uses_role_embeddings:
        roles = ShapeSpec(batch_seq, dtype="int",
                          max_value=max(int(role) for role in TokenRole))
        channels.append(infer_shapes(model.role_embedding, roles,
                                     base + ("role_embedding",)))
    if isinstance(model, Turl):
        # Turl.embed clamps raw ids with np.minimum(..., num_entities).
        entities = ShapeSpec(batch_seq, dtype="int",
                             max_value=config.num_entities)
        channels.append(infer_shapes(model.entity_embedding, entities,
                                     base + ("entity_embedding",)))
    if config.numeric_features:
        numeric = ShapeSpec(batch_seq + (3,), dtype="float")
        channels.append(infer_shapes(model.numeric_projection, numeric,
                                     base + ("numeric_projection",)))
    for i, channel in enumerate(channels):
        if channel.shape != total.shape:
            raise ShapeError(
                f"embedding channel produces {channel} but the token "
                f"channel produces {total}", base)
        total = channel.with_shape(total.shape)
    normed = infer_shapes(model.embedding_norm, total,
                          base + ("embedding_norm",))
    return infer_shapes(model.embedding_dropout, normed,
                        base + ("embedding_dropout",))


@register_handler(TableEncoder)
def _infer_table_encoder(model: TableEncoder, spec: ShapeSpec,
                         path: tuple[str, ...]) -> ShapeSpec:
    """Shape rule for every encoder family: token-id spec in, hidden out."""
    spec.require_dtype("int", path)
    spec.require_ndim(2, path)
    if model.serializer.max_tokens > model.config.max_position:
        raise ShapeError(
            f"serializer budget {model.serializer.max_tokens} exceeds "
            f"max_position {model.config.max_position}",
            path + ("serialization",))
    batch, seq = spec.shape
    hidden = _infer_embed(model, spec, path)

    config = model.config
    if isinstance(model, Tabbie):
        row_view = _infer_stack(model.encoder, hidden,
                                _mask_spec(batch, 1, seq),
                                path + ("encoder",))
        column_view = _infer_stack(model.column_encoder, hidden,
                                   _mask_spec(batch, 1, seq),
                                   path + ("column_encoder",))
        if row_view.shape != column_view.shape:
            raise ShapeError(
                f"row view {row_view} and column view {column_view} "
                f"disagree and cannot be averaged", path)
        return row_view
    if isinstance(model, TaBert):
        hidden = _infer_stack(model.encoder, hidden,
                              _mask_spec(batch, 1, seq), path + ("encoder",))
        return _infer_stack(model.vertical_encoder, hidden,
                            _mask_spec(batch, 1, seq),
                            path + ("vertical_encoder",))
    # MATE builds one mask slice per head; everything else broadcasts one.
    heads: Dim = config.num_heads if isinstance(model, Mate) else 1
    return _infer_stack(model.encoder, hidden, _mask_spec(batch, heads, seq),
                        path + ("encoder",))


@register_handler(Tapex)
def _infer_tapex(model: Tapex, spec, path: tuple[str, ...]) -> ShapeSpec:
    """Encoder-decoder rule: ``(encoder_ids, decoder_ids)`` specs in."""
    if isinstance(spec, ShapeSpec):
        ids, decoder_ids = spec, ShapeSpec((spec.shape[0], "T_dec"),
                                           dtype="int",
                                           max_value=model.config.vocab_size - 1)
    else:
        ids, decoder_ids = spec
    memory = infer_shapes(model.encoder, ids, path + ("encoder",))
    decoder_ids.require_dtype("int", path + ("decoder",))
    target = infer_shapes(model.encoder.token_embedding, decoder_ids,
                          path + ("decoder", "token_embedding"))
    # Target positions are clamped to max_answer_tokens before lookup.
    positions = ShapeSpec(decoder_ids.shape, dtype="int",
                          max_value=model.max_answer_tokens)
    position_channel = infer_shapes(model.target_position_embedding, positions,
                                    path + ("decoder",
                                            "target_position_embedding"))
    if position_channel.shape != target.shape:
        raise ShapeError(
            f"target position channel {position_channel} does not match "
            f"token channel {target}", path + ("decoder",))
    hidden = infer_shapes(model.decoder, (target, memory),
                          path + ("decoder",))
    return infer_shapes(model.output_projection, hidden,
                        path + ("output_projection",))


# ----------------------------------------------------------------------
# Task-head wiring
# ----------------------------------------------------------------------
def _check_task_head(task_name: str, task: Module, hidden: ShapeSpec,
                     stages: list[tuple[str, str]]) -> None:
    """Prove the task head consumes the encoder output; record its stages."""
    batch = hidden.shape[0]
    dim = hidden.shape[-1]
    pooled = hidden.with_shape((batch, dim))
    if task_name == "qa":
        scores = infer_shapes(task.head, hidden, ("head",))
        stages.append(("head.token_scores", str(scores)))
    elif task_name in ("nli", "imputation", "coltype"):
        logits = infer_shapes(task.head, pooled, ("head",))
        stages.append(("head.logits", str(logits)))
    elif task_name == "retrieval":
        # Query and table towers share the encoder; similarity is
        # (B, dim) @ (dim, B).
        stages.append(("head.query_cls", str(pooled)))
        stages.append(("head.table_cls", str(pooled)))
        stages.append(("head.similarity",
                       str(pooled.with_shape((batch, batch)))))
    elif task_name == "text2sql":
        agg = infer_shapes(task.aggregate_head, pooled, ("aggregate_head",))
        stages.append(("aggregate_head.logits", str(agg)))
        cond = infer_shapes(task.has_condition_head, pooled,
                            ("has_condition_head",))
        stages.append(("has_condition_head.logits", str(cond)))
        header = hidden.with_shape(("n_cols", dim))
        for name in ("select_scorer", "condition_scorer"):
            scored = infer_shapes(getattr(task, name), header, (name,))
            stages.append((f"{name}.logits", str(scored)))
        cells = hidden.with_shape(("n_rows", dim))
        scored = infer_shapes(task.value_scorer, cells, ("value_scorer",))
        stages.append(("value_scorer.logits", str(scored)))
    else:
        raise ShapeError(f"unknown task {task_name!r}", ("head",))


def build_task(task_name: str, encoder: TableEncoder, tables: list[Table],
               rng: np.random.Generator) -> Module:
    """Construct the task head ``repro check`` wires onto an encoder."""
    from ..tasks import (
        BiEncoderRetriever,
        CellSelectionQA,
        ColumnTypePredictor,
        NliClassifier,
        SketchParser,
        ValueImputer,
    )

    if task_name == "qa":
        return CellSelectionQA(encoder, rng)
    if task_name == "nli":
        return NliClassifier(encoder, rng)
    if task_name == "imputation":
        return ValueImputer(encoder, ["alpha", "beta", "gamma"], rng)
    if task_name == "coltype":
        return ColumnTypePredictor(encoder, ["name", "year"], rng)
    if task_name == "retrieval":
        return BiEncoderRetriever(encoder, corpus=tables)
    if task_name == "text2sql":
        return SketchParser(encoder, rng)
    raise KeyError(f"unknown task {task_name!r}; have {CHECKED_TASKS}")


# ----------------------------------------------------------------------
# Fixture: deterministic tokenizer/config shared by every pair check
# ----------------------------------------------------------------------
def _toy_tables() -> list[Table]:
    return [
        Table(["name", "year"],
              [["ada", "1843"], ["grace", "1952"]],
              context=TableContext(title="pioneers"),
              table_id="toy-0"),
        Table(["city", "country"],
              [["paris", "france"], ["lima", "peru"]],
              context=TableContext(title="capitals"),
              table_id="toy-1"),
    ]


def build_check_fixture(num_entities: int = 8
                        ) -> tuple[list[Table], WordPieceTokenizer, "EncoderConfig"]:
    """Tables, tokenizer and config backing every static pair check."""
    from ..core import build_tokenizer_for_tables
    from ..models import EncoderConfig

    tables = _toy_tables()
    tokenizer = build_tokenizer_for_tables(tables, vocab_size=400)
    config = EncoderConfig(vocab_size=len(tokenizer.vocab),
                           num_entities=num_entities)
    return tables, tokenizer, config


# ----------------------------------------------------------------------
# Pair checking
# ----------------------------------------------------------------------
@dataclass
class CheckResult:
    """Outcome of one ``model × task × serializer`` static validation."""

    model: str
    task: str
    serializer: str
    ok: bool
    stages: list[tuple[str, str]] = field(default_factory=list)
    error: str | None = None

    def render(self, verbose: bool = False) -> str:
        head = f"{self.model} x {self.task} [{self.serializer}]"
        if not self.ok:
            return f"FAIL {head}\n  first incompatible edge: {self.error}"
        lines = [f"ok   {head}"]
        if verbose:
            lines += [f"  {name:<32} {shape}" for name, shape in self.stages]
        return "\n".join(lines)


def check_model(model: Module, batch: Dim = "B",
                seq: Dim = "T") -> list[tuple[str, str]]:
    """Walk one instantiated model symbolically; returns the stage trace."""
    stages: list[tuple[str, str]] = []
    ids = ShapeSpec((batch, seq), dtype="int",
                    max_value=model.config.vocab_size - 1)
    stages.append(("serialization.token_ids", str(ids)))
    hidden = infer_shapes(model, ids)
    label = "decoder.logits" if isinstance(model, Tapex) else "encoder.hidden"
    stages.append((label, str(hidden)))
    return stages


def check_pair(model_name: str, task_name: str,
               serializer_name: str = "row_major",
               seed: int = 0,
               config: "EncoderConfig | None" = None) -> CheckResult:
    """Statically validate one model × task wiring; never runs a forward.

    ``config`` overrides the fixture's :class:`EncoderConfig` (its
    ``vocab_size`` is reconciled with the fixture tokenizer) — tests use
    this to plant misconfigurations and assert the reported edge.
    """
    from dataclasses import replace

    from ..core import create_model

    if model_name not in MODEL_CLASSES:
        raise KeyError(
            f"unknown model {model_name!r}; have {sorted(MODEL_CLASSES)}")
    if task_name not in CHECKED_TASKS:
        raise KeyError(
            f"unknown task {task_name!r}; have {CHECKED_TASKS}")
    if serializer_name not in SERIALIZERS:
        raise KeyError(
            f"unknown serializer {serializer_name!r}; "
            f"have {sorted(SERIALIZERS)}")
    tables, tokenizer, fixture_config = build_check_fixture()
    if config is None:
        config = fixture_config
    else:
        config = replace(config, vocab_size=len(tokenizer.vocab))
    result = CheckResult(model=model_name, task=task_name,
                         serializer=serializer_name, ok=False)
    try:
        serializer = SERIALIZERS[serializer_name](
            tokenizer, max_tokens=config.max_position)
        model = create_model(model_name, tokenizer, config=config,
                             seed=seed, serializer=serializer)
    except (ValueError, KeyError) as error:
        result.error = f"construction: {error}"
        return result
    rng = np.random.default_rng(seed)
    encoder = model.encoder if isinstance(model, Tapex) else model
    try:
        result.stages = check_model(model)
        if isinstance(model, Tapex):
            # Tasks ride on the encoder half; the handler above already
            # proved the decoder/output wiring.
            hidden = infer_shapes(
                encoder, ShapeSpec(("B", "T"), dtype="int",
                                   max_value=config.vocab_size - 1))
        else:
            hidden = ShapeSpec(("B", "T", config.dim))
        task = build_task(task_name, encoder, tables, rng)
        _check_task_head(task_name, task, hidden, result.stages)
    except ShapeError as error:
        result.error = str(error)
        return result
    result.ok = True
    return result


def check_all(models: list[str] | None = None,
              tasks: list[str] | None = None,
              serializer_name: str = "row_major",
              seed: int = 0) -> list[CheckResult]:
    """Every model family × task pair, in deterministic order."""
    models = models if models is not None else sorted(MODEL_CLASSES)
    tasks = tasks if tasks is not None else list(CHECKED_TASKS)
    return [check_pair(model_name, task_name,
                       serializer_name=serializer_name, seed=seed)
            for model_name in models for task_name in tasks]


# ----------------------------------------------------------------------
# Optional numeric spot check (repro check --numeric)
# ----------------------------------------------------------------------
def numeric_spot_check(model: Module, seed: int = 0) -> dict[str, float | str]:
    """Finite-difference check of one sampled layer's analytic gradient.

    Samples a :class:`Linear` or :class:`LayerNorm` from the model (the
    two parametric per-token maps), runs
    :func:`~repro.analysis.gradcheck.check_gradient` on a small random
    input, and returns which layer was checked.  Raises ``AssertionError``
    if the analytic and numeric gradients disagree.
    """
    from .gradcheck import check_gradient
    from ..nn import LayerNorm, Linear

    named = [(name or type(module).__name__, module)
             for name, module in _named_modules(model)
             if isinstance(module, (Linear, LayerNorm))]
    if not named:
        raise ValueError("model exposes no Linear/LayerNorm layer to check")
    rng = np.random.default_rng(seed)
    name, layer = named[int(rng.integers(len(named)))]
    width = layer.in_features if isinstance(layer, Linear) else layer.dim
    x = rng.normal(size=(2, width))
    check_gradient(lambda t: layer(t), x)
    return {"layer": name, "width": float(width)}


def _named_modules(model: Module, prefix: str = ""):
    yield prefix, model
    for name, child in model._modules.items():
        yield from _named_modules(child,
                                  f"{prefix}.{name}" if prefix else name)
