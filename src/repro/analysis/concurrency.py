"""Static concurrency analysis: data races and lock-order hazards.

Two rules over the threaded serving & parallel stack (wired into
``repro lint`` next to the single-threaded AST rules):

- **REPRO008** — a *guarded* attribute is read or written outside its
  lock on a code path another thread can reach.  The guard map comes
  from two sources: an explicit ``# guarded-by: <lock-attr>`` comment
  on the attribute's initialising assignment, and automatic inference
  (an attribute touched under ``with self._lock:`` in a clear majority
  of its uses — at least two locked accesses, strictly more locked
  than unlocked — is treated as guarded by that lock; the minority
  unlocked accesses are exactly the suspects).  Thread entry points
  are ``threading.Thread(target=...)`` targets (methods and nested
  closures), every method of a ``BaseHTTPRequestHandler`` subclass,
  and the public methods of any class whose ``class`` line carries a
  ``# thread-shared`` comment; reachability follows ``self.method()``
  calls from those entries.
- **REPRO009** — lock-order hazards: a cycle in the static
  lock-acquisition graph built from nested ``with`` statements (plus
  one level of same-class / same-module call summaries), or a blocking
  call (``sleep``, pipe ``send``/``recv``, ``accept``, ``join``/
  ``wait``/``get`` without a timeout) made while holding a lock.
  Waiting on a held condition releases *that* lock, so it only counts
  as blocking when other locks stay held.

Annotation conventions (line comments, consumed here):

- ``# guarded-by: <lock-attr>`` — on an attribute's assignment:
  declares the guard explicitly (stricter than inference: *every*
  thread-reachable access must hold the lock).
- ``# thread-shared`` — on a ``class`` line: instances are handed to
  multiple threads, so every public method is an entry point.
- ``# holds-lock: <lock-attr>`` — on a ``def`` line: callers must hold
  the lock; the body is analyzed as if inside ``with`` it.
- ``# race-ok: <reason>`` — suppresses REPRO008 on that line (e.g. a
  benign racy fast-path probe).
- ``# lock-ok: <reason>`` — suppresses REPRO009 on that line (e.g. a
  lock that exists precisely to serialize pipe writes).

Known limitations, by design: the analysis is per-class for guards and
name-based for lock identity, so cross-object aliasing (two attributes
holding the same lock instance across classes) is unified only when it
is lexically visible (``threading.Condition(self._lock)``).  The
runtime :class:`~repro.analysis.locksan.LockSanitizer` covers the
dynamic side — real instance identity, cross-class inversions and hold
times.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .lint import LintFinding, RULES

__all__ = ["GuardInfo", "LockEdge", "ConcurrencyReport",
           "analyze_source", "analyze_files"]

#: The two rules this module owns (descriptions live in ``lint.RULES``).
CONCURRENCY_RULES: dict[str, str] = {
    rule: RULES[rule] for rule in ("REPRO008", "REPRO009")}

#: ``threading.X()`` constructors that create a lock (guard-capable).
_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Constructors that create *self-synchronizing* objects — their own
#: methods are atomic, so attributes holding them never need a guard.
_SYNC_FACTORIES = frozenset({
    "Event", "Barrier", "Queue", "SimpleQueue", "JoinableQueue", "local",
})

#: Attribute / variable names that denote a lock even without a
#: recognizable constructor on the right-hand side.
_LOCKISH = re.compile(r"(?:^|_)(?:lock|mutex|cond(?:ition)?|not_empty|not_full)$")

#: Calls that block regardless of arguments.
_BLOCKING_ALWAYS = frozenset({
    "sleep", "recv", "recv_bytes", "send", "send_bytes", "accept", "select",
})

#: Calls that block only when no timeout bounds them.
_BLOCKING_NO_TIMEOUT = frozenset({"wait", "wait_for", "join", "get"})

#: Condition-style methods that *release* the lock they are called on.
_CONDITION_METHODS = frozenset({"wait", "wait_for", "notify", "notify_all"})

_HANDLER_BASE_MARKER = "HTTPRequestHandler"

_GUARDED_BY = re.compile(r"#.*guarded-by:\s*([A-Za-z_]\w*)")
_HOLDS_LOCK = re.compile(r"#.*holds-lock:\s*([A-Za-z_]\w*)")
_THREAD_SHARED = re.compile(r"#.*thread-shared\b")
_RACE_OK = re.compile(r"#.*race-ok\b")
_LOCK_OK = re.compile(r"#.*lock-ok\b")


# ----------------------------------------------------------------------
# Public result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GuardInfo:
    """One entry of a class's lock-guard map."""

    attr: str
    lock: str
    how: str  # "annotated" | "inferred"
    line: int


@dataclass(frozen=True)
class LockEdge:
    """Lock ``src`` was held while ``dst`` was acquired at path:line."""

    src: str
    dst: str
    path: str
    line: int


@dataclass
class ConcurrencyReport:
    """Findings plus the evidence they were derived from."""

    findings: list[LintFinding]
    guards: dict[str, tuple[GuardInfo, ...]]
    edges: tuple[LockEdge, ...]

    def render(self) -> str:
        """Human-readable guard map, lock graph and findings."""
        lines = ["lock-guard map:"]
        if not self.guards:
            lines.append("  (no guarded classes)")
        for qualname in sorted(self.guards):
            for guard in self.guards[qualname]:
                lines.append(f"  {qualname}.{guard.attr} <- "
                             f"self.{guard.lock} [{guard.how}]")
        lines.append("lock-acquisition graph:")
        if not self.edges:
            lines.append("  (no nested acquisitions)")
        for edge in self.edges:
            lines.append(f"  {edge.src} -> {edge.dst} "
                         f"({edge.path}:{edge.line})")
        lines.append(f"findings: {len(self.findings)}")
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Internal model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Held:
    """One lock on the lexical acquisition stack."""

    lock_id: str                      # globally unique graph node name
    cls: "object | None" = None       # _ClassInfo when a same-class lock
    attr: str | None = None           # canonical self attribute, if so


@dataclass
class _Scope:
    """A function/method/closure body being analyzed."""

    qualname: str
    cls: "object | None"
    method: str | None                # owning top-level method name
    parent: "object | None" = None
    entry: bool = False               # explicit thread target
    holds: tuple[_Held, ...] = ()
    acquires: dict[str, int] = field(default_factory=dict)
    calls: list[tuple[str, str, tuple[_Held, ...], int]] = \
        field(default_factory=list)   # (kind, name, held, line)
    children: dict[str, "object"] = field(default_factory=dict)


@dataclass
class _Access:
    attr: str
    line: int
    col: int
    held_attrs: frozenset[str]        # canonical same-class lock attrs held
    scope: _Scope
    suppressed: bool


@dataclass
class _ClassInfo:
    name: str
    qualname: str
    path: str
    line: int
    thread_shared: bool = False
    handler: bool = False
    method_names: set[str] = field(default_factory=set)
    locks: dict[str, str] = field(default_factory=dict)   # attr -> canonical
    sync_attrs: set[str] = field(default_factory=set)
    guards: dict[str, tuple[str, int]] = field(default_factory=dict)
    methods: dict[str, _Scope] = field(default_factory=dict)
    scopes: list[_Scope] = field(default_factory=list)
    entry_methods: set[str] = field(default_factory=set)
    accesses: dict[str, list[_Access]] = field(default_factory=dict)


def _line_comments(source: str) -> dict[int, str]:
    """Map line number -> trailing comment text (tokenizer-accurate)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return comments
    return comments


def _dotted(node: ast.expr) -> list[str] | None:
    """``self.queue.not_empty`` -> ["self", "queue", "not_empty"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        segs = _dotted(base)
        if segs:
            names.append(segs[-1])
    return names


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _call_has_timeout(call: ast.Call) -> bool:
    """Heuristic: any non-``None`` argument can bound the wait."""
    for keyword in call.keywords:
        if keyword.arg == "timeout" and not _is_none(keyword.value):
            return True
    return any(not _is_none(arg) and not isinstance(arg, ast.Starred)
               for arg in call.args)


# ----------------------------------------------------------------------
# Module walker
# ----------------------------------------------------------------------
class _ModuleWalker:
    """One pass over one module: scopes, accesses, edges, blocking calls."""

    def __init__(self, path: str, source: str,
                 select: frozenset[str] | None) -> None:
        self.path = path
        self.select = select
        self.comments = _line_comments(source)
        self.tree = ast.parse(source, filename=path)
        self.classes: list[_ClassInfo] = []
        self.findings: list[LintFinding] = []
        self.edge_map: dict[tuple[str, str], LockEdge] = {}
        self.module_scope = _Scope(qualname=Path(path).stem, cls=None,
                                   method=None)
        self.scopes: list[_Scope] = [self.module_scope]
        self._pending_targets: list[tuple[_Scope, str]] = []
        self.module_locks: dict[str, str] = {}
        self._collect_module_locks()

    def _collect_module_locks(self) -> None:
        """Map module-level lock names to canonical graph node ids.

        A module-level ``x = threading.Lock()`` is a definite lock; an
        imported lockish name (``from a import lock_a``) canonicalizes
        to its *defining* module's id, so a lock shared by import keeps
        one graph node and AB/BA cycles split between files still meet.
        """
        for stmt in self.tree.body:
            if (isinstance(stmt, ast.ImportFrom) and stmt.module
                    and stmt.level == 0):
                owner = stmt.module.rsplit(".", 1)[-1]
                for alias in stmt.names:
                    name = alias.asname or alias.name
                    if _LOCKISH.search(alias.name) or "lock" in alias.name:
                        self.module_locks.setdefault(
                            name, f"{owner}.{alias.name}")
            elif isinstance(stmt, ast.Assign):
                if not isinstance(stmt.value, ast.Call):
                    continue
                segs = _dotted(stmt.value.func)
                if (segs[-1] if segs else "") not in _LOCK_FACTORIES:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_locks[target.id] = (
                            f"{self.module_scope.qualname}.{target.id}")

    # -- plumbing ------------------------------------------------------
    def _want(self, rule: str) -> bool:
        return self.select is None or rule in self.select

    def _comment(self, line: int) -> str:
        return self.comments.get(line, "")

    def _report(self, rule: str, line: int, col: int, detail: str) -> None:
        if self._want(rule):
            self.findings.append(LintFinding(
                self.path, line, col, rule,
                CONCURRENCY_RULES[rule] + f" ({detail})"))

    def _edge(self, src: _Held, dst: _Held, line: int) -> None:
        if src.lock_id == dst.lock_id:
            return  # reentrant re-acquire: not an ordering edge
        self.edge_map.setdefault(
            (src.lock_id, dst.lock_id),
            LockEdge(src.lock_id, dst.lock_id, self.path, line))

    # -- entry ---------------------------------------------------------
    def run(self) -> None:
        self._walk_body(self.tree.body, self.module_scope, ())
        self._resolve_thread_targets()
        self._interprocedural_edges()

    # -- statement walk ------------------------------------------------
    def _walk_body(self, stmts: list[ast.stmt], scope: _Scope,
                   held: tuple[_Held, ...]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, scope, held)

    def _walk_stmt(self, node: ast.AST, scope: _Scope,
                   held: tuple[_Held, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._walk_with(node, scope, held)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_function(node, scope)
        elif isinstance(node, ast.ClassDef):
            self._walk_class(node, scope)
        else:
            for _name, value in ast.iter_fields(node):
                if isinstance(value, list):
                    for item in value:
                        if isinstance(item, (ast.stmt, ast.excepthandler)):
                            self._walk_stmt(item, scope, held)
                        elif isinstance(item, ast.expr):
                            self._visit_expr(item, scope, held)
                elif isinstance(value, ast.expr):
                    self._visit_expr(value, scope, held)

    def _walk_with(self, node: ast.With | ast.AsyncWith, scope: _Scope,
                   held: tuple[_Held, ...]) -> None:
        for item in node.items:
            self._visit_expr(item.context_expr, scope, held)
            lock = self._lock_from_expr(item.context_expr, scope)
            if lock is not None:
                if all(h.lock_id != lock.lock_id for h in held):
                    for h in held:
                        self._edge(h, lock, item.context_expr.lineno)
                    scope.acquires.setdefault(lock.lock_id,
                                              item.context_expr.lineno)
                    held = held + (lock,)
            if item.optional_vars is not None:
                self._visit_expr(item.optional_vars, scope, held)
        self._walk_body(node.body, scope, held)

    def _walk_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                       scope: _Scope) -> None:
        for decorator in node.decorator_list:
            self._visit_expr(decorator, scope, ())
        for default in (node.args.defaults
                        + [d for d in node.args.kw_defaults if d is not None]):
            self._visit_expr(default, scope, ())
        child = _Scope(qualname=f"{scope.qualname}.{node.name}",
                       cls=scope.cls,
                       method=scope.method if scope.cls else None,
                       parent=scope)
        holds_match = _HOLDS_LOCK.search(self._comment(node.lineno))
        if holds_match is not None:
            lock = self._self_lock(holds_match.group(1), scope.cls)
            if lock is not None:
                child.holds = (lock,)
        scope.children[node.name] = child
        self.scopes.append(child)
        if isinstance(scope.cls, _ClassInfo):
            scope.cls.scopes.append(child)
        self._walk_body(node.body, child, child.holds)

    def _walk_class(self, node: ast.ClassDef, scope: _Scope) -> None:
        info = _ClassInfo(
            name=node.name,
            qualname=f"{scope.qualname}.{node.name}",
            path=self.path, line=node.lineno,
            thread_shared=bool(
                _THREAD_SHARED.search(self._comment(node.lineno))),
            handler=any(_HANDLER_BASE_MARKER in base
                        for base in _base_names(node)),
        )
        self.classes.append(info)
        info.method_names = {
            stmt.name for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
        self._collect_class_state(node, info)
        class_scope = _Scope(qualname=info.qualname, cls=info, method=None,
                             parent=scope)
        scope.children[node.name] = class_scope
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_scope_parent = _Scope(
                    qualname=info.qualname, cls=info, method=stmt.name,
                    parent=class_scope)
                self._walk_function(stmt, method_scope_parent)
                method = method_scope_parent.children[stmt.name]
                info.methods[stmt.name] = method
                class_scope.children[stmt.name] = method
            else:
                self._walk_stmt(stmt, class_scope, ())
        if info.handler:
            info.entry_methods |= set(info.method_names)
        if info.thread_shared:
            info.entry_methods |= {
                name for name in info.method_names
                if not name.startswith("_")
                or (name.startswith("__") and name.endswith("__")
                    and name not in ("__init__", "__new__", "__del__"))}

    def _collect_class_state(self, node: ast.ClassDef,
                             info: _ClassInfo) -> None:
        """Pre-pass: lock attributes, sync attributes, guard annotations."""
        raw: dict[str, str | None] = {}  # lock attr -> alias target
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                kind, alias = self._classify_value(attr, value)
                if kind == "lock":
                    raw[attr] = alias
                elif kind == "sync":
                    info.sync_attrs.add(attr)
                guard = _GUARDED_BY.search(self._comment(target.lineno))
                if guard is not None:
                    info.guards.setdefault(attr,
                                           (guard.group(1), target.lineno))
        for attr, alias in raw.items():
            canonical = attr
            seen = {attr}
            while alias is not None and alias in raw and alias not in seen:
                canonical = alias
                seen.add(alias)
                alias = raw[alias]
            if alias is not None and alias not in raw:
                canonical = alias if _LOCKISH.search(alias) else canonical
            info.locks[attr] = canonical

    @staticmethod
    def _classify_value(attr: str,
                        value: ast.expr) -> tuple[str | None, str | None]:
        """Classify ``self.attr = value`` as lock / sync object / neither."""
        def of_call(call: ast.Call) -> tuple[str | None, str | None]:
            segs = _dotted(call.func)
            name = segs[-1] if segs else ""
            if name in _LOCK_FACTORIES:
                alias = None
                if name == "Condition" and call.args:
                    arg = _dotted(call.args[0])
                    if arg and arg[0] == "self" and len(arg) == 2:
                        alias = arg[1]
                return "lock", alias
            if name in _SYNC_FACTORIES:
                return "sync", None
            return None, None

        if isinstance(value, ast.Call):
            kind, alias = of_call(value)
            if kind is not None:
                return kind, alias
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                if isinstance(operand, ast.Call):
                    kind, alias = of_call(operand)
                    if kind is not None:
                        return kind, alias
        if _LOCKISH.search(attr):
            return "lock", None
        return None, None

    # -- lock resolution ----------------------------------------------
    def _self_lock(self, attr: str, cls: object | None) -> _Held | None:
        if not isinstance(cls, _ClassInfo):
            return None
        canonical = cls.locks.get(attr)
        if canonical is None and _LOCKISH.search(attr):
            canonical = attr
        if canonical is None:
            return None
        return _Held(f"{cls.qualname}.{canonical}", cls, canonical)

    def _lock_from_expr(self, expr: ast.expr,
                        scope: _Scope) -> _Held | None:
        segs = _dotted(expr)
        if segs is None:
            return None
        if segs[0] == "self" and len(segs) == 2:
            return self._self_lock(segs[1], scope.cls)
        if len(segs) == 1 and segs[0] in self.module_locks:
            return _Held(self.module_locks[segs[0]])
        if not _LOCKISH.search(segs[-1]):
            return None
        if segs[0] == "self" and isinstance(scope.cls, _ClassInfo):
            return _Held(f"{scope.cls.qualname}.{'.'.join(segs[1:])}")
        return _Held(f"{scope.qualname}:{'.'.join(segs)}")

    # -- expression walk -----------------------------------------------
    def _visit_expr(self, expr: ast.expr, scope: _Scope,
                    held: tuple[_Held, ...]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                self._record_access(node, scope, held)
            elif isinstance(node, ast.Call):
                self._record_call(node, scope, held)

    def _record_access(self, node: ast.Attribute, scope: _Scope,
                       held: tuple[_Held, ...]) -> None:
        cls = scope.cls
        if not isinstance(cls, _ClassInfo):
            return
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        attr = node.attr
        if attr in cls.method_names or attr in cls.locks:
            return
        held_attrs = frozenset(
            h.attr for h in held if h.cls is cls and h.attr is not None)
        suppressed = bool(_RACE_OK.search(self._comment(node.lineno)))
        cls.accesses.setdefault(attr, []).append(_Access(
            attr, node.lineno, node.col_offset, held_attrs, scope,
            suppressed))

    def _record_call(self, node: ast.Call, scope: _Scope,
                     held: tuple[_Held, ...]) -> None:
        segs = _dotted(node.func)
        name = segs[-1] if segs else ""
        if name == "Thread":
            self._record_thread_target(node, scope)
        if (segs is not None and len(segs) == 2 and segs[0] == "self"
                and isinstance(scope.cls, _ClassInfo)
                and name in scope.cls.method_names):
            scope.calls.append(("self", name, held, node.lineno))
        elif isinstance(node.func, ast.Name):
            scope.calls.append(("name", name, held, node.lineno))
        if held:
            self._check_blocking(node, name, scope, held)

    def _record_thread_target(self, node: ast.Call, scope: _Scope) -> None:
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            segs = _dotted(keyword.value)
            if segs is None:
                continue
            if (segs[0] == "self" and len(segs) == 2
                    and isinstance(scope.cls, _ClassInfo)):
                scope.cls.entry_methods.add(segs[1])
            elif len(segs) == 1:
                self._pending_targets.append((scope, segs[0]))

    def _check_blocking(self, node: ast.Call, name: str, scope: _Scope,
                        held: tuple[_Held, ...]) -> None:
        effective = held
        if isinstance(node.func, ast.Attribute) and name in _CONDITION_METHODS:
            receiver = self._lock_from_expr(node.func.value, scope)
            if receiver is not None:
                # Condition.wait/notify release the lock they are
                # called on; only *other* held locks stay blocked.
                effective = tuple(h for h in held
                                  if h.lock_id != receiver.lock_id)
        if not effective:
            return
        blocking = (name in _BLOCKING_ALWAYS
                    or (name in _BLOCKING_NO_TIMEOUT
                        and not _call_has_timeout(node)))
        if not blocking:
            return
        if _LOCK_OK.search(self._comment(node.lineno)):
            return
        locks = ", ".join(h.lock_id for h in effective)
        self._report(
            "REPRO009", node.lineno, node.col_offset,
            f"blocking call {name}() while holding {locks}; add a timeout "
            f"or move it outside the lock")

    # -- post passes ---------------------------------------------------
    def _resolve_thread_targets(self) -> None:
        for scope, name in self._pending_targets:
            probe: object | None = scope
            while isinstance(probe, _Scope):
                child = probe.children.get(name)
                if isinstance(child, _Scope):
                    child.entry = True
                    break
                probe = probe.parent
            else:
                child = self.module_scope.children.get(name)
                if isinstance(child, _Scope):
                    child.entry = True

    def _resolve_callee(self, scope: _Scope, kind: str,
                        name: str) -> _Scope | None:
        if kind == "self" and isinstance(scope.cls, _ClassInfo):
            return scope.cls.methods.get(name)
        probe: object | None = scope
        while isinstance(probe, _Scope):
            child = probe.children.get(name)
            if isinstance(child, _Scope):
                return child
            probe = probe.parent
        child = self.module_scope.children.get(name)
        return child if isinstance(child, _Scope) else None

    def _summary(self, scope: _Scope,
                 memo: dict[int, frozenset[str]],
                 visiting: set[int]) -> frozenset[str]:
        """All lock ids a call into ``scope`` may acquire (transitive)."""
        key = id(scope)
        if key in memo:
            return memo[key]
        if key in visiting:
            return frozenset()
        visiting.add(key)
        acquired = set(scope.acquires)
        for kind, name, _held, _line in scope.calls:
            callee = self._resolve_callee(scope, kind, name)
            if callee is not None:
                acquired |= self._summary(callee, memo, visiting)
        visiting.discard(key)
        memo[key] = frozenset(acquired)
        return memo[key]

    def _interprocedural_edges(self) -> None:
        memo: dict[int, frozenset[str]] = {}
        for scope in self.scopes:
            for kind, name, held, line in scope.calls:
                if not held:
                    continue
                callee = self._resolve_callee(scope, kind, name)
                if callee is None:
                    continue
                for lock_id in sorted(self._summary(callee, memo, set())):
                    for h in held:
                        if h.lock_id != lock_id:
                            self.edge_map.setdefault(
                                (h.lock_id, lock_id),
                                LockEdge(h.lock_id, lock_id, self.path,
                                         line))

    # -- REPRO008 assembly ---------------------------------------------
    def class_findings(self) -> tuple[list[LintFinding],
                                      dict[str, tuple[GuardInfo, ...]]]:
        findings: list[LintFinding] = []
        guard_map: dict[str, tuple[GuardInfo, ...]] = {}
        for info in self.classes:
            if not info.locks:
                continue
            guards = self._class_guards(info, findings)
            if guards:
                guard_map[info.qualname] = tuple(guards)
            reached = self._reached_methods(info)
            for guard in guards:
                for access in info.accesses.get(guard.attr, ()):
                    if access.scope.method == "__init__":
                        continue
                    if access.suppressed or guard.lock in access.held_attrs:
                        continue
                    if not self._scope_reached(access.scope, reached):
                        continue
                    if self._want("REPRO008"):
                        findings.append(LintFinding(
                            self.path, access.line, access.col, "REPRO008",
                            CONCURRENCY_RULES["REPRO008"]
                            + (f" (self.{guard.attr} requires "
                               f"self.{guard.lock} [{guard.how}]; unlocked "
                               f"access in {access.scope.qualname}, "
                               f"thread-reachable)")))
        return findings, guard_map

    def _class_guards(self, info: _ClassInfo,
                      findings: list[LintFinding]) -> list[GuardInfo]:
        guards: list[GuardInfo] = []
        for attr, (lock_name, line) in sorted(info.guards.items()):
            canonical = info.locks.get(lock_name)
            if canonical is None:
                if self._want("REPRO008"):
                    findings.append(LintFinding(
                        self.path, line, 0, "REPRO008",
                        CONCURRENCY_RULES["REPRO008"]
                        + (f" (guarded-by: {lock_name} on self.{attr} names "
                           f"no known lock attribute of {info.qualname})")))
                continue
            guards.append(GuardInfo(attr, canonical, "annotated", line))
        annotated = {guard.attr for guard in guards} | set(info.guards)
        for attr, accesses in sorted(info.accesses.items()):
            if (attr in annotated or attr in info.locks
                    or attr in info.sync_attrs):
                continue
            counted = [access for access in accesses
                       if access.scope.method != "__init__"
                       and not access.suppressed]
            if not counted:
                continue
            tally: dict[str, int] = {}
            for access in counted:
                for lock in access.held_attrs:
                    tally[lock] = tally.get(lock, 0) + 1
            if not tally:
                continue
            lock, locked = max(sorted(tally.items()),
                               key=lambda item: item[1])
            if locked >= 2 and locked > len(counted) - locked:
                guards.append(GuardInfo(
                    attr, lock, "inferred",
                    min(access.line for access in counted)))
        return guards

    def _reached_methods(self, info: _ClassInfo) -> set[str]:
        reached = {name for name in info.entry_methods
                   if name in info.methods}
        changed = True
        while changed:
            changed = False
            for scope in info.scopes:
                if not (scope.entry
                        or (scope.method in reached
                            and scope.method is not None)):
                    continue
                for kind, name, _held, _line in scope.calls:
                    if (kind == "self" and name in info.methods
                            and name not in reached):
                        reached.add(name)
                        changed = True
        return reached

    @staticmethod
    def _scope_reached(scope: _Scope, reached: set[str]) -> bool:
        probe: object | None = scope
        while isinstance(probe, _Scope):
            if probe.entry:
                return True
            probe = probe.parent
        return scope.method is not None and scope.method in reached


# ----------------------------------------------------------------------
# Cycle detection and the public entry points
# ----------------------------------------------------------------------
def _cycle_findings(edges: dict[tuple[str, str], LockEdge],
                    select: frozenset[str] | None) -> list[LintFinding]:
    if select is not None and "REPRO009" not in select:
        return []
    adjacency: dict[str, list[str]] = {}
    for src, dst in sorted(edges):
        adjacency.setdefault(src, []).append(dst)
    findings: list[LintFinding] = []
    state: dict[str, int] = {}
    stack: list[str] = []
    seen_cycles: set[frozenset[str]] = set()

    def visit(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in adjacency.get(node, ()):
            if state.get(nxt, 0) == 0:
                visit(nxt)
            elif state.get(nxt) == 1:
                cycle = stack[stack.index(nxt):]
                key = frozenset(cycle)
                if key in seen_cycles:
                    continue
                seen_cycles.add(key)
                pairs = list(zip(cycle, cycle[1:] + [cycle[0]]))
                sites = "; ".join(
                    f"{edges[pair].src} -> {edges[pair].dst} at "
                    f"{edges[pair].path}:{edges[pair].line}"
                    for pair in pairs)
                first = edges[pairs[0]]
                findings.append(LintFinding(
                    first.path, first.line, 0, "REPRO009",
                    CONCURRENCY_RULES["REPRO009"]
                    + (f" (lock-order cycle "
                       f"{' -> '.join(cycle + [cycle[0]])}; {sites})")))
        state[node] = 2
        stack.pop()

    for node in sorted(adjacency):
        if state.get(node, 0) == 0:
            visit(node)
    return findings


def _analyze_modules(units: Sequence[tuple[str, str]],
                     select: frozenset[str] | None) -> ConcurrencyReport:
    findings: list[LintFinding] = []
    guards: dict[str, tuple[GuardInfo, ...]] = {}
    edges: dict[tuple[str, str], LockEdge] = {}
    for path, source in units:
        walker = _ModuleWalker(path, source, select)
        walker.run()
        findings.extend(walker.findings)
        class_findings, class_guards = walker.class_findings()
        findings.extend(class_findings)
        guards.update(class_guards)
        for key, edge in walker.edge_map.items():
            edges.setdefault(key, edge)
    findings.extend(_cycle_findings(edges, select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return ConcurrencyReport(findings=findings, guards=guards,
                             edges=tuple(edges.values()))


def analyze_source(source: str, path: str,
                   select: Iterable[str] | None = None) -> ConcurrencyReport:
    """Run the concurrency pass over one unit of python source."""
    chosen = frozenset(select) if select is not None else None
    return _analyze_modules([(path, source)], chosen)


def analyze_files(paths: Sequence[str | Path],
                  select: Iterable[str] | None = None) -> ConcurrencyReport:
    """Run the concurrency pass over files and directory trees.

    The lock-acquisition graph is global across all the analyzed
    modules, so AB/BA cycles split between files are still caught.
    """
    chosen = frozenset(select) if select is not None else None
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    units = [(str(file), file.read_text()) for file in files]
    return _analyze_modules(units, chosen)
