"""Finite-difference gradient checking (public API).

Promoted from the test suite so ``repro check --numeric`` can run
spot checks on a sampled layer; ``tests/gradcheck.py`` re-exports these
for the existing nn tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn import Tensor

__all__ = ["numeric_gradient", "check_gradient"]


def numeric_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(build: Callable[[Tensor], Tensor], x: np.ndarray,
                   atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert autograd gradient of ``sum(build(x))`` matches finite differences.

    ``build`` maps a Tensor to a Tensor of any shape; the check sums it to a
    scalar so one backward pass covers all outputs.
    """
    x = np.asarray(x, dtype=np.float64)

    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor).sum()
    out.backward()
    analytic = tensor.grad

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build(Tensor(arr)).sum().data)

    numeric = numeric_gradient(scalar_fn, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
