"""Symbolic shape inference for every ``repro.nn`` building block.

``infer_shapes(module, spec)`` plays a module's forward pass on a
:class:`~repro.analysis.shapes.ShapeSpec` instead of data: no arrays are
allocated, no autograd ops are recorded, and every contract the real
forward would enforce dynamically (trailing-axis sizes, embedding id
ranges, head divisibility, residual broadcasts) is checked symbolically.
Handlers are registered per module type and resolved through the MRO, so
a subclass inherits its parent's rule unless it registers its own —
model families register theirs in :mod:`repro.analysis.checker`.

Errors are :class:`~repro.analysis.shapes.ShapeError` carrying the dotted
path of the first incompatible edge (``encoder.layers.1.attention.query``),
which is exactly what ``repro check`` reports.
"""

from __future__ import annotations

from typing import Callable, Union

from .shapes import Dim, ShapeError, ShapeSpec, broadcast_shapes, dims_equal, render_shape
from ..nn import (
    Decoder,
    DecoderLayer,
    Dropout,
    Embedding,
    Encoder,
    EncoderLayer,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
)
from ..models.heads import (
    CellSelectionHead,
    ClassificationHead,
    EntityRecoveryHead,
    MlmHead,
)

__all__ = [
    "infer_shapes", "register_handler", "check_attention_mask",
    "infer_decoder", "SpecLike",
]

#: Decoder blocks take ``(target_spec, memory_spec)``; everything else one spec.
SpecLike = Union[ShapeSpec, tuple[ShapeSpec, ShapeSpec]]

_HANDLERS: dict[type, Callable[[Module, SpecLike, tuple[str, ...]], ShapeSpec]] = {}


def register_handler(module_type: type) -> Callable[[Callable], Callable]:
    """Class decorator-style registration of a shape rule for a module type."""
    def wrap(fn: Callable[[Module, SpecLike, tuple[str, ...]], ShapeSpec]) -> Callable:
        _HANDLERS[module_type] = fn
        return fn
    return wrap


def infer_shapes(module: Module, spec: SpecLike,
                 path: tuple[str, ...] = ()) -> ShapeSpec:
    """Symbolically run ``module.forward`` on ``spec``; returns the output spec.

    Resolution walks the module's MRO so subclasses fall back to the
    nearest registered ancestor rule.  Raises :class:`ShapeError` (with
    the offending dotted path) on the first provable incompatibility, or
    when no rule is registered for the module type.
    """
    for cls in type(module).__mro__:
        handler = _HANDLERS.get(cls)
        if handler is not None:
            return handler(module, spec, path)
    raise ShapeError(
        f"no shape-inference rule registered for {type(module).__name__}",
        path)


def _single(spec: SpecLike, path: tuple[str, ...]) -> ShapeSpec:
    if not isinstance(spec, ShapeSpec):
        raise ShapeError(
            "expected a single input spec (decoder blocks take a "
            "(target, memory) pair)", path)
    return spec


# ----------------------------------------------------------------------
# Core layers
# ----------------------------------------------------------------------
@register_handler(Linear)
def _infer_linear(module: Linear, spec: SpecLike,
                  path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    spec.require_dtype("float", path)
    spec.require_last(module.in_features, path,
                      what=f"Linear(in={module.in_features}) input")
    return spec.with_shape(spec.shape[:-1] + (module.out_features,))


@register_handler(Embedding)
def _infer_embedding(module: Embedding, spec: SpecLike,
                     path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    spec.require_dtype("int", path)
    if spec.max_value is not None and spec.max_value >= module.num_embeddings:
        raise ShapeError(
            f"ids may reach {spec.max_value} but the table holds only "
            f"{module.num_embeddings} rows", path)
    return spec.with_shape(spec.shape + (module.dim,))


@register_handler(LayerNorm)
def _infer_layernorm(module: LayerNorm, spec: SpecLike,
                     path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    spec.require_dtype("float", path)
    spec.require_last(module.dim, path,
                      what=f"LayerNorm({module.dim}) input")
    return spec.with_shape(spec.shape)


@register_handler(Dropout)
def _infer_dropout(module: Dropout, spec: SpecLike,
                   path: tuple[str, ...]) -> ShapeSpec:
    return _single(spec, path)


# ----------------------------------------------------------------------
# Transformer blocks
# ----------------------------------------------------------------------
@register_handler(FeedForward)
def _infer_feed_forward(module: FeedForward, spec: SpecLike,
                        path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    hidden = infer_shapes(module.expand, spec, path + ("expand",))
    return infer_shapes(module.contract, hidden, path + ("contract",))


@register_handler(MultiHeadAttention)
def _infer_attention(module: MultiHeadAttention, spec: SpecLike,
                     path: tuple[str, ...]) -> ShapeSpec:
    if isinstance(spec, tuple):
        x_spec, memory_spec = spec
    else:
        x_spec, memory_spec = spec, spec
    x_spec.require_ndim(3, path)
    memory_spec.require_ndim(3, path)
    x_spec.require_last(module.dim, path,
                        what=f"attention(dim={module.dim}) query input")
    memory_spec.require_last(module.dim, path,
                             what=f"attention(dim={module.dim}) key/value input")
    if dims_equal(x_spec.shape[0], memory_spec.shape[0]) is False:
        raise ShapeError(
            f"query batch {x_spec.shape[0]} != memory batch "
            f"{memory_spec.shape[0]}", path)
    # head split: dim must factor into num_heads * head_dim.
    if module.num_heads * module.head_dim != module.dim:
        raise ShapeError(
            f"dim {module.dim} does not split into {module.num_heads} heads",
            path)
    infer_shapes(module.query, x_spec, path + ("query",))
    infer_shapes(module.key, memory_spec, path + ("key",))
    infer_shapes(module.value, memory_spec, path + ("value",))
    merged = x_spec.with_shape(x_spec.shape)
    return infer_shapes(module.output, merged, path + ("output",))


def check_attention_mask(module: MultiHeadAttention, x_spec: ShapeSpec,
                         mask_spec: ShapeSpec, path: tuple[str, ...],
                         key_len: Dim | None = None) -> None:
    """Prove a block mask/bias broadcasts over ``(B, heads, T_q, T_k)``."""
    batch, seq = x_spec.shape[0], x_spec.shape[1]
    scores = (batch, module.num_heads, seq,
              seq if key_len is None else key_len)
    if mask_spec.ndim > 4:
        raise ShapeError(
            f"mask rank {mask_spec.ndim} exceeds attention scores rank 4",
            path)
    broadcast_shapes(scores, mask_spec.shape, path)
    # A per-head mask must carry exactly the layer's head count.
    if mask_spec.ndim == 4:
        heads = mask_spec.shape[1]
        if heads != 1 and dims_equal(heads, module.num_heads) is False:
            raise ShapeError(
                f"mask provides {heads} head slices but attention runs "
                f"{module.num_heads} heads", path)


def _residual(a: ShapeSpec, b: ShapeSpec, path: tuple[str, ...]) -> ShapeSpec:
    return a.with_shape(broadcast_shapes(a.shape, b.shape, path))


@register_handler(EncoderLayer)
def _infer_encoder_layer(module: EncoderLayer, spec: SpecLike,
                         path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    normed = infer_shapes(module.norm_attention, spec, path + ("norm_attention",))
    attended = infer_shapes(module.attention, normed, path + ("attention",))
    spec = _residual(spec, attended, path + ("attention",))
    normed = infer_shapes(module.norm_feed_forward, spec,
                          path + ("norm_feed_forward",))
    mlp = infer_shapes(module.feed_forward, normed, path + ("feed_forward",))
    return _residual(spec, mlp, path + ("feed_forward",))


@register_handler(Encoder)
def _infer_encoder(module: Encoder, spec: SpecLike,
                   path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    spec.require_ndim(3, path)
    for i, layer in enumerate(module.layers):
        spec = infer_shapes(layer, spec, path + ("layers", str(i)))
    return infer_shapes(module.final_norm, spec, path + ("final_norm",))


@register_handler(DecoderLayer)
def _infer_decoder_layer(module: DecoderLayer, spec: SpecLike,
                         path: tuple[str, ...]) -> ShapeSpec:
    if not isinstance(spec, tuple):
        raise ShapeError("DecoderLayer needs a (target, memory) spec pair",
                         path)
    target, memory = spec
    normed = infer_shapes(module.norm_self, target, path + ("norm_self",))
    attended = infer_shapes(module.self_attention, normed,
                            path + ("self_attention",))
    target = _residual(target, attended, path + ("self_attention",))
    normed = infer_shapes(module.norm_cross, target, path + ("norm_cross",))
    crossed = infer_shapes(module.cross_attention, (normed, memory),
                           path + ("cross_attention",))
    target = _residual(target, crossed, path + ("cross_attention",))
    normed = infer_shapes(module.norm_feed_forward, target,
                          path + ("norm_feed_forward",))
    mlp = infer_shapes(module.feed_forward, normed, path + ("feed_forward",))
    return _residual(target, mlp, path + ("feed_forward",))


@register_handler(Decoder)
def _infer_decoder(module: Decoder, spec: SpecLike,
                   path: tuple[str, ...]) -> ShapeSpec:
    if not isinstance(spec, tuple):
        raise ShapeError("Decoder needs a (target, memory) spec pair", path)
    target, memory = spec
    target.require_ndim(3, path)
    memory.require_ndim(3, path)
    for i, layer in enumerate(module.layers):
        target = infer_shapes(layer, (target, memory),
                              path + ("layers", str(i)))
    return infer_shapes(module.final_norm, target, path + ("final_norm",))


def infer_decoder(module: Decoder, target: ShapeSpec, memory: ShapeSpec,
                  path: tuple[str, ...] = ()) -> ShapeSpec:
    """Convenience wrapper: ``infer_shapes(decoder, (target, memory))``."""
    return infer_shapes(module, (target, memory), path)


# ----------------------------------------------------------------------
# Task / pretraining heads
# ----------------------------------------------------------------------
@register_handler(MlmHead)
def _infer_mlm_head(module: MlmHead, spec: SpecLike,
                    path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    transformed = infer_shapes(module.transform, spec, path + ("transform",))
    vocab, tied_dim = module.tied_weight.shape
    transformed.require_last(tied_dim, path + ("tied_weight",),
                             what="tied-projection input")
    if module.bias.shape[0] != vocab:
        raise ShapeError(
            f"bias covers {module.bias.shape[0]} entries but the tied "
            f"vocabulary holds {vocab}", path + ("bias",))
    return transformed.with_shape(transformed.shape[:-1] + (vocab,))


@register_handler(EntityRecoveryHead)
def _infer_entity_head(module: EntityRecoveryHead, spec: SpecLike,
                       path: tuple[str, ...]) -> ShapeSpec:
    return _infer_mlm_head(module, spec, path)


@register_handler(ClassificationHead)
def _infer_classification_head(module: ClassificationHead, spec: SpecLike,
                               path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    hidden = infer_shapes(module.hidden, spec, path + ("hidden",))
    return infer_shapes(module.output, hidden, path + ("output",))


@register_handler(CellSelectionHead)
def _infer_cell_selection_head(module: CellSelectionHead, spec: SpecLike,
                               path: tuple[str, ...]) -> ShapeSpec:
    spec = _single(spec, path)
    spec.require_ndim(3, path)
    scored = infer_shapes(module.scorer, spec, path + ("scorer",))
    if dims_equal(scored.last(), 1) is False:
        raise ShapeError(
            f"token scorer must emit one logit per token, got "
            f"{render_shape(scored.shape)}", path + ("scorer",))
    return scored.with_shape(scored.shape[:-1])
