"""AST lint pass encoding this repo's invariants (``repro lint``).

Rules — each guards a convention the rest of the codebase relies on:

- **REPRO001** no global-RNG ``np.random.*`` calls: randomness must flow
  through explicit ``Generator`` objects so seeds stay reproducible.
- **REPRO002** no bare ndarray arithmetic on ``Tensor.data`` outside
  ``nn/``: math on ``.data`` bypasses the autograd tape and silently
  drops gradients.
- **REPRO003** no mutable default arguments.
- **REPRO004** serve-path ``.forward(...)`` calls must sit lexically
  inside an inference context (``inference_mode()`` /
  ``model.inference()``) so serving never records a tape.
- **REPRO005** public functions in ``analysis`` / ``serve`` / ``runtime``
  must carry full parameter and return annotations — these are the
  packages other tooling introspects.
- **REPRO006** op math must go through the backend: inside ``nn/`` only
  the backend seam itself (``backend.py``, ``compile.py``, ``tensor.py``,
  ``optim.py``) may do raw ``.data`` arithmetic, and the deprecated
  ``Tensor._make`` constructor may not be called anywhere — both bypass
  the :mod:`repro.nn.backend` op registry, so compiled replay and any
  future non-numpy backend would silently disagree with eager mode.
- **REPRO007** no silent exception swallowing: bare ``except:`` is
  always flagged, and ``except X: pass`` (a handler whose body is only
  ``pass``/``...``) is flagged unless *every* caught exception is on
  the shutdown-noise allowlist (``KeyboardInterrupt``, ``EOFError``,
  ``BrokenPipeError``, ``StopIteration``, ``GeneratorExit``).  Broad
  classes like ``Exception`` or ``OSError`` silently ``pass``-ed have
  repeatedly hidden real worker/transport failures — handle them, name
  a narrower type, or at minimum record why ignoring is correct in the
  handler body.
- **REPRO008** guarded attributes (``# guarded-by:`` annotations plus
  lock-usage inference) must not be read or written outside their lock
  on thread-reachable paths — see :mod:`repro.analysis.concurrency`.
- **REPRO009** no lock-order cycles in the static acquisition graph
  and no blocking calls (``sleep``, pipe IO, untimed ``wait``/``join``)
  while holding a lock — see :mod:`repro.analysis.concurrency`.

Rule applicability is decided from *directory parts* of each file's
path (``nn``, ``serve``, ...), so fixture trees in tests exercise the
same logic as the real source tree.  REPRO008/REPRO009 are whole-tree
passes (guard maps and the lock graph span files), so they run from
:func:`run_lint` rather than :func:`lint_source`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["LintFinding", "run_lint", "lint_file", "lint_source", "RULES"]

RULES: dict[str, str] = {
    "REPRO001": "np.random.* global-RNG call (pass a Generator instead)",
    "REPRO002": "ndarray arithmetic on Tensor.data outside nn/",
    "REPRO003": "mutable default argument",
    "REPRO004": "serve-path forward() outside an inference context",
    "REPRO005": "public function missing type annotations",
    "REPRO006": "op math must go through the backend",
    "REPRO007": "exception silently swallowed (bare except / except-pass)",
    "REPRO008": "guarded attribute accessed outside its lock",
    "REPRO009": "lock-order hazard (cycle or blocking call under lock)",
}

#: Exceptions whose silent suppression is legitimate shutdown noise —
#: ``except <these>: pass`` is allowed; anything broader must handle.
_SILENCEABLE_EXCEPTIONS = frozenset({
    "KeyboardInterrupt", "EOFError", "BrokenPipeError", "StopIteration",
    "GeneratorExit",
})

#: nn/ modules that *are* the backend seam — the only places raw
#: ``.data`` arithmetic is the implementation rather than a bypass.
_BACKEND_SEAM_FILES = frozenset({
    "backend.py", "compile.py", "tensor.py", "optim.py",
})

#: ``np.random.<name>`` calls that are construction, not global state.
_RNG_FACTORY_NAMES = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "Philox", "SFC64", "MT19937",
})

_ANNOTATED_PACKAGES = frozenset({"analysis", "serve", "runtime"})


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _is_np_random_attr(node: ast.AST) -> str | None:
    """Return the trailing attribute of ``np.random.X`` / ``numpy.random.X``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if (isinstance(value, ast.Attribute) and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy")):
        return node.attr
    return None


def _is_data_access(node: ast.AST) -> bool:
    """True for ``x.data`` and for subscripts of it (``x.data[i]``)."""
    if isinstance(node, ast.Subscript):
        return _is_data_access(node.value)
    return isinstance(node, ast.Attribute) and node.attr == "data"


def _mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set"))


def _body_is_pass(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing (only ``pass``/``...``)."""
    return all(isinstance(statement, ast.Pass)
               or (isinstance(statement, ast.Expr)
                   and isinstance(statement.value, ast.Constant)
                   and statement.value.value is Ellipsis)
               for statement in body)


def _exception_names(node: ast.expr) -> list[str]:
    """The caught exception names of an ``except`` clause, flattened.

    ``except (A, B)`` yields both; dotted names yield their last
    attribute; anything unrecognizable yields nothing (and the caller
    treats the clause as not allowlisted).
    """
    if isinstance(node, ast.Tuple):
        names: list[str] = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = (node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            + ([node.args.vararg] if node.args.vararg else [])
            + ([node.args.kwarg] if node.args.kwarg else []))
    for i, arg in enumerate(args):
        if i == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            return True
    return node.returns is None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, parts: frozenset[str],
                 select: frozenset[str] | None) -> None:
        self.path = path
        self.in_nn = "nn" in parts
        self.in_serve = "serve" in parts
        name = Path(path).name
        self.in_backend_seam = name in _BACKEND_SEAM_FILES
        self.needs_annotations = bool(parts & _ANNOTATED_PACKAGES)
        self.select = select
        self.findings: list[LintFinding] = []
        self._inference_depth = 0

    # ------------------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, detail: str = "") -> None:
        if self.select is not None and rule not in self.select:
            return
        message = RULES[rule] + (f" ({detail})" if detail else "")
        self.findings.append(LintFinding(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), rule, message))

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        attr = _is_np_random_attr(node.func)
        if attr is not None and attr not in _RNG_FACTORY_NAMES:
            self._report("REPRO001", node, f"np.random.{attr}")
        if (self.in_serve and self._inference_depth == 0
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "forward"):
            self._report("REPRO004", node)
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "_make"
                and not self.in_backend_seam):
            self._report("REPRO006", node,
                         "Tensor._make bypasses the backend op registry")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        inference = any("inference" in ast.unparse(item.context_expr)
                        for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if inference:
            self._inference_depth += 1
        for statement in node.body:
            self.visit(statement)
        if inference:
            self._inference_depth -= 1

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if _is_data_access(node.left) or _is_data_access(node.right):
            if not self.in_nn:
                self._report("REPRO002", node)
            elif not self.in_backend_seam:
                self._report("REPRO006", node,
                             "raw .data arithmetic inside nn/")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if _is_data_access(node.target) or _is_data_access(node.value):
            if not self.in_nn:
                self._report("REPRO002", node)
            elif not self.in_backend_seam:
                self._report("REPRO006", node,
                             "raw .data arithmetic inside nn/")
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report("REPRO007", node, "bare except:")
        elif _body_is_pass(node.body):
            caught = _exception_names(node.type)
            silenced = [name for name in caught
                        if name not in _SILENCEABLE_EXCEPTIONS]
            if silenced or not caught:
                self._report("REPRO007", node,
                             f"except {', '.join(caught) or '?'}: pass")
        self.generic_visit(node)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in node.args.defaults + [
                d for d in node.args.kw_defaults if d is not None]:
            if _mutable_default(default):
                self._report("REPRO003", default, node.name)
        public = not node.name.startswith("_")
        if self.needs_annotations and public and _missing_annotations(node):
            self._report("REPRO005", node, node.name)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def lint_source(source: str, path: str,
                select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint one unit of python source; ``path`` decides rule scoping."""
    parts = frozenset(Path(path).parts[:-1])
    visitor = _Visitor(path, parts,
                       frozenset(select) if select is not None else None)
    visitor.visit(ast.parse(source, filename=path))
    return visitor.findings


def lint_file(path: str | Path,
              select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint one file."""
    path = Path(path)
    return lint_source(path.read_text(), str(path), select=select)


def run_lint(paths: Sequence[str | Path],
             select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint files and directory trees; returns findings in path order."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    findings: list[LintFinding] = []
    for file in files:
        findings.extend(lint_file(file, select=select))
    chosen = frozenset(select) if select is not None else None
    if chosen is None or chosen & {"REPRO008", "REPRO009"}:
        # Whole-tree pass: guard maps and the lock-acquisition graph
        # span files, so the concurrency rules run over the file set.
        from .concurrency import analyze_files
        findings.extend(analyze_files(files, select=chosen).findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
