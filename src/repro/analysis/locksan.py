"""Runtime lock sanitizer: lock-order inversions and hold times, live.

The static pass (:mod:`repro.analysis.concurrency`) reasons about lock
*names*; this module watches lock *instances*.  While installed, a
:class:`LockSanitizer` replaces :func:`threading.Lock` and
:func:`threading.RLock` with wrapping factories (``Condition`` needs no
patching — it builds on ``RLock`` and works with wrapped locks through
the ``_is_owned`` / ``_release_save`` / ``_acquire_restore`` protocol
the wrapper implements).  Every wrapped lock records, per thread:

- the **acquisition stack** — which locks this thread already held,
  and from which call sites;
- the **lock-order edge set** — lock A held while B was acquired.
  Observing edge (B, A) when (A, B) is already on record is a
  *lock-order inversion*: two threads interleaving those paths can
  deadlock.  The witness (both stacks, both threads) is kept on
  :attr:`violations` and emitted as a ``kind="concurrency"`` event.
- **hold times** — releases held longer than ``long_hold_seconds``
  become warnings (never violations: coarse locking can be a
  deliberate design, e.g. the fleet cache holding its lock across a
  forward pass).

Locks are keyed by *creation site* (lockdep-style), so every request
ticket creating its own lock maps to one logical lock.  Locks created
by ``threading`` / ``multiprocessing`` internals (every ``Event`` owns
a ``Condition``) are left unwrapped to keep overhead and noise down.

Usage::

    with LockSanitizer() as san:
        ...  # create locks, run threads
    assert not san.violations, san.render_report()

or ``repro serve --sanitize-threads``, or the ``lock_sanitizer``
pytest fixture in ``tests/concurrency``.

Only one sanitizer may be installed at a time; locks created before
``install()`` (or after ``uninstall()``) are invisible to it.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable

from ..runtime import get_registry

__all__ = ["LockSanitizer", "SanitizerError"]

#: The true factories, captured at import before anyone can patch them.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Module prefixes whose internal locks stay unwrapped.
_INTERNAL_MODULES = ("threading", "multiprocessing", "concurrent", "queue")

#: How many caller frames a witness records per acquisition.
_WITNESS_FRAMES = 6


class SanitizerError(RuntimeError):
    """Install-state misuse (double install, uninstall before install)."""


def _caller_frames(skip: int) -> tuple[str, ...]:
    """Compact ``file:line in func`` strings for the caller's stack."""
    frames: list[str] = []
    try:
        frame = sys._getframe(skip)
    except ValueError:
        return ()
    while frame is not None and len(frames) < _WITNESS_FRAMES:
        code = frame.f_code
        frames.append(f"{code.co_filename}:{frame.f_lineno} "
                      f"in {code.co_name}")
        frame = frame.f_back
    return tuple(frames)


def _creation_site(skip: int) -> str:
    """``file:line`` of the first frame outside this module."""
    try:
        frame = sys._getframe(skip)
    except ValueError:
        return "<unknown>"
    while frame is not None:
        if frame.f_globals.get("__name__") != __name__:
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _TrackedLock:
    """Wraps a real lock; reports transitions to the sanitizer.

    Provides the private protocol :class:`threading.Condition` relies
    on, so ``Condition(wrapped_lock)`` behaves exactly like the real
    thing while waits keep the bookkeeping consistent.
    """

    __slots__ = ("_inner", "_san", "key", "kind")

    def __init__(self, inner: Any, sanitizer: "LockSanitizer", kind: str,
                 key: str) -> None:
        self._inner = inner
        self._san = sanitizer
        self.kind = kind
        self.key = key

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._san._on_acquire(self)
        return acquired

    def release(self) -> None:
        self._san._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<sanitized {self.kind} {self.key}>"

    # -- Condition protocol -------------------------------------------
    def _release_save(self) -> tuple[str, Any, int]:
        depth = self._san._depth_of(self)
        self._san._on_release_all(self)
        if hasattr(self._inner, "_release_save"):
            return ("rlock", self._inner._release_save(), depth)
        self._inner.release()
        return ("lock", None, depth)

    def _acquire_restore(self, state: tuple[str, Any, int]) -> None:
        kind, inner_state, depth = state
        if kind == "rlock":
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        self._san._on_acquire(self, depth=max(depth, 1))

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        return self._san._depth_of(self) > 0


class _HeldRecord:
    __slots__ = ("lock", "key", "since", "frames")

    def __init__(self, lock: _TrackedLock, since: float,
                 frames: tuple[str, ...]) -> None:
        self.lock = lock
        self.key = lock.key
        self.since = since
        self.frames = frames


class LockSanitizer:  # thread-shared
    """Record per-thread lock acquisition order; flag inversions live."""

    def __init__(self, long_hold_seconds: float = 0.5,
                 clock: Callable[[], float] = time.monotonic,
                 wrap_internal: bool = False) -> None:
        self.long_hold_seconds = long_hold_seconds
        self.wrap_internal = wrap_internal
        self._clock = clock
        self._meta_lock = _REAL_LOCK()  # guards every field below
        self.installed = False
        self.acquisitions = 0          # guarded-by: _meta_lock
        self.long_holds = 0            # guarded-by: _meta_lock
        self.max_hold_seconds = 0.0    # guarded-by: _meta_lock
        self.violations: list[dict[str, Any]] = []   # guarded-by: _meta_lock
        self.warnings: list[dict[str, Any]] = []     # guarded-by: _meta_lock
        self._edges: dict[tuple[str, str],
                          dict[str, Any]] = {}       # guarded-by: _meta_lock
        self._tls = threading.local()

    # -- lifecycle -----------------------------------------------------
    def install(self) -> "LockSanitizer":
        """Patch ``threading.Lock``/``RLock`` to produce tracked locks."""
        if self.installed:
            raise SanitizerError("LockSanitizer is already installed")
        if threading.Lock is not _REAL_LOCK:
            raise SanitizerError("another LockSanitizer is installed")
        self.installed = True
        threading.Lock = self._factory("Lock", _REAL_LOCK)
        threading.RLock = self._factory("RLock", _REAL_RLOCK)
        return self

    def uninstall(self) -> None:
        """Restore the real factories and push totals to the registry."""
        if not self.installed:
            raise SanitizerError("LockSanitizer is not installed")
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        self.installed = False
        registry = get_registry()
        with self._meta_lock:
            acquisitions = self.acquisitions
            long_holds = self.long_holds
            inversions = len(self.violations)
        registry.counter("concurrency.acquisitions").inc(acquisitions)
        registry.counter("concurrency.long_holds").inc(long_holds)
        registry.counter("concurrency.lock_inversions").inc(inversions)

    def __enter__(self) -> "LockSanitizer":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # -- factory -------------------------------------------------------
    def _factory(self, kind: str, real: Callable[[], Any]) -> Callable[[], Any]:
        def make_lock() -> Any:
            inner = real()
            try:
                caller = sys._getframe(1)
            except ValueError:
                return inner
            module = caller.f_globals.get("__name__", "")
            if not self.wrap_internal and module.split(".")[0] in \
                    _INTERNAL_MODULES:
                return inner
            return _TrackedLock(inner, self, kind, _creation_site(1))
        return make_lock

    # -- per-thread state ---------------------------------------------
    def _state(self) -> Any:
        tls = self._tls
        if not hasattr(tls, "stack"):
            tls.stack = []
            tls.depths = {}
            tls.in_hook = False
        return tls

    def _depth_of(self, lock: _TrackedLock) -> int:
        return self._state().depths.get(id(lock), 0)

    # -- hooks ---------------------------------------------------------
    def _on_acquire(self, lock: _TrackedLock, depth: int = 1) -> None:
        tls = self._state()
        if tls.in_hook:
            return
        tls.in_hook = True
        try:
            prior_depth = tls.depths.get(id(lock), 0)
            tls.depths[id(lock)] = prior_depth + depth
            if prior_depth:
                return  # reentrant RLock re-acquire: no new ordering
            frames = _caller_frames(3)
            record = _HeldRecord(lock, self._clock(), frames)
            thread = threading.current_thread().name
            inversions: list[dict[str, Any]] = []
            with self._meta_lock:
                self.acquisitions += 1
                for held in tls.stack:
                    if held.key == lock.key:
                        continue
                    edge = (held.key, lock.key)
                    reverse = (lock.key, held.key)
                    witness = self._edges.get(reverse)
                    if witness is not None and edge not in self._edges:
                        inversions.append({
                            "kind": "lock_order_inversion",
                            "locks": [held.key, lock.key],
                            "thread": thread,
                            "frames": list(frames),
                            "prior_thread": witness["thread"],
                            "prior_frames": list(witness["frames"]),
                        })
                    self._edges.setdefault(edge, {
                        "thread": thread, "frames": frames})
                self.violations.extend(inversions)
            tls.stack.append(record)
            for inversion in inversions:
                get_registry().emit(dict(inversion, kind="concurrency",
                                         violation="lock_order_inversion"))
        finally:
            tls.in_hook = False

    def _on_release(self, lock: _TrackedLock) -> None:
        tls = self._state()
        if tls.in_hook:
            return
        tls.in_hook = True
        try:
            prior_depth = tls.depths.get(id(lock), 0)
            if prior_depth == 0:
                return  # acquired before install, or foreign thread
            tls.depths[id(lock)] = prior_depth - 1
            if prior_depth > 1:
                return
            self._finish_hold(tls, lock)
        finally:
            tls.in_hook = False

    def _on_release_all(self, lock: _TrackedLock) -> None:
        """Condition.wait released the lock fully, whatever its depth."""
        tls = self._state()
        if tls.in_hook:
            return
        tls.in_hook = True
        try:
            if tls.depths.get(id(lock), 0) == 0:
                return
            tls.depths[id(lock)] = 0
            self._finish_hold(tls, lock)
        finally:
            tls.in_hook = False

    def _finish_hold(self, tls: Any, lock: _TrackedLock) -> None:
        for index in reversed(range(len(tls.stack))):
            if tls.stack[index].lock is lock:
                record = tls.stack.pop(index)
                break
        else:
            return
        duration = self._clock() - record.since
        with self._meta_lock:
            if duration > self.max_hold_seconds:
                self.max_hold_seconds = duration
            if duration >= self.long_hold_seconds:
                self.long_holds += 1
                self.warnings.append({
                    "kind": "long_hold",
                    "lock": record.key,
                    "seconds": duration,
                    "thread": threading.current_thread().name,
                    "frames": list(record.frames),
                })

    # -- reporting -----------------------------------------------------
    def render_report(self) -> str:
        """Violations and warnings with their witness stacks."""
        with self._meta_lock:
            violations = [dict(v) for v in self.violations]
            warnings = [dict(w) for w in self.warnings]
            acquisitions = self.acquisitions
        lines = [f"lock sanitizer: {acquisitions} acquisitions, "
                 f"{len(violations)} violation(s), "
                 f"{len(warnings)} warning(s)"]
        for violation in violations:
            lock_a, lock_b = violation["locks"]
            lines.append(f"VIOLATION lock-order inversion: {lock_a} -> "
                         f"{lock_b} on thread {violation['thread']}, but "
                         f"{lock_b} -> {lock_a} was seen on thread "
                         f"{violation['prior_thread']}")
            lines.extend(f"    now: {frame}"
                         for frame in violation["frames"])
            lines.extend(f"  prior: {frame}"
                         for frame in violation["prior_frames"])
        for warning in warnings:
            lines.append(f"warning: {warning['lock']} held "
                         f"{warning['seconds']:.3f}s on thread "
                         f"{warning['thread']}")
        return "\n".join(lines)
