"""Symbolic shapes: the vocabulary of the static checker.

A :class:`ShapeSpec` describes a tensor *before it exists*: each axis is
either a concrete ``int`` or a symbolic name (``"B"``, ``"T"``,
``"n_rows"``, ``"n_cols"``), the dtype is a coarse kind (``float`` /
``int`` / ``bool``), and integer specs optionally carry an inclusive
``max_value`` bound so embedding-table lookups can be range-checked
without materializing ids.

Two symbolic dims are equal iff their names match; a symbolic dim
compared against a concrete size is *unknowable* and never reported as an
error — the checker only flags what it can prove.  :class:`ShapeError`
carries the dotted module path to the first incompatible edge, which is
what ``repro check`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Union

__all__ = [
    "Dim", "ShapeSpec", "ShapeError",
    "dims_equal", "broadcast_shapes", "render_shape",
]

#: One axis of a symbolic shape: a concrete size or a symbol name.
Dim = Union[int, str]


class ShapeError(Exception):
    """A provable shape/dtype incompatibility at a specific module edge."""

    def __init__(self, message: str, path: tuple[str, ...] = ()) -> None:
        self.message = message
        self.path = tuple(path)
        super().__init__(message)

    def __str__(self) -> str:
        if not self.path:
            return self.message
        return f"{'.'.join(self.path)}: {self.message}"


def render_shape(shape: tuple[Dim, ...]) -> str:
    """Human-readable form, e.g. ``(B, T, 48)``."""
    return "(" + ", ".join(str(d) for d in shape) + ")"


def dims_equal(a: Dim, b: Dim) -> bool | None:
    """Three-valued dim comparison: True, False, or None when unknowable."""
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, str) and isinstance(b, str):
        return True if a == b else None
    return None


def _broadcast_dim(a: Dim, b: Dim, path: tuple[str, ...]) -> Dim:
    if a == 1:
        return b
    if b == 1:
        return a
    verdict = dims_equal(a, b)
    if verdict is False:
        raise ShapeError(f"cannot broadcast dim {a} against {b}", path)
    # Prefer the concrete side when one is symbolic — downstream checks
    # get more proving power out of a known size.
    if verdict is None and isinstance(a, int):
        return a
    if verdict is None and isinstance(b, int):
        return b
    return a


def broadcast_shapes(a: tuple[Dim, ...], b: tuple[Dim, ...],
                     path: tuple[str, ...] = ()) -> tuple[Dim, ...]:
    """Numpy-style broadcast of two symbolic shapes (right-aligned)."""
    out: list[Dim] = []
    for i in range(max(len(a), len(b))):
        da = a[len(a) - 1 - i] if i < len(a) else 1
        db = b[len(b) - 1 - i] if i < len(b) else 1
        out.append(_broadcast_dim(da, db, path))
    return tuple(reversed(out))


@dataclass(frozen=True)
class ShapeSpec:
    """A symbolic tensor description flowing through the checker.

    Parameters
    ----------
    shape:
        Per-axis dims; symbols stand for sizes fixed only at runtime.
    dtype:
        Coarse kind: ``"float"`` (the default everywhere in this repo),
        ``"int"`` (ids feeding embeddings), or ``"bool"`` (masks).
    max_value:
        For ``int`` specs, an inclusive upper bound on the values — what
        embedding range checks consume.  ``None`` means unbounded.
    """

    shape: tuple[Dim, ...]
    dtype: str = "float"
    max_value: int | None = None

    def __post_init__(self) -> None:
        if self.dtype not in ("float", "int", "bool"):
            raise ValueError(f"unknown dtype kind {self.dtype!r}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def last(self) -> Dim:
        if not self.shape:
            raise ShapeError("expected at least one axis, got a scalar spec")
        return self.shape[-1]

    def with_shape(self, shape: tuple[Dim, ...],
                   dtype: str | None = None) -> "ShapeSpec":
        """A float spec with new axes (value bounds do not survive ops)."""
        return ShapeSpec(shape=tuple(shape),
                         dtype=dtype if dtype is not None else "float")

    def require_last(self, expected: int, path: tuple[str, ...],
                     what: str = "feature") -> None:
        """Raise unless the trailing axis provably equals ``expected``."""
        actual = self.last()
        if dims_equal(actual, expected) is False:
            raise ShapeError(
                f"{what} axis is {actual}, expected {expected} "
                f"(input {render_shape(self.shape)})", path)

    def require_dtype(self, expected: str, path: tuple[str, ...]) -> None:
        if self.dtype != expected:
            raise ShapeError(
                f"dtype is {self.dtype}, expected {expected} "
                f"(input {render_shape(self.shape)})", path)

    def require_ndim(self, expected: int, path: tuple[str, ...]) -> None:
        if self.ndim != expected:
            raise ShapeError(
                f"rank is {self.ndim}, expected {expected} "
                f"(input {render_shape(self.shape)})", path)

    def bind(self, bindings: Mapping[str, int]) -> "ShapeSpec":
        """Substitute symbols with concrete sizes (missing ones survive)."""
        bound = tuple(bindings.get(d, d) if isinstance(d, str) else d
                      for d in self.shape)
        return replace(self, shape=bound)

    def concrete_shape(self, bindings: Mapping[str, int]) -> tuple[int, ...]:
        """Fully concrete shape; raises if any symbol stays unbound."""
        bound = self.bind(bindings).shape
        unresolved = [d for d in bound if isinstance(d, str)]
        if unresolved:
            raise ShapeError(
                f"unbound symbolic dims {unresolved} in {render_shape(bound)}")
        return tuple(int(d) for d in bound)

    def __str__(self) -> str:
        note = f", <= {self.max_value}" if self.max_value is not None else ""
        return f"{self.dtype}{render_shape(self.shape)}{note}"
