"""Post-hoc sanitization of the autograd tape.

:func:`sanitize_tape` inspects a recorded loss graph *after* the forward
pass and reports wiring problems that numerics alone hide:

- **dead parameters** — ``requires_grad`` parameters unreachable from the
  loss (a head that was constructed but never wired in trains to noise);
- **untouched ops** — traced tensors whose value was computed but whose
  output never feeds the loss, so they burn flops and receive no
  gradient;
- **dtype promotions** — narrow float arrays silently widened to the
  backend's accumulation dtype (``backend.default_dtype``, float64 on the
  numpy backend) by a mixed-precision operand; this "float64 creep"
  doubles memory traffic;
- **non-finite values** — NaN/Inf already present in the forward values;
- **fan-out risk** — outputs of numerically touchy ops (``exp``, ``log``,
  ``pow``, ``div``) consumed by many downstream nodes, the classic NaN
  amplification pattern.

Use :func:`trace_tape` around the forward pass when untouched-op and
fan-out findings are wanted; dead-parameter / dtype / non-finite checks
need only the loss tensor.  :class:`OpCounter` is the cheap hook the
zero-forward-pass assertion of ``repro check`` relies on.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..nn import Module, Tensor
from ..nn.backend import get_backend
from ..nn.tensor import set_tape_hook
from ..runtime import MetricsRegistry, get_registry

__all__ = [
    "Finding", "TapeReport", "OpCounter", "TapeTracer",
    "trace_tape", "sanitize_tape", "reachable_from",
]

#: Ops whose outputs explode fastest when reused widely downstream.
RISKY_OPS = frozenset({"exp", "log", "pow", "div"})


class OpCounter:
    """Minimal tape hook counting op creations — nothing else.

    ``repro check`` installs one while it instantiates and symbolically
    walks every model × task pair, then asserts ``forward_ops == 0``:
    static validation must never run an actual forward pass.
    """

    def __init__(self) -> None:
        self.forward_ops = 0
        self.backward_ops = 0

    def on_forward(self, op: str, nbytes: int) -> None:
        self.forward_ops += 1

    def on_backward(self, op: str, seconds: float) -> None:
        self.backward_ops += 1


class TapeTracer(OpCounter):
    """Tape hook retaining every tracked tensor created while installed."""

    def __init__(self) -> None:
        super().__init__()
        self.nodes: list[Tensor] = []

    def on_node(self, tensor: Tensor) -> None:
        self.nodes.append(tensor)


@contextmanager
def trace_tape() -> Iterator[TapeTracer]:
    """Record every tracked tensor built inside the block.

    Nests with :func:`repro.runtime.profile`: the previously installed
    hook is restored on exit.
    """
    tracer = TapeTracer()
    previous = set_tape_hook(tracer)
    try:
        yield tracer
    finally:
        set_tape_hook(previous)


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnosis."""

    kind: str          # dead-parameter | untouched-op | dtype-promotion |
                       # non-finite | fanout-risk
    subject: str       # parameter name or op label
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.message}"


@dataclass
class TapeReport:
    """Everything :func:`sanitize_tape` learned about one loss graph."""

    findings: list[Finding] = field(default_factory=list)
    reachable_nodes: int = 0
    traced_nodes: int = 0
    checked_parameters: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        head = (f"tape sanitizer: {self.reachable_nodes} reachable nodes, "
                f"{self.checked_parameters} parameters checked")
        if self.ok:
            return head + " — clean"
        lines = [head] + [f"  {finding}" for finding in self.findings]
        return "\n".join(lines)

    def emit(self, registry: MetricsRegistry | None = None) -> None:
        """Report through the runtime metrics machinery."""
        registry = registry if registry is not None else get_registry()
        registry.counter("sanitize.runs").inc()
        registry.counter("sanitize.findings").inc(len(self.findings))
        for finding in self.findings:
            registry.emit({
                "kind": "sanitize",
                "finding": finding.kind,
                "subject": finding.subject,
                "message": finding.message,
            })


def reachable_from(loss: Tensor) -> dict[int, Tensor]:
    """All tape nodes reachable from ``loss`` by parent edges (incl. loss)."""
    reachable: dict[int, Tensor] = {}
    stack = [loss]
    while stack:
        node = stack.pop()
        if id(node) in reachable:
            continue
        reachable[id(node)] = node
        stack.extend(node._parents)
    return reachable


def _label(tensor: Tensor) -> str:
    return f"{tensor._op}{tensor.shape}"


def sanitize_tape(
    loss: Tensor,
    parameters: Module | Iterable[tuple[str, Tensor]] | None = None,
    traced: Iterable[Tensor] | None = None,
    fanout_threshold: int = 3,
) -> TapeReport:
    """Analyze the graph below ``loss`` and report wiring/dtype problems.

    Parameters
    ----------
    loss:
        The scalar (or any) tensor whose ancestor graph is analyzed.
    parameters:
        What to check for reachability: a :class:`Module` (its
        ``named_parameters()`` are used) or explicit ``(name, tensor)``
        pairs.  Omitted → no dead-parameter findings.
    traced:
        Tensors captured by :func:`trace_tape` around the forward pass.
        Omitted → no untouched-op findings, and fan-out is computed from
        the reachable graph only.
    fanout_threshold:
        Minimum number of consumers before a risky op is flagged.
    """
    report = TapeReport()
    reachable = reachable_from(loss)
    report.reachable_nodes = len(reachable)

    named: list[tuple[str, Tensor]] = []
    if isinstance(parameters, Module):
        named = list(parameters.named_parameters())
    elif parameters is not None:
        named = [(name, tensor) for name, tensor in parameters]
    report.checked_parameters = len(named)
    for name, parameter in named:
        if parameter.requires_grad and id(parameter) not in reachable:
            report.findings.append(Finding(
                "dead-parameter", name,
                f"never reached by the loss; shape {parameter.shape} "
                f"trains to noise"))

    traced_list = list(traced) if traced is not None else []
    report.traced_nodes = len(traced_list)
    for node in traced_list:
        if id(node) not in reachable:
            report.findings.append(Finding(
                "untouched-op", _label(node),
                "computed on the tape but its output never feeds the loss"))

    consumers: dict[int, int] = {}
    population = traced_list if traced_list else list(reachable.values())
    for node in population:
        for parent in node._parents:
            consumers[id(parent)] = consumers.get(id(parent), 0) + 1

    # The creep check is defined against the backend's accumulation
    # dtype, not a hard-coded float64, so it and the compiled executor
    # agree on one source of truth (``backend.default_dtype``).
    wide = np.dtype(get_backend().default_dtype)
    for node in reachable.values():
        data = node.data
        if data.dtype == wide and any(
                p.data.dtype.kind == "f"
                and p.data.dtype.itemsize < wide.itemsize
                for p in node._parents):
            report.findings.append(Finding(
                "dtype-promotion", _label(node),
                f"narrow float operand silently promoted to {wide.name} "
                "(doubles memory traffic)"))
        if data.dtype.kind == "f" and not np.all(np.isfinite(data)):
            report.findings.append(Finding(
                "non-finite", _label(node),
                "forward value already contains NaN/Inf"))
        if (node._op in RISKY_OPS
                and consumers.get(id(node), 0) >= fanout_threshold):
            report.findings.append(Finding(
                "fanout-risk", _label(node),
                f"output of {node._op!r} consumed by "
                f"{consumers[id(node)]} nodes — NaN amplification risk"))
    return report
