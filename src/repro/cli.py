"""Command-line interface: the tutorial's workflow without writing code.

Subcommands mirror the hands-on session's stages:

- ``repro corpus``     generate a synthetic table corpus to CSV files;
- ``repro encode``     encode a CSV table and summarize the result (§3.1);
- ``repro pretrain``   pretrain a model over a corpus and save the bundle
  (§3.3);
- ``repro behavioral`` run the §2.4 behavioral battery on a model;
- ``repro profile``    run the Fig. 1 pipeline under the tape profiler and
  print the per-op cost table;
- ``repro predict``    answer a JSONL file of requests through the
  batched/cached inference engine (``repro.serve``);
- ``repro serve``      the same engine behind a local HTTP loop, optionally
  replicated (``--replicas``) with admission control and deadlines;
  ``--sanitize-threads`` wraps every lock in the runtime lock sanitizer;
- ``repro check``      statically validate model × task × serializer
  wiring with symbolic shapes — zero forward passes (``repro.analysis``);
  ``--concurrency`` runs the static race / lock-order analysis instead;
- ``repro lint``       run the repo's AST lint rules over source trees
  (including the whole-tree concurrency rules REPRO008/REPRO009).

Every command is pure-stdout and deterministic given ``--seed``.
``encode``, ``pretrain``, ``profile``, ``predict`` and ``serve`` all
accept ``--metrics-out PATH`` (one shared parent parser) to capture
telemetry as a JSONL artifact (see ``repro.runtime``).  ``repro pretrain`` is
fault-tolerant: ``--checkpoint-dir``/``--checkpoint-every`` write periodic
full-state snapshots and ``--resume PATH`` continues an interrupted run
bit-identically.  ``--workers N`` shards each step across N forked worker
processes through :mod:`repro.parallel`; the deterministic fixed-order
all-reduce keeps checkpoints byte-identical to ``--workers 1`` (add
``--fixed-clock`` to pin the wall-time fields too).  Operator errors
(missing paths, corrupt bundles or checkpoints) exit with code 2 and a
one-line message.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neural table representations: models and practice.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every telemetry-capable subcommand so the flag reads the
    # same everywhere.
    metrics_parent = argparse.ArgumentParser(add_help=False)
    metrics_parent.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write telemetry events to this JSONL file")

    corpus = sub.add_parser("corpus", help="generate a synthetic table corpus")
    corpus.add_argument("--kind", choices=("wiki", "git", "infobox"),
                        default="wiki")
    corpus.add_argument("--size", type=int, default=20)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--shard-tables", type=int, default=64,
                        help="tables per deterministically seeded shard")
    corpus.add_argument("--shards", action="store_true",
                        help="dry run: print per-shard fingerprints instead "
                             "of writing tables (debugs determinism drift)")
    corpus.add_argument("--out", default=None,
                        help="output directory (required unless --shards)")

    encode = sub.add_parser("encode", help="encode a CSV table (Fig. 2a)",
                            parents=[metrics_parent])
    encode.add_argument("table", help="path to a CSV file")
    encode.add_argument("--model", default="tapas",
                        help="model name or pretrained bundle directory")
    encode.add_argument("--context", default="", help="context/question text")
    encode.add_argument("--seed", type=int, default=0)
    encode.add_argument("--top-cells", type=int, default=3,
                        help="cells to list by attention attribution")

    pretrain = sub.add_parser("pretrain",
                              help="pretrain over a corpus directory of CSVs",
                              parents=[metrics_parent])
    pretrain.add_argument("corpus", help="directory containing *.csv tables")
    pretrain.add_argument("--model", default="turl")
    pretrain.add_argument("--steps", type=int, default=60)
    pretrain.add_argument("--batch-size", type=int, default=8)
    pretrain.add_argument("--learning-rate", type=float, default=3e-3)
    pretrain.add_argument("--vocab-size", type=int, default=1200)
    pretrain.add_argument("--dim", type=int, default=32)
    pretrain.add_argument("--layers", type=int, default=2)
    pretrain.add_argument("--seed", type=int, default=0)
    pretrain.add_argument("--out", required=True,
                          help="bundle output directory")
    pretrain.add_argument("--checkpoint-dir", default=None,
                          help="write periodic trainer snapshots here")
    pretrain.add_argument("--checkpoint-every", type=int, default=0,
                          help="snapshot cadence in steps (0 disables; "
                               "defaults to 10 when --checkpoint-dir is set)")
    pretrain.add_argument("--keep-checkpoints", type=int, default=3,
                          help="snapshots retained on disk (last K)")
    pretrain.add_argument("--resume", default=None, metavar="PATH",
                          help="checkpoint file or snapshot directory to "
                               "resume from")
    pretrain.add_argument("--sanitize", action="store_true",
                          help="trace one preflight forward and report tape "
                               "findings (dead parameters, float64 creep, "
                               "NaN-prone fan-out) before training")
    pretrain.add_argument("--workers", type=int, default=1,
                          help="data-parallel worker processes; any value "
                               "trains bit-identically to --workers 1")
    pretrain.add_argument("--shard-size", type=int, default=0,
                          help="rows per gradient micro-shard "
                               "(0 = auto: batch split four ways)")
    # Hidden operator/testing knobs for the elastic worker supervisor:
    # --inject-faults stages deterministic worker failures
    # (KIND@STEP:WORKER[:SECONDS], comma-separated; kinds die/hang/delay)
    # and --step-deadline bounds how long the supervisor waits for one
    # dispatched wave before reaping the worker.
    pretrain.add_argument("--inject-faults", default=None, metavar="PLAN",
                          help=argparse.SUPPRESS)
    pretrain.add_argument("--step-deadline", type=float, default=None,
                          metavar="SECONDS", help=argparse.SUPPRESS)
    pretrain.add_argument("--fixed-clock", action="store_true",
                          help="use a deterministic step clock so wall-time "
                               "fields (and checkpoint bytes) are "
                               "reproducible across runs and machines")
    pretrain.add_argument("--compile", action="store_true",
                          help="record each step signature once and replay "
                               "it through the compiled tape executor; "
                               "bit-identical to the default serial path "
                               "(incompatible with --workers > 1)")
    pretrain.add_argument("--stream", action="store_true",
                          help="treat CORPUS as a generator kind (wiki, git, "
                               "infobox) and stream deterministically seeded "
                               "shards on demand instead of loading a "
                               "directory of CSVs")
    pretrain.add_argument("--corpus-size", type=int, default=256,
                          help="tables in the streamed corpus "
                               "(0 = infinite; only with --stream)")
    pretrain.add_argument("--corpus-seed", type=int, default=None,
                          help="stream corpus seed (defaults to --seed)")
    pretrain.add_argument("--shard-tables", type=int, default=64,
                          help="tables per streamed shard (with --stream)")
    pretrain.add_argument("--stream-window", type=int, default=8,
                          help="max generated shards resident in memory; "
                               "pure cache — never changes training bytes")
    pretrain.add_argument("--materialize", action="store_true",
                          help="load the whole stream into memory before "
                               "training (differential debugging; "
                               "byte-identical to the streamed run)")

    prof = sub.add_parser(
        "profile",
        help="run the Fig. 1 pipeline under the autograd-tape profiler",
        parents=[metrics_parent])
    prof.add_argument("corpus", help="directory containing *.csv tables")
    prof.add_argument("--model", default="bert")
    prof.add_argument("--steps", type=int, default=10,
                      help="pretraining steps")
    prof.add_argument("--epochs", type=int, default=1,
                      help="fine-tuning epochs")
    prof.add_argument("--vocab-size", type=int, default=1200)
    prof.add_argument("--dim", type=int, default=32)
    prof.add_argument("--layers", type=int, default=2)
    prof.add_argument("--seed", type=int, default=0)

    behavioral = sub.add_parser(
        "behavioral", help="run the §2.4 behavioral battery on a model")
    behavioral.add_argument("corpus", help="directory containing *.csv tables")
    behavioral.add_argument("--model", default="tapas",
                            help="model name or pretrained bundle directory")
    behavioral.add_argument("--seed", type=int, default=0)

    predict = sub.add_parser(
        "predict",
        help="answer a JSONL request file through the inference engine",
        parents=[metrics_parent])
    predict.add_argument("requests", help="JSONL file; each line is "
                         '{"task": ..., <task inputs>}')
    predict.add_argument("corpus", help="directory containing *.csv tables "
                         "(seeds vocabularies and the retrieval corpus)")
    predict.add_argument("--model", default="tapas",
                         help="model name or pretrained bundle directory")
    predict.add_argument("--out", default=None, metavar="PATH",
                         help="write responses to this JSONL file "
                              "(default: stdout)")
    predict.add_argument("--max-batch", type=int, default=8)
    predict.add_argument("--max-wait", type=float, default=0.02,
                         help="micro-batch deadline in seconds")
    predict.add_argument("--cache-entries", type=int, default=128)
    predict.add_argument("--compile", action="store_true",
                         help="serve through compiled tape-replay encoders "
                              "(bit-identical outputs)")
    predict.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="serve the inference engine over local HTTP",
        parents=[metrics_parent])
    serve.add_argument("corpus", help="directory containing *.csv tables "
                       "(seeds vocabularies and the retrieval corpus)")
    serve.add_argument("--model", default="tapas",
                       help="model name or pretrained bundle directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--max-wait", type=float, default=0.02,
                       help="micro-batch deadline in seconds")
    serve.add_argument("--cache-entries", type=int, default=128)
    serve.add_argument("--max-requests", type=int, default=None,
                       help="exit after this many HTTP requests "
                            "(default: run forever)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="forked model replicas behind the front-end "
                            "(0 = serve in-process)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission queue bound; overflow is shed with "
                            "a retryable 503")
    serve.add_argument("--deadline-ms", type=float, default=0.0,
                       help="per-request deadline in milliseconds "
                            "(0 = no deadline)")
    serve.add_argument("--verbose", action="store_true",
                       help="emit HTTP request lines through the runtime "
                            "event stream (visible via --metrics-out)")
    serve.add_argument("--compile", action="store_true",
                       help="serve through compiled tape-replay encoders "
                            "(bit-identical outputs)")
    serve.add_argument("--sanitize-threads", action="store_true",
                       help="wrap every lock the serving stack creates in "
                            "the runtime lock sanitizer; report lock-order "
                            "inversions and long holds at shutdown and "
                            "exit 1 on violations")
    serve.add_argument("--seed", type=int, default=0)

    check = sub.add_parser(
        "check",
        help="statically validate model x task wiring (no forward passes)")
    check.add_argument("--model", default=None,
                       help="model family to check (default: every family)")
    check.add_argument("--task", default=None,
                       help="task head to check (default: every task)")
    check.add_argument("--all", action="store_true",
                       help="check every model x task pair explicitly")
    check.add_argument("--serializer", default="row_major",
                       help="serialization strategy to validate against")
    check.add_argument("--numeric", action="store_true",
                       help="also finite-difference check one sampled "
                            "layer per model (runs real forwards)")
    check.add_argument("--concurrency", action="store_true",
                       help="run the static race / lock-order analysis "
                            "(REPRO008/REPRO009) over the installed "
                            "repro package and print the guard map")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--verbose", action="store_true",
                       help="print the full stage trace for passing pairs")

    lint = sub.add_parser("lint", help="run the repo AST lint rules")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule ids to enable "
                           "(default: all)")

    return parser


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _fail(message: str) -> "NoReturn":  # noqa: F821 — quoted to stay lazy
    """One-line operator error: print to stderr and exit with code 2."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _load_corpus_dir(directory: str) -> list:
    from .tables import load_table

    root = Path(directory)
    if not root.is_dir():
        _fail(f"corpus directory not found: {directory}")
    paths = sorted(root.glob("*.csv"))
    if not paths:
        _fail(f"no *.csv files found in {directory}")
    return [load_table(path) for path in paths]


def _resolve_model(spec: str, tables: list, seed: int):
    """A model name builds a fresh model; a directory loads a bundle."""
    from .core import build_tokenizer_for_tables, create_model, load_pretrained
    from .models import MODEL_CLASSES
    from .nn import CheckpointError

    if Path(spec).is_dir():
        try:
            return load_pretrained(spec)
        except (CheckpointError, ValueError) as error:
            _fail(f"cannot load bundle {spec}: {error}")
    if spec not in MODEL_CLASSES:
        _fail(f"unknown model {spec!r}; choose one of {sorted(MODEL_CLASSES)} "
              "or pass a bundle directory")
    tokenizer = build_tokenizer_for_tables(tables)
    return create_model(spec, tokenizer, seed=seed)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import open_stream, shard_fingerprint
    from .tables import save_table

    if args.size < 1:
        _fail("--size must be at least 1")
    if args.shard_tables < 1:
        _fail("--shard-tables must be at least 1")
    stream = open_stream(args.kind, size=args.size, seed=args.seed,
                         shard_tables=args.shard_tables)

    if args.shards:
        # Dry run: the per-shard fingerprints are a stable signature of
        # the generator output, so two builds (or two machines) can be
        # diffed for determinism drift without writing a byte to disk.
        print(f"kind={args.kind} seed={args.seed} size={args.size} "
              f"shard_tables={args.shard_tables} "
              f"shards={stream.num_shards} "
              f"stream_fingerprint={stream.fingerprint()}")
        for index, shard in enumerate(stream):
            print(f"shard {index:4d}: tables={len(shard)} "
                  f"fingerprint={shard_fingerprint(shard)}")
        return 0

    if args.out is None:
        _fail("--out is required unless --shards is given")
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    manifest = []
    for table in stream.iter_tables():  # one shard resident at a time
        path = save_table(table, out / f"{table.table_id}.csv")
        manifest.append({
            "table_id": table.table_id,
            "file": path.name,
            "rows": table.num_rows,
            "columns": table.num_columns,
            "title": table.context.title,
        })
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2))
    print(f"wrote {len(manifest)} {args.kind} tables to {out}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from .tables import load_table
    from .viz import attention_attribution

    if not Path(args.table).is_file():
        _fail(f"table file not found: {args.table}")
    table = load_table(args.table, title=args.context)
    model = _resolve_model(args.model, [table], args.seed)
    with _metrics_scope(args.metrics_out):
        encoding = model.encode(table, context=args.context or None)
        attribution = attention_attribution(model, table,
                                            context=args.context or None)

    print(f"table: {table}")
    print(f"model: {model.model_name} ({model.num_parameters()} parameters)")
    print(f"serialized tokens: {len(encoding)}")
    print(f"table embedding: dim={encoding.dim} "
          f"norm={float(np.linalg.norm(encoding.table_embedding)):.3f}")
    print(f"cell embeddings: {len(encoding.cell_embeddings)}; "
          f"column embeddings: {len(encoding.column_embeddings)}")
    print(f"\ntop-{args.top_cells} cells by [CLS] attention:")
    for (row, column), score in attribution.top_cells(args.top_cells):
        value = table.cell(row, column).text()
        print(f"  ({row}, {column}) {value!r}: {score:.4f}")
    return 0


def _metrics_scope(path: str | None):
    """Attach a JSONL sink to the global registry while the block runs.

    The artifact exists afterwards even when the command emitted no
    events, so callers can always point tooling at the path.
    """
    from contextlib import contextmanager, nullcontext

    if path is None:
        return nullcontext()
    from .runtime import JsonlSink, get_registry

    @contextmanager
    def scope():
        sink = JsonlSink(path)
        with get_registry().sink_attached(sink):
            yield sink
        if sink.events_written == 0:
            Path(path).touch()

    return scope()


def _build_cli_config(tokenizer, dim: int, layers: int,
                      num_entities: int = 8):
    from .models import EncoderConfig

    # CSV corpora carry no entity annotations, so the default gives TURL
    # a small slack entity vocabulary; MER simply finds no targets and
    # MLM drives training.  Streamed corpora keep their knowledge-base
    # annotations and size the vocabulary to match.
    return EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=dim, num_heads=4,
        num_layers=layers, hidden_dim=dim * 2, max_position=192,
        num_entities=max(1, num_entities),
    )


def _cmd_pretrain(args: argparse.Namespace) -> int:
    import time

    from .core import build_tokenizer_for_tables, create_model, save_pretrained
    from .parallel import FixedClock, ParallelConfig, parse_fault_plan
    from .pretrain import Pretrainer, PretrainConfig

    if args.stream:
        from .corpus import STREAM_KINDS, open_stream

        if args.corpus not in STREAM_KINDS:
            _fail(f"--stream interprets CORPUS as a generator kind; choose "
                  f"one of {', '.join(STREAM_KINDS)}, got {args.corpus!r}")
        if args.corpus_size < 0:
            _fail("--corpus-size must be non-negative (0 = infinite)")
        if args.shard_tables < 1:
            _fail("--shard-tables must be at least 1")
        if args.stream_window < 1:
            _fail("--stream-window must be at least 1")
        corpus_seed = (args.seed if args.corpus_seed is None
                       else args.corpus_seed)
        stream = open_stream(args.corpus, size=args.corpus_size or None,
                             seed=corpus_seed,
                             shard_tables=args.shard_tables)
        # The tokenizer sees the same bounded prefix however the corpus
        # is consumed, keeping streamed and materialized checkpoints
        # byte-identical.
        vocab_tables = stream.head_tables(256)
        if args.materialize:
            if stream.is_infinite:
                _fail("--materialize cannot load an infinite stream "
                      "(--corpus-size 0) into memory")
            corpus = stream.materialize()
        else:
            corpus = stream
        size_label = ("unbounded" if stream.is_infinite
                      else f"{stream.size} tables")
        corpus_label = f"a streamed {args.corpus} corpus ({size_label})"
    else:
        if args.materialize:
            _fail("--materialize only applies to --stream runs")
        corpus = vocab_tables = _load_corpus_dir(args.corpus)
        corpus_label = f"{len(corpus)} tables"
    tokenizer = build_tokenizer_for_tables(vocab_tables,
                                           vocab_size=args.vocab_size)
    kb = getattr(stream, "kb", None) if args.stream else None
    config = _build_cli_config(
        tokenizer, args.dim, args.layers,
        num_entities=kb.num_entities if kb is not None else 8)
    model = create_model(args.model, tokenizer, config=config, seed=args.seed)
    checkpoint_every = args.checkpoint_every
    if args.checkpoint_dir and not checkpoint_every:
        checkpoint_every = 10
    if args.compile and args.workers != 1:
        _fail("--compile trains the fused single-process step and is "
              "incompatible with --workers > 1")
    if args.inject_faults and args.compile:
        _fail("--inject-faults stages failures in worker processes and "
              "needs --workers > 1, not --compile")
    try:
        # Without --compile the CLI always trains through the
        # data-parallel engine so the checkpoint bytes of `--workers 1`
        # and `--workers N` match; the numeric signature stored in
        # checkpoints only records the shard decomposition, never the
        # worker count.  --compile replays the fused serial step instead
        # (bit-identical to the serial eager path).
        faults = (parse_fault_plan(args.inject_faults)
                  if args.inject_faults else None)
        supervisor = {}
        if args.step_deadline is not None:
            supervisor["step_deadline"] = args.step_deadline
        parallel = (None if args.compile else
                    ParallelConfig(workers=args.workers,
                                   shard_size=args.shard_size,
                                   faults=faults, **supervisor))
        pretrain_config = PretrainConfig(
            steps=args.steps, batch_size=args.batch_size,
            learning_rate=args.learning_rate, seed=args.seed,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=args.keep_checkpoints,
            parallel=parallel, compile=args.compile,
            stream_window=args.stream_window)
    except ValueError as error:
        _fail(str(error))
    clock = FixedClock() if args.fixed_clock else time.perf_counter
    trainer = Pretrainer(model, pretrain_config, clock=clock)
    if args.resume is not None:
        if not Path(args.resume).exists():
            _fail(f"checkpoint path not found: {args.resume}")
        restored = trainer.resume(args.resume)
        print(f"resumed from {args.resume} at step {restored}")
    with _metrics_scope(args.metrics_out):
        if args.sanitize:
            print(trainer.sanitize_check(corpus).render())
        if len(trainer.history) < args.steps:
            history = trainer.train(corpus,
                                    checkpoint_dir=args.checkpoint_dir)
        else:
            history = trainer.history
            print("checkpoint already covers the requested steps; "
                  "nothing to train")
    print(f"pretrained {args.model} for {args.steps} steps over "
          f"{corpus_label}")
    print(f"loss: {history[0].loss:.3f} -> {history[-1].loss:.3f}")
    tokens_per_second = [r.tokens_per_second for r in history
                         if r.tokens_per_second > 0]
    if tokens_per_second:
        print(f"throughput: {np.mean(tokens_per_second):.0f} tokens/s")
    bundle = save_pretrained(model, args.out)
    print(f"bundle saved to {bundle}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core import build_tokenizer_for_tables, run_imputation_pipeline
    from .pretrain import PretrainConfig
    from .runtime import profile
    from .tasks import FinetuneConfig

    tables = _load_corpus_dir(args.corpus)
    if len(tables) < 10:
        raise SystemExit("profile needs a corpus of at least 10 tables")
    tokenizer = build_tokenizer_for_tables(tables, vocab_size=args.vocab_size)
    config = _build_cli_config(tokenizer, args.dim, args.layers)
    with _metrics_scope(args.metrics_out):
        with profile() as prof:
            result = run_imputation_pipeline(
                tables, model_name=args.model, pretrained=args.steps > 0,
                tokenizer=tokenizer, config=config,
                pretrain_config=PretrainConfig(steps=max(args.steps, 1),
                                               seed=args.seed),
                finetune_config=FinetuneConfig(epochs=args.epochs,
                                               seed=args.seed),
                seed=args.seed)
    print(result.summary())
    print()
    print(prof.table())
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_behavioral(args: argparse.Namespace) -> int:
    from .eval import run_suite

    tables = _load_corpus_dir(args.corpus)
    model = _resolve_model(args.model, tables, args.seed)
    report = run_suite(model, tables, seed=args.seed)
    print(report.render())
    failed = [r for r in report.by_kind("MFT") if r.pass_rate < 1.0]
    return 1 if failed else 0


def _build_engine(args: argparse.Namespace):
    """Shared predict/serve bootstrap: corpus → predictors → engine."""
    from .serve import InferenceEngine, RequestError, ServeConfig, build_predictor
    from .serve.requests import SERVED_TASKS

    tables = _load_corpus_dir(args.corpus)
    model = _resolve_model(args.model, tables, args.seed)
    rng = np.random.default_rng(args.seed)
    try:
        config = ServeConfig(max_batch=args.max_batch,
                             max_wait_seconds=args.max_wait,
                             cache_entries=args.cache_entries,
                             compile=getattr(args, "compile", False))
        predictors = {task: build_predictor(task, model, tables, rng)
                      for task in SERVED_TASKS}
    except (RequestError, ValueError) as error:
        _fail(str(error))
    return InferenceEngine(predictors, config)


def _cmd_predict(args: argparse.Namespace) -> int:
    from .serve import RequestError, build_example

    path = Path(args.requests)
    if not path.is_file():
        _fail(f"request file not found: {args.requests}")
    engine = _build_engine(args)
    submissions = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            task = payload.get("task")
            if not isinstance(task, str):
                raise RequestError("missing required field 'task'")
            submissions.append((task, build_example(task, payload)))
        except (json.JSONDecodeError, RequestError) as error:
            _fail(f"{args.requests}:{number}: {error}")
    if not submissions:
        _fail(f"no requests found in {args.requests}")
    with _metrics_scope(args.metrics_out):
        responses = engine.process(submissions)
    lines = [json.dumps(r.to_dict()) for r in responses]
    if args.out:
        Path(args.out).write_text("\n".join(lines) + "\n")
        print(f"answered {len(responses)} requests -> {args.out}")
    else:
        for line in lines:
            print(line)
    print(f"cache: {engine.cache.hits} hits / {engine.cache.misses} misses",
          file=sys.stderr)
    return 0


class _EventEchoSink:
    """Stream serving events to stderr as they happen (`serve --verbose`).

    Unlike the table sinks this never buffers: an access-log line that
    only appears at shutdown is useless for watching a live server.
    """

    KINDS = frozenset({"http", "frontend", "concurrency"})

    def emit(self, event: dict) -> None:
        kind = event.get("kind")
        if kind not in self.KINDS:
            return
        detail = " ".join(f"{k}={v}" for k, v in event.items() if k != "kind")
        print(f"[{kind}] {detail}", file=sys.stderr, flush=True)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .parallel import WorkerError
    from .runtime import get_registry
    from .serve import ServerConfig, run_server

    sanitizer = None
    if args.sanitize_threads:
        from .analysis import LockSanitizer

        # Installed before the engine exists so every lock the serving
        # stack creates (cache, front-end, queue, registry sinks) is
        # wrapped from birth.
        sanitizer = LockSanitizer()
        sanitizer.install()
    engine = _build_engine(args)
    try:
        config = ServerConfig(host=args.host, port=args.port,
                              replicas=args.replicas, max_queue=args.max_queue,
                              deadline_ms=args.deadline_ms,
                              max_batch=args.max_batch, verbose=args.verbose,
                              max_requests=args.max_requests)
    except ValueError as error:
        _fail(str(error))
    fleet = (f"{args.replicas} replicas" if args.replicas
             else "in-process engine")
    print(f"serving {sorted(engine.predictors)} on "
          f"http://{args.host}:{args.port} (POST /v1/predict, {fleet})")
    echo = (get_registry().sink_attached(_EventEchoSink())
            if args.verbose else nullcontext())
    with _metrics_scope(args.metrics_out), echo:
        try:
            run_server(engine, config)
        except KeyboardInterrupt:
            pass
        except WorkerError as error:
            _fail(str(error))
        finally:
            if sanitizer is not None:
                sanitizer.uninstall()
                print(sanitizer.render_report(), file=sys.stderr)
    if sanitizer is not None and sanitizer.violations:
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import OpCounter, check_all, numeric_spot_check
    from .models import MODEL_CLASSES
    from .nn.tensor import set_tape_hook
    from .serialize import SERIALIZERS

    if args.concurrency:
        from .analysis import analyze_files

        package_root = Path(__file__).parent
        report = analyze_files([package_root])
        print(report.render())
        return 1 if report.findings else 0

    if args.model is not None and args.model not in MODEL_CLASSES:
        _fail(f"unknown model {args.model!r}; "
              f"choose one of {sorted(MODEL_CLASSES)}")
    if args.serializer not in SERIALIZERS:
        _fail(f"unknown serializer {args.serializer!r}; "
              f"choose one of {sorted(SERIALIZERS)}")
    models = [args.model] if args.model is not None else None
    tasks = [args.task] if args.task is not None else None

    # The counter proves the validation is static: constructors create
    # only leaf parameters, so any recorded op means a forward ran.
    counter = OpCounter()
    previous = set_tape_hook(counter)
    try:
        try:
            results = check_all(models, tasks,
                                serializer_name=args.serializer,
                                seed=args.seed)
        except KeyError as error:
            _fail(str(error.args[0]))
    finally:
        set_tape_hook(previous)

    for result in results:
        print(result.render(verbose=args.verbose))
    failures = [r for r in results if not r.ok]
    print(f"\nchecked {len(results)} pair(s): "
          f"{len(results) - len(failures)} ok, {len(failures)} failed "
          f"({counter.forward_ops} forward ops recorded)")
    if counter.forward_ops:
        _fail("static check unexpectedly executed forward ops — "
              "checker bug, treat results as unsound")
    if args.numeric:
        from .analysis.checker import build_check_fixture
        from .core import create_model

        _, tokenizer, config = build_check_fixture()
        for name in (models if models is not None else sorted(MODEL_CLASSES)):
            model = create_model(name, tokenizer, config=config,
                                 seed=args.seed)
            try:
                info = numeric_spot_check(model, seed=args.seed)
            except AssertionError as error:
                print(f"numeric FAIL {name}: {error}")
                return 1
            print(f"numeric ok   {name}: gradient of {info['layer']} "
                  "matches finite differences")
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import RULES, run_lint

    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",")
                  if rule.strip()]
        unknown = [rule for rule in select if rule not in RULES]
        if unknown:
            _fail(f"unknown rule(s) {unknown}; have {sorted(RULES)}")
    for path in args.paths:
        if not Path(path).exists():
            _fail(f"lint path not found: {path}")
    try:
        findings = run_lint(args.paths, select=select)
    except SyntaxError as error:
        _fail(f"cannot parse {error.filename}:{error.lineno}: {error.msg}")
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} finding(s)")
        return 1
    print(f"clean: {', '.join(args.paths)}")
    return 0


_COMMANDS = {
    "corpus": _cmd_corpus,
    "encode": _cmd_encode,
    "pretrain": _cmd_pretrain,
    "profile": _cmd_profile,
    "behavioral": _cmd_behavioral,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "check": _cmd_check,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Operator errors — nonexistent corpus/checkpoint/table paths, corrupt
    bundles or checkpoints, diverged runs — exit with code 2 and a
    one-line message instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except SystemExit:
        raise
    except Exception as error:
        from .corpus import EmptyCorpusError
        from .nn import CheckpointError
        from .parallel import WorkerError
        from .runtime import TrainingDivergedError

        if isinstance(error, (CheckpointError, TrainingDivergedError,
                              WorkerError, EmptyCorpusError,
                              FileNotFoundError, NotADirectoryError,
                              IsADirectoryError, PermissionError,
                              json.JSONDecodeError)):
            _fail(str(error))
        raise


if __name__ == "__main__":
    sys.exit(main())
