"""Command-line interface: the tutorial's workflow without writing code.

Subcommands mirror the hands-on session's stages:

- ``repro corpus``     generate a synthetic table corpus to CSV files;
- ``repro encode``     encode a CSV table and summarize the result (§3.1);
- ``repro pretrain``   pretrain a model over a corpus and save the bundle
  (§3.3);
- ``repro behavioral`` run the §2.4 behavioral battery on a model.

Every command is pure-stdout and deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neural table representations: models and practice.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    corpus = sub.add_parser("corpus", help="generate a synthetic table corpus")
    corpus.add_argument("--kind", choices=("wiki", "git"), default="wiki")
    corpus.add_argument("--size", type=int, default=20)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--out", required=True, help="output directory")

    encode = sub.add_parser("encode", help="encode a CSV table (Fig. 2a)")
    encode.add_argument("table", help="path to a CSV file")
    encode.add_argument("--model", default="tapas",
                        help="model name or pretrained bundle directory")
    encode.add_argument("--context", default="", help="context/question text")
    encode.add_argument("--seed", type=int, default=0)
    encode.add_argument("--top-cells", type=int, default=3,
                        help="cells to list by attention attribution")

    pretrain = sub.add_parser("pretrain",
                              help="pretrain over a corpus directory of CSVs")
    pretrain.add_argument("corpus", help="directory containing *.csv tables")
    pretrain.add_argument("--model", default="turl")
    pretrain.add_argument("--steps", type=int, default=60)
    pretrain.add_argument("--batch-size", type=int, default=8)
    pretrain.add_argument("--learning-rate", type=float, default=3e-3)
    pretrain.add_argument("--vocab-size", type=int, default=1200)
    pretrain.add_argument("--dim", type=int, default=32)
    pretrain.add_argument("--layers", type=int, default=2)
    pretrain.add_argument("--seed", type=int, default=0)
    pretrain.add_argument("--out", required=True,
                          help="bundle output directory")

    behavioral = sub.add_parser(
        "behavioral", help="run the §2.4 behavioral battery on a model")
    behavioral.add_argument("corpus", help="directory containing *.csv tables")
    behavioral.add_argument("--model", default="tapas",
                            help="model name or pretrained bundle directory")
    behavioral.add_argument("--seed", type=int, default=0)

    return parser


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _load_corpus_dir(directory: str) -> list:
    from .tables import load_table

    paths = sorted(Path(directory).glob("*.csv"))
    if not paths:
        raise SystemExit(f"no *.csv files found in {directory}")
    return [load_table(path) for path in paths]


def _resolve_model(spec: str, tables: list, seed: int):
    """A model name builds a fresh model; a directory loads a bundle."""
    from .core import build_tokenizer_for_tables, create_model, load_pretrained
    from .models import MODEL_CLASSES

    if Path(spec).is_dir():
        return load_pretrained(spec)
    if spec not in MODEL_CLASSES:
        raise SystemExit(
            f"unknown model {spec!r}; choose one of {sorted(MODEL_CLASSES)} "
            "or pass a bundle directory")
    tokenizer = build_tokenizer_for_tables(tables)
    return create_model(spec, tokenizer, seed=seed)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import KnowledgeBase, generate_git_corpus, generate_wiki_corpus
    from .tables import save_table

    if args.kind == "wiki":
        tables = generate_wiki_corpus(KnowledgeBase(seed=args.seed),
                                      args.size, seed=args.seed)
    else:
        tables = generate_git_corpus(args.size, seed=args.seed)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    manifest = []
    for table in tables:
        path = save_table(table, out / f"{table.table_id}.csv")
        manifest.append({
            "table_id": table.table_id,
            "file": path.name,
            "rows": table.num_rows,
            "columns": table.num_columns,
            "title": table.context.title,
        })
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2))
    print(f"wrote {len(tables)} {args.kind} tables to {out}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from .tables import load_table
    from .viz import attention_attribution

    table = load_table(args.table, title=args.context)
    model = _resolve_model(args.model, [table], args.seed)
    encoding = model.encode(table, context=args.context or None)

    print(f"table: {table}")
    print(f"model: {model.model_name} ({model.num_parameters()} parameters)")
    print(f"serialized tokens: {len(encoding)}")
    print(f"table embedding: dim={encoding.dim} "
          f"norm={float(np.linalg.norm(encoding.table_embedding)):.3f}")
    print(f"cell embeddings: {len(encoding.cell_embeddings)}; "
          f"column embeddings: {len(encoding.column_embeddings)}")

    attribution = attention_attribution(model, table,
                                        context=args.context or None)
    print(f"\ntop-{args.top_cells} cells by [CLS] attention:")
    for (row, column), score in attribution.top_cells(args.top_cells):
        value = table.cell(row, column).text()
        print(f"  ({row}, {column}) {value!r}: {score:.4f}")
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    from .core import build_tokenizer_for_tables, create_model, save_pretrained
    from .models import EncoderConfig
    from .pretrain import Pretrainer, PretrainConfig

    tables = _load_corpus_dir(args.corpus)
    tokenizer = build_tokenizer_for_tables(tables, vocab_size=args.vocab_size)
    # CSV corpora carry no entity annotations, so give TURL a small slack
    # entity vocabulary; MER simply finds no targets and MLM drives training.
    config = EncoderConfig(
        vocab_size=len(tokenizer.vocab), dim=args.dim, num_heads=4,
        num_layers=args.layers, hidden_dim=args.dim * 2, max_position=192,
        num_entities=max(1, 8),
    )
    model = create_model(args.model, tokenizer, config=config, seed=args.seed)
    trainer = Pretrainer(model, PretrainConfig(
        steps=args.steps, batch_size=args.batch_size,
        learning_rate=args.learning_rate, seed=args.seed))
    history = trainer.train(tables)
    print(f"pretrained {args.model} for {args.steps} steps over "
          f"{len(tables)} tables")
    print(f"loss: {history[0].loss:.3f} -> {history[-1].loss:.3f}")
    bundle = save_pretrained(model, args.out)
    print(f"bundle saved to {bundle}")
    return 0


def _cmd_behavioral(args: argparse.Namespace) -> int:
    from .eval import run_suite

    tables = _load_corpus_dir(args.corpus)
    model = _resolve_model(args.model, tables, args.seed)
    report = run_suite(model, tables, seed=args.seed)
    print(report.render())
    failed = [r for r in report.by_kind("MFT") if r.pass_rate < 1.0]
    return 1 if failed else 0


_COMMANDS = {
    "corpus": _cmd_corpus,
    "encode": _cmd_encode,
    "pretrain": _cmd_pretrain,
    "behavioral": _cmd_behavioral,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
