"""High-level API: model registry, pretrained bundles, the Fig. 1 pipeline."""

from .pipeline import PipelineResult, run_imputation_pipeline
from .registry import (
    BUNDLE_FORMAT_VERSION,
    build_tokenizer_for_tables,
    create_model,
    load_pretrained,
    save_pretrained,
    text_corpus_from_tables,
)

__all__ = [
    "create_model", "save_pretrained", "load_pretrained",
    "text_corpus_from_tables", "build_tokenizer_for_tables",
    "BUNDLE_FORMAT_VERSION",
    "PipelineResult", "run_imputation_pipeline",
]
