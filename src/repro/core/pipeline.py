"""The end-to-end framework of Fig. 1: pretrain → fine-tune → evaluate.

:func:`run_imputation_pipeline` is the canonical instantiation (and the E1
benchmark): pretrain a table LM over a corpus with masked-cell objectives,
fine-tune it for data imputation, and report hold-out metrics — optionally
skipping pretraining to quantify its benefit.

Every stage reports step-level telemetry through :mod:`repro.runtime`;
pass ``metrics_out`` to capture the run as a JSONL artifact, or wrap the
call in :func:`repro.runtime.profile` for a per-op cost table.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .registry import build_tokenizer_for_tables, create_model
from ..corpus import build_imputation_dataset, split_tables
from ..models import EncoderConfig
from ..pretrain import Pretrainer, PretrainConfig
from ..runtime import HealthConfig, JsonlSink, TrainRecord, get_registry
from ..tables import Table
from ..tasks import (
    FinetuneConfig,
    ValueImputer,
    build_value_vocabulary_from_tables,
    finetune,
)
from ..text import WordPieceTokenizer

__all__ = ["PipelineResult", "run_imputation_pipeline"]


@dataclass
class PipelineResult:
    """Everything a pipeline run produced.

    Both histories are symmetric ``list[TrainRecord]`` — pretraining and
    fine-tuning report through the same record type.
    """

    model_name: str
    pretrained: bool
    pretrain_history: list[TrainRecord] = field(default_factory=list)
    finetune_history: list[TrainRecord] = field(default_factory=list)
    train_metrics: dict[str, float] = field(default_factory=dict)
    test_metrics: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable result."""
        mode = "pretrained" if self.pretrained else "from-scratch"
        return (f"{self.model_name} ({mode}): "
                f"test accuracy={self.test_metrics.get('accuracy', 0.0):.3f} "
                f"macro-F1={self.test_metrics.get('macro_f1', 0.0):.3f}")

    @property
    def skipped_steps(self) -> int:
        """Steps the numerical-health guard skipped across both loops."""
        return sum(1 for record in
                   self.pretrain_history + self.finetune_history
                   if record.extras.get("skipped"))


def run_imputation_pipeline(
    corpus: list[Table],
    model_name: str = "bert",
    pretrained: bool = True,
    tokenizer: WordPieceTokenizer | None = None,
    config: EncoderConfig | None = None,
    pretrain_config: PretrainConfig | None = None,
    finetune_config: FinetuneConfig | None = None,
    examples_per_table: int = 2,
    seed: int = 0,
    metrics_out: str | Path | None = None,
    health: HealthConfig | None = None,
    **model_kwargs,
) -> PipelineResult:
    """Run the Fig. 1 pipeline for the data-imputation downstream task.

    The corpus is split by table id into train/valid/test; pretraining and
    the imputation value vocabulary only ever see training tables.

    Parameters
    ----------
    metrics_out:
        Optional path; when given, a JSONL sink is attached to the global
        metrics registry for the duration of the run, capturing every
        ``train_step`` event plus a final ``pipeline_run`` summary line.
    health:
        Numerical-health guard settings applied to both training stages
        (``None`` keeps the defaults; explicit ``pretrain_config``
        carries its own guard settings).  Bad steps are skipped and
        reported as ``health`` events; the ``pipeline_run`` summary
        carries the total skipped-step count.
    """
    if len(corpus) < 10:
        raise ValueError("pipeline needs a corpus of at least 10 tables")
    # Independent per-split generators: test-set example sampling must not
    # depend on how many draws the train split consumed.
    train_seq, test_seq = np.random.SeedSequence(seed).spawn(2)
    train_rng = np.random.default_rng(train_seq)
    test_rng = np.random.default_rng(test_seq)

    registry = get_registry()
    sink_scope = (registry.sink_attached(JsonlSink(metrics_out))
                  if metrics_out is not None else nullcontext())
    with sink_scope:
        tokenizer = tokenizer or build_tokenizer_for_tables(corpus)
        model = create_model(model_name, tokenizer, config=config, seed=seed,
                             **model_kwargs)

        train_tables, _, test_tables = split_tables(corpus)
        result = PipelineResult(model_name=model_name, pretrained=pretrained)

        if pretrained:
            if pretrain_config is None:
                pretrain_config = (PretrainConfig(seed=seed, health=health)
                                   if health is not None
                                   else PretrainConfig(seed=seed))
            trainer = Pretrainer(model, pretrain_config)
            with registry.timer("pipeline.pretrain_seconds").time():
                result.pretrain_history = trainer.train(train_tables)

        train_examples = build_imputation_dataset(
            train_tables, train_rng, per_table=examples_per_table)
        test_examples = build_imputation_dataset(
            test_tables, test_rng, per_table=examples_per_table)
        if not train_examples or not test_examples:
            raise ValueError("imputation dataset came out empty; corpus too small")

        vocabulary = build_value_vocabulary_from_tables(train_tables,
                                                        text_only=True)
        imputer = ValueImputer(model, vocabulary, np.random.default_rng(seed))
        with registry.timer("pipeline.finetune_seconds").time():
            result.finetune_history = finetune(
                imputer, train_examples,
                finetune_config or FinetuneConfig(seed=seed),
                health=health)

        with registry.timer("pipeline.evaluate_seconds").time():
            result.train_metrics = imputer.evaluate(train_examples)
            result.test_metrics = imputer.evaluate(test_examples)

        registry.emit({
            "kind": "pipeline_run", "model": model_name,
            "pretrained": pretrained,
            "pretrain_steps": len(result.pretrain_history),
            "finetune_steps": len(result.finetune_history),
            "skipped_steps": result.skipped_steps,
            "test_accuracy": result.test_metrics.get("accuracy", 0.0),
            "test_macro_f1": result.test_metrics.get("macro_f1", 0.0),
        })
    return result
