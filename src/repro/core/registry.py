"""Model registry and pretrained-bundle IO — the Fig. 2a loading API.

``load_pretrained(path)`` mirrors the tutorial's
``transformers.load_pretrained(path/to/model)`` line: a bundle directory
holds the weights, the model/config metadata and the tokenizer, and loading
reconstructs a ready-to-use model.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..models import MODEL_CLASSES, EncoderConfig
from ..nn import (
    CheckpointError,
    InitMetadata,
    Module,
    load_checkpoint,
    save_checkpoint,
)
from ..tables import Table
from ..text import WordPieceTokenizer, train_tokenizer

__all__ = [
    "create_model",
    "save_pretrained",
    "load_pretrained",
    "text_corpus_from_tables",
    "build_tokenizer_for_tables",
    "BUNDLE_FORMAT_VERSION",
]

# Version stamp written into every bundle's config.json.  Bump when the
# bundle layout changes incompatibly; ``load_pretrained`` rejects versions
# it does not understand.  Bundles written before versioning are treated
# as version 1 (same layout).
BUNDLE_FORMAT_VERSION = 1
_SUPPORTED_BUNDLE_VERSIONS = frozenset({1})


def text_corpus_from_tables(tables: list[Table]) -> list[str]:
    """All text a table corpus exposes: contexts, headers, cell values."""
    texts: list[str] = []
    for table in tables:
        texts.append(table.context.text())
        texts.append(" ".join(table.header))
        for _, _, cell in table.iter_cells():
            texts.append(cell.text())
    return texts


# Glyphs and template words the serializers emit; seeded into every trained
# vocabulary so serialized sequences never degrade to [UNK] on structure.
_SERIALIZER_SEED_TEXTS = [
    "| ; - row column one two three four five six seven eight is",
] * 2


def build_tokenizer_for_tables(tables: list[Table], vocab_size: int = 1000,
                               extra_texts: list[str] | None = None
                               ) -> WordPieceTokenizer:
    """Train a WordPiece tokenizer on a table corpus (+optional texts).

    Serializer glyphs (``|``, ``;``, template ordinals) are always included
    so every linearization stays in-vocabulary.
    """
    texts = text_corpus_from_tables(tables) + list(_SERIALIZER_SEED_TEXTS)
    if extra_texts:
        texts.extend(extra_texts)
    return train_tokenizer(texts, vocab_size=vocab_size)


def create_model(name: str, tokenizer: WordPieceTokenizer,
                 config: EncoderConfig | None = None, seed: int = 0,
                 **kwargs) -> Module:
    """Instantiate a model from the zoo by name.

    ``kwargs`` pass through to the model constructor (e.g. TaBERT's
    ``snapshot_rows``) and are recorded for bundle reconstruction.
    """
    if name not in MODEL_CLASSES:
        raise KeyError(f"unknown model {name!r}; have {sorted(MODEL_CLASSES)}")
    if config is None:
        config = EncoderConfig(vocab_size=len(tokenizer.vocab))
    if config.vocab_size != len(tokenizer.vocab):
        raise ValueError(
            f"config.vocab_size={config.vocab_size} does not match the "
            f"tokenizer ({len(tokenizer.vocab)} tokens)")
    rng = np.random.default_rng(seed)
    model = MODEL_CLASSES[name](config, tokenizer, rng, **kwargs)
    model.init_metadata = InitMetadata(seed=seed, kwargs=dict(kwargs))
    return model


def save_pretrained(model: Module, directory: str | Path) -> Path:
    """Write a loadable bundle: weights.npz + config.json + tokenizer.json."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    init = model.init_metadata
    metadata = {
        "format_version": BUNDLE_FORMAT_VERSION,
        "model_name": model.model_name,
        "config": model.config.to_dict(),
        "kwargs": init.kwargs,
        "seed": init.seed,
    }
    save_checkpoint(model, directory / "weights.npz")
    (directory / "config.json").write_text(json.dumps(metadata, indent=2))
    model.tokenizer.save(directory / "tokenizer.json")
    return directory


def load_pretrained(directory: str | Path) -> Module:
    """Reconstruct a model bundle written by :func:`save_pretrained`.

    Corrupt bundles — unparseable or incomplete ``config.json``, a
    truncated ``weights.npz``, a weight set that does not fit the model —
    raise :class:`~repro.nn.CheckpointError` naming the problem instead
    of surfacing raw JSON/zipfile/key errors.
    """
    directory = Path(directory)
    config_path = directory / "config.json"
    if not config_path.is_file():
        raise CheckpointError(
            f"{directory} is not a model bundle (no config.json)")
    try:
        metadata = json.loads(config_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"bundle {directory} has a corrupt config.json: {error}"
        ) from error
    version = metadata.get("format_version", 1)
    if version not in _SUPPORTED_BUNDLE_VERSIONS:
        supported = sorted(_SUPPORTED_BUNDLE_VERSIONS)
        raise ValueError(
            f"bundle {directory} has format_version {version!r}; this build "
            f"supports {supported}. Re-export the bundle with a matching "
            f"version of repro.")
    try:
        tokenizer = WordPieceTokenizer.load(directory / "tokenizer.json")
        config = EncoderConfig.from_dict(metadata["config"])
        model = create_model(metadata["model_name"], tokenizer, config=config,
                             seed=metadata.get("seed", 0),
                             **metadata.get("kwargs", {}))
    except (KeyError, json.JSONDecodeError, FileNotFoundError) as error:
        raise CheckpointError(
            f"bundle {directory} is incomplete or corrupt: {error}"
        ) from error
    load_checkpoint(model, directory / "weights.npz")
    model.eval()
    return model
