"""Corpus substrate: knowledge base, table generators, datasets, splits."""

from .datasets import (
    ColumnTypeExample,
    ImputationExample,
    NLIExample,
    QAExample,
    RetrievalExample,
    Text2SqlExample,
    build_coltype_dataset,
    build_imputation_dataset,
    build_nli_dataset,
    build_qa_dataset,
    build_retrieval_dataset,
    build_text2sql_dataset,
    question_from_query,
)
from .gittables import GitTablesConfig, generate_git_corpus, generate_git_table
from .infobox import generate_infobox, generate_infobox_corpus
from .knowledge import DOMAINS, Entity, KnowledgeBase
from .splits import assign_split, split_tables, stable_hash
from .stream import (
    STREAM_KINDS,
    EmptyCorpusError,
    GitTableStream,
    InfoboxStream,
    MaterializedCorpus,
    ShardWindow,
    StreamingCorpus,
    WikiTableStream,
    as_stream,
    open_stream,
    shard_fingerprint,
    shard_seed,
    table_fingerprint,
)
from .wikitables import WikiTablesConfig, generate_wiki_corpus, generate_wiki_table

__all__ = [
    "Entity", "KnowledgeBase", "DOMAINS",
    "WikiTablesConfig", "generate_wiki_table", "generate_wiki_corpus",
    "GitTablesConfig", "generate_git_table", "generate_git_corpus",
    "generate_infobox", "generate_infobox_corpus",
    "ImputationExample", "build_imputation_dataset",
    "QAExample", "build_qa_dataset", "question_from_query",
    "NLIExample", "build_nli_dataset",
    "RetrievalExample", "build_retrieval_dataset",
    "ColumnTypeExample", "build_coltype_dataset",
    "Text2SqlExample", "build_text2sql_dataset",
    "stable_hash", "assign_split", "split_tables",
    "EmptyCorpusError", "StreamingCorpus", "MaterializedCorpus",
    "WikiTableStream", "GitTableStream", "InfoboxStream",
    "ShardWindow", "shard_seed", "table_fingerprint", "shard_fingerprint",
    "as_stream", "open_stream", "STREAM_KINDS",
]
