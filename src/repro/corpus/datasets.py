"""Downstream-task datasets derived from table corpora.

Each builder turns tables into labelled examples for one of the application
families surveyed in Section 2.1 of the paper:

- data imputation (hands-on 3.4) — blank a cell, predict its value;
- question answering (TAPAS demo) — templated questions with gold answer
  cells derived by the symbolic SQL executor;
- table NLI / fact verification (TabFact-style) — statements entailed or
  refuted by the table;
- table retrieval — (query, positive table) pairs;
- column type prediction (metadata) — column values → semantic label;
- text-to-SQL (WikiSQL-style) — question → query sketch.

Labels are exact by construction: answers come from executing the very
query a question was templated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sql import (
    Aggregate,
    Comparator,
    Condition,
    Denotation,
    SelectQuery,
    execute,
)
from ..tables import Cell, ColumnType, Table, infer_schema

__all__ = [
    "ImputationExample", "build_imputation_dataset",
    "QAExample", "build_qa_dataset", "question_from_query",
    "NLIExample", "build_nli_dataset",
    "RetrievalExample", "build_retrieval_dataset",
    "ColumnTypeExample", "build_coltype_dataset",
    "Text2SqlExample", "build_text2sql_dataset",
]


# ----------------------------------------------------------------------
# Data imputation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImputationExample:
    """A table with one blanked cell and the value that belongs there."""

    table: Table            # cell (row, column) already blanked
    row: int
    column: int
    answer_text: str
    answer_entity_id: int | None = None


def build_imputation_dataset(tables: list[Table], rng: np.random.Generator,
                             per_table: int = 2,
                             text_cells_only: bool = True) -> list[ImputationExample]:
    """Blank ``per_table`` random cells per table.

    ``text_cells_only`` restricts to non-numeric cells, the setting of the
    hands-on exercise (imputing categorical/entity cells); pass False to
    probe the numeric failure mode (E5 does).
    """
    examples: list[ImputationExample] = []
    for table in tables:
        candidates = [
            (r, c) for r, c, cell in table.iter_cells()
            if not cell.is_empty and (not text_cells_only or not cell.is_numeric)
        ]
        if not candidates:
            continue
        count = min(per_table, len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False)
        for index in np.atleast_1d(chosen):
            row, column = candidates[int(index)]
            cell = table.cell(row, column)
            blanked = table.replace_cell(row, column, Cell(None))
            examples.append(ImputationExample(
                table=blanked, row=row, column=column,
                answer_text=cell.text(), answer_entity_id=cell.entity_id,
            ))
    return examples


# ----------------------------------------------------------------------
# Question answering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QAExample:
    """A natural-language question over one table with gold answer cells."""

    table: Table
    question: str
    sql: SelectQuery
    answer_coordinates: tuple[tuple[int, int], ...]
    denotation: tuple = ()


_AGG_PHRASES = {
    Aggregate.COUNT: "how many rows have",
    Aggregate.SUM: "what is the total {col} when",
    Aggregate.AVG: "what is the average {col} when",
    Aggregate.MIN: "what is the lowest {col} when",
    Aggregate.MAX: "what is the highest {col} when",
}

_OP_PHRASES = {
    Comparator.EQ: "is",
    Comparator.NE: "is not",
    Comparator.LT: "is below",
    Comparator.GT: "is above",
    Comparator.LE: "is at most",
    Comparator.GE: "is at least",
}


def _value_text(value: str | float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def question_from_query(query: SelectQuery) -> str:
    """Render a query as the templated question it supervises."""
    conds = " and ".join(
        f"{c.column} {_OP_PHRASES[c.comparator]} {_value_text(c.value)}"
        for c in query.conditions
    )
    if query.aggregate is Aggregate.NONE:
        question = f"what is the {query.select_column}"
        if conds:
            question += f" when {conds}"
    elif query.aggregate is Aggregate.COUNT:
        question = f"how many entries are there"
        if conds:
            question += f" where {conds}"
    else:
        phrase = _AGG_PHRASES[query.aggregate].format(col=query.select_column)
        question = phrase if conds else phrase.replace(" when", "")
        if conds:
            question += f" {conds}"
    return question + "?"


def _answer_coordinates(query: SelectQuery, table: Table) -> tuple[tuple[int, int], ...]:
    """Cells supporting a non-aggregate query's answer."""
    column = table.column_index(query.select_column)
    coords = []
    for r in range(table.num_rows):
        probe = SelectQuery(query.select_column, Aggregate.NONE, query.conditions)
        # A row supports the answer iff it satisfies all conditions and
        # its select cell is non-empty.
        row_table = table.subtable(row_indices=[r])
        if execute(probe, row_table):
            coords.append((r, column))
    return tuple(coords)


def build_qa_dataset(tables: list[Table], rng: np.random.Generator,
                     per_table: int = 2) -> list[QAExample]:
    """Generate cell-selection QA examples (Aggregate.NONE, EQ conditions).

    The cell-selection setting is what TAPAS's weak supervision targets;
    restricting to equality predicates keeps answers attributable to
    explicit cells.
    """
    examples: list[QAExample] = []
    for table in tables:
        schema = infer_schema(table)
        text_columns = [c for c, t in enumerate(schema)
                        if t in (ColumnType.TEXT, ColumnType.DATE, ColumnType.BOOLEAN)
                        and table.header[c].strip()]
        if not text_columns:
            continue
        made = 0
        attempts = 0
        while made < per_table and attempts < per_table * 10:
            attempts += 1
            cond_col = text_columns[int(rng.integers(len(text_columns)))]
            rows_with_values = [r for r in range(table.num_rows)
                                if not table.cell(r, cond_col).is_empty]
            if not rows_with_values:
                continue
            anchor_row = rows_with_values[int(rng.integers(len(rows_with_values)))]
            select_col = int(rng.integers(table.num_columns))
            if select_col == cond_col or not table.header[select_col].strip():
                continue
            condition = Condition(table.header[cond_col], Comparator.EQ,
                                  table.cell(anchor_row, cond_col).text())
            query = SelectQuery(table.header[select_col], Aggregate.NONE, (condition,))
            denotation = execute(query, table)
            coords = _answer_coordinates(query, table)
            if not coords:
                continue
            examples.append(QAExample(
                table=table,
                question=question_from_query(query),
                sql=query,
                answer_coordinates=coords,
                denotation=tuple(denotation),
            ))
            made += 1
    return examples


# ----------------------------------------------------------------------
# Table NLI / fact verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NLIExample:
    """A statement about a table with an entail(1)/refute(0) label."""

    table: Table
    statement: str
    label: int


def build_nli_dataset(tables: list[Table], rng: np.random.Generator,
                      per_table: int = 2) -> list[NLIExample]:
    """TabFact-style statements: true facts and value-swapped corruptions."""
    examples: list[NLIExample] = []
    for table in tables:
        usable_cols = [c for c in range(table.num_columns) if table.header[c].strip()]
        if len(usable_cols) < 2 or table.num_rows < 2:
            continue
        for _ in range(per_table):
            subj_col, attr_col = rng.choice(usable_cols, size=2, replace=False)
            row = int(rng.integers(table.num_rows))
            subject = table.cell(row, int(subj_col))
            value = table.cell(row, int(attr_col))
            if subject.is_empty or value.is_empty:
                continue
            statement = (f"the {table.header[int(attr_col)]} of "
                         f"{subject.text()} is {value.text()}")
            examples.append(NLIExample(table, statement, 1))

            # Corrupt with a different value from the same column.
            alternatives = [table.cell(r, int(attr_col)) for r in range(table.num_rows)
                            if r != row and not table.cell(r, int(attr_col)).is_empty
                            and table.cell(r, int(attr_col)).text() != value.text()]
            if alternatives:
                wrong = alternatives[int(rng.integers(len(alternatives)))]
                corrupted = (f"the {table.header[int(attr_col)]} of "
                             f"{subject.text()} is {wrong.text()}")
                examples.append(NLIExample(table, corrupted, 0))
    return examples


# ----------------------------------------------------------------------
# Table retrieval
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetrievalExample:
    """A keyword query whose relevant table is ``positive_table_id``."""

    query: str
    positive_table_id: str


def build_retrieval_dataset(tables: list[Table], rng: np.random.Generator,
                            per_table: int = 1) -> list[RetrievalExample]:
    """Queries combining a table's context with one of its cell values."""
    examples: list[RetrievalExample] = []
    for table in tables:
        non_empty = [cell for _, _, cell in table.iter_cells()
                     if not cell.is_empty and not cell.is_numeric]
        for _ in range(per_table):
            parts = [table.context.title] if table.context.title else []
            if non_empty:
                parts.append(non_empty[int(rng.integers(len(non_empty)))].text())
            if not parts:
                parts = [" ".join(h for h in table.header if h)]
            query = " ".join(p for p in parts if p).strip()
            if query:
                examples.append(RetrievalExample(query, table.table_id))
    return examples


# ----------------------------------------------------------------------
# Column type prediction (table metadata)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnTypeExample:
    """A column's values (header hidden) and its semantic label."""

    table: Table       # header of `column` blanked so the label cannot leak
    column: int
    label: str


def build_coltype_dataset(tables: list[Table]) -> list[ColumnTypeExample]:
    """One example per named column; the label is the original header."""
    examples: list[ColumnTypeExample] = []
    for table in tables:
        for column in range(table.num_columns):
            label = table.header[column].strip().lower()
            if not label:
                continue
            hidden_header = list(table.header)
            hidden_header[column] = ""
            hidden = Table(hidden_header, table.rows, context=table.context,
                           table_id=table.table_id)
            examples.append(ColumnTypeExample(hidden, column, label))
    return examples


# ----------------------------------------------------------------------
# Text-to-SQL (semantic parsing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Text2SqlExample:
    """A question paired with the gold query sketch that answers it."""

    table: Table
    question: str
    sql: SelectQuery
    denotation: Denotation = field(default_factory=list)


def build_text2sql_dataset(tables: list[Table], rng: np.random.Generator,
                           per_table: int = 2) -> list[Text2SqlExample]:
    """WikiSQL-style supervision: templated question + gold SelectQuery.

    Queries follow the sketch ``SELECT [agg](col) WHERE col = value`` with
    zero or one condition, matching the WikiSQL grammar subset the sketch
    parser in :mod:`repro.tasks.text2sql` predicts.
    """
    examples: list[Text2SqlExample] = []
    aggregates = (Aggregate.NONE, Aggregate.COUNT, Aggregate.MIN, Aggregate.MAX)
    for table in tables:
        schema = infer_schema(table)
        named = [c for c in range(table.num_columns) if table.header[c].strip()]
        if not named:
            continue
        made, attempts = 0, 0
        while made < per_table and attempts < per_table * 10:
            attempts += 1
            select_col = named[int(rng.integers(len(named)))]
            if schema[select_col] is ColumnType.NUMBER:
                aggregate = aggregates[int(rng.integers(len(aggregates)))]
            else:
                aggregate = (Aggregate.NONE, Aggregate.COUNT)[int(rng.integers(2))]
            conditions: tuple[Condition, ...] = ()
            if rng.random() < 0.7:
                cond_col = named[int(rng.integers(len(named)))]
                rows = [r for r in range(table.num_rows)
                        if not table.cell(r, cond_col).is_empty]
                if rows:
                    row = rows[int(rng.integers(len(rows)))]
                    conditions = (Condition(table.header[cond_col], Comparator.EQ,
                                            table.cell(row, cond_col).text()),)
            query = SelectQuery(table.header[select_col], aggregate, conditions)
            denotation = execute(query, table)
            if not denotation:
                continue
            examples.append(Text2SqlExample(
                table=table, question=question_from_query(query),
                sql=query, denotation=denotation,
            ))
            made += 1
    return examples
