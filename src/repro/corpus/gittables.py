"""GitTables-style corpus generator: heterogeneous CSV tables.

Hands-on exercise 3.4 contrasts entity-focused Wikipedia tables with raw
CSV tables "as in GitTables": numeric-heavy, abbreviated or missing headers,
null cells.  These are exactly the failure axes the paper's fine-tuning
analysis zooms in on (numeric tables, tables without descriptive headers),
so the generator produces them with controllable probabilities.
"""

from __future__ import annotations

import numpy as np

from ..tables import Cell, Table, TableContext

__all__ = ["GitTablesConfig", "generate_git_table", "generate_git_corpus"]


# Column blueprints: (full header, abbreviated header, sampler kind, pool).
_BLUEPRINTS: dict[str, list[tuple[str, str, str, tuple]]] = {
    "hr": [
        ("age", "age", "int", (18, 70)),
        ("workclass", "wc", "cat", ("private", "state-gov", "self-emp", "federal-gov")),
        ("education", "edu", "cat", ("hs-grad", "some-college", "bachelors", "masters",
                                     "assoc-acdm")),
        ("hours-per-week", "hrs", "int", (5, 80)),
        ("income", "inc", "cat", ("<=50k", ">50k")),
    ],
    "sales": [
        ("order id", "oid", "int", (1000, 9999)),
        ("product", "prod", "cat", ("widget", "gadget", "sprocket", "module", "casing")),
        ("quantity", "qty", "int", (1, 500)),
        ("unit price", "amt", "float", (0.5, 900.0)),
        ("region", "reg", "cat", ("north", "south", "east", "west")),
    ],
    "sensors": [
        ("timestamp", "ts", "int", (1600000000, 1700000000)),
        ("temperature", "temp", "float", (-20.0, 45.0)),
        ("humidity", "hum", "float", (0.0, 100.0)),
        ("pressure", "pres", "float", (950.0, 1050.0)),
        ("status", "st", "cat", ("ok", "warn", "fail")),
    ],
}


class GitTablesConfig:
    """Knobs reproducing the messiness profile of CSV corpora."""

    def __init__(self, min_rows: int = 3, max_rows: int = 8,
                 missing_cell_probability: float = 0.1,
                 abbreviated_header_probability: float = 0.4,
                 headerless_probability: float = 0.15) -> None:
        for name, p in [("missing_cell_probability", missing_cell_probability),
                        ("abbreviated_header_probability", abbreviated_header_probability),
                        ("headerless_probability", headerless_probability)]:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if min_rows < 1 or max_rows < min_rows:
            raise ValueError("invalid row bounds")
        self.min_rows = min_rows
        self.max_rows = max_rows
        self.missing_cell_probability = missing_cell_probability
        self.abbreviated_header_probability = abbreviated_header_probability
        self.headerless_probability = headerless_probability


def _sample_value(kind: str, pool: tuple, rng: np.random.Generator) -> object:
    if kind == "int":
        low, high = pool
        return int(rng.integers(low, high + 1))
    if kind == "float":
        low, high = pool
        return round(float(rng.uniform(low, high)), 2)
    return pool[int(rng.integers(len(pool)))]


def generate_git_table(rng: np.random.Generator,
                       config: GitTablesConfig | None = None,
                       flavor: str | None = None,
                       table_id: str = "") -> Table:
    """Sample one CSV-style table of the given (or random) flavor."""
    config = config or GitTablesConfig()
    flavors = sorted(_BLUEPRINTS)
    if flavor is None:
        flavor = flavors[int(rng.integers(len(flavors)))]
    if flavor not in _BLUEPRINTS:
        raise KeyError(f"unknown flavor {flavor!r}; have {flavors}")
    blueprint = _BLUEPRINTS[flavor]

    n_cols = int(rng.integers(3, len(blueprint) + 1))
    column_idx = sorted(rng.choice(len(blueprint), size=n_cols, replace=False))
    columns = [blueprint[i] for i in column_idx]

    headerless = bool(rng.random() < config.headerless_probability)
    abbreviated = bool(rng.random() < config.abbreviated_header_probability)
    if headerless:
        header = [""] * n_cols
    elif abbreviated:
        header = [abbrev for _, abbrev, _, _ in columns]
    else:
        header = [full for full, _, _, _ in columns]

    n_rows = int(rng.integers(config.min_rows, config.max_rows + 1))
    rows = []
    for _ in range(n_rows):
        row = []
        for _, _, kind, pool in columns:
            if rng.random() < config.missing_cell_probability:
                row.append(Cell(None))
            else:
                row.append(Cell(_sample_value(kind, pool, rng)))
        rows.append(row)

    context = TableContext() if headerless else TableContext(section=flavor)
    return Table(header, rows, context=context, table_id=table_id)


def generate_git_corpus(size: int, seed: int = 0,
                        config: GitTablesConfig | None = None) -> list[Table]:
    """Generate ``size`` tables with deterministic ids ``git-<n>``."""
    rng = np.random.default_rng(seed)
    return [
        generate_git_table(rng, config=config, table_id=f"git-{index}")
        for index in range(size)
    ]
