"""Infobox-style (vertical entity card) table generator.

Web corpora contain many *vertical* tables: one entity per table, with
attribute names down the first column ("Population | 67.75") — Wikipedia
infoboxes being the canonical case.  These exercise the orientation
detection / normalization path in :mod:`repro.tables.orientation`.
"""

from __future__ import annotations

import numpy as np

from .knowledge import DOMAINS, Entity, KnowledgeBase
from ..tables import Cell, Table, TableContext

__all__ = ["generate_infobox", "generate_infobox_corpus"]


def _cell(value: object) -> Cell:
    if isinstance(value, Entity):
        return Cell(value.name, entity_id=value.entity_id)
    return Cell(value)  # type: ignore[arg-type]


def generate_infobox(kb: KnowledgeBase, rng: np.random.Generator,
                     domain: str | None = None,
                     table_id: str = "") -> Table:
    """One vertical entity card: attribute | value rows, headerless."""
    if domain is None:
        domain = DOMAINS[int(rng.integers(len(DOMAINS)))]
    records = kb.domain_records(domain)
    record = records[int(rng.integers(len(records)))]
    subject = kb.subject_attribute(domain)
    attributes = kb.attribute_names(domain)
    n_attrs = int(rng.integers(3, len(attributes) + 1))
    chosen_idx = sorted(rng.choice(len(attributes), size=n_attrs,
                                   replace=False))
    chosen = [attributes[i] for i in chosen_idx]

    rows = [[Cell(attr), _cell(record[attr])] for attr in chosen]
    subject_entity = record[subject]
    context = TableContext(title=subject_entity.name, section=domain)
    return Table(["", ""], rows, context=context, table_id=table_id)


def generate_infobox_corpus(kb: KnowledgeBase, size: int, seed: int = 0
                            ) -> list[Table]:
    """Generate ``size`` cards with deterministic ids ``infobox-<n>``."""
    rng = np.random.default_rng(seed)
    return [generate_infobox(kb, rng, table_id=f"infobox-{i}")
            for i in range(size)]
