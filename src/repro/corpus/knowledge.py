"""Synthetic knowledge base backing the table corpora.

The paper's pretraining corpora (WikiTables, WDC) are collections of
entity-centric web tables whose cells are *consistent across tables*: the
capital of France is Paris in every table that mentions it.  That
consistency is what masked-cell / masked-entity pretraining exploits.  This
module builds a deterministic synthetic world — entities with stable typed
attributes and cross-entity relations — from which the generators in
:mod:`repro.corpus.wikitables` and :mod:`repro.corpus.gittables` derive
tables.  See DESIGN.md (substitution table) for why this preserves the
behaviour the tutorial studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Entity", "KnowledgeBase", "DOMAINS"]


@dataclass(frozen=True)
class Entity:
    """A named entity with a stable id — the unit TURL's MER recovers."""

    entity_id: int
    name: str
    etype: str


# Fixed seed data: a small real-world geography plus name/word pools.
_COUNTRIES = [
    ("Australia", "Canberra", "Oceania"),
    ("France", "Paris", "Europe"),
    ("Japan", "Tokyo", "Asia"),
    ("Brazil", "Brasilia", "South America"),
    ("Canada", "Ottawa", "North America"),
    ("Germany", "Berlin", "Europe"),
    ("India", "New Delhi", "Asia"),
    ("Italy", "Rome", "Europe"),
    ("Spain", "Madrid", "Europe"),
    ("Egypt", "Cairo", "Africa"),
    ("Kenya", "Nairobi", "Africa"),
    ("Mexico", "Mexico City", "North America"),
    ("Norway", "Oslo", "Europe"),
    ("Peru", "Lima", "South America"),
    ("Poland", "Warsaw", "Europe"),
    ("Sweden", "Stockholm", "Europe"),
    ("Thailand", "Bangkok", "Asia"),
    ("Turkey", "Ankara", "Asia"),
    ("Vietnam", "Hanoi", "Asia"),
    ("Chile", "Santiago", "South America"),
    ("Greece", "Athens", "Europe"),
    ("Portugal", "Lisbon", "Europe"),
    ("Austria", "Vienna", "Europe"),
    ("Finland", "Helsinki", "Europe"),
    ("Ireland", "Dublin", "Europe"),
    ("Morocco", "Rabat", "Africa"),
    ("Nigeria", "Abuja", "Africa"),
    ("Argentina", "Buenos Aires", "South America"),
    ("Indonesia", "Jakarta", "Asia"),
    ("Netherlands", "Amsterdam", "Europe"),
]

_LANGUAGES = ["english", "french", "japanese", "portuguese", "german", "hindi",
              "italian", "spanish", "arabic", "swahili", "norwegian", "polish",
              "swedish", "thai", "turkish", "vietnamese", "greek", "finnish",
              "dutch", "bengali"]
_CURRENCIES = ["dollar", "euro", "yen", "real", "rupee", "pound", "krone",
               "peso", "zloty", "krona", "baht", "lira", "dong", "dirham"]
_FIRST_NAMES = ["satyajit", "mira", "akira", "agnes", "pedro", "sofia", "jan",
                "maria", "kenji", "amara", "luis", "ingrid", "tariq", "elena",
                "ravi", "freja", "omar", "lucia", "hiroshi", "zofia"]
_LAST_NAMES = ["ray", "nair", "kurosawa", "varda", "almod", "coppola", "kowalski",
               "rossi", "tanaka", "okafor", "garcia", "larsen", "hassan", "petrova",
               "iyer", "nielsen", "farouk", "moretti", "sato", "nowak"]
_FILM_ADJECTIVES = ["silent", "golden", "hidden", "broken", "burning", "distant",
                    "endless", "crimson", "wandering", "forgotten", "electric",
                    "midnight", "paper", "winter", "glass"]
_FILM_NOUNS = ["river", "garden", "city", "mirror", "horizon", "station",
               "harvest", "lantern", "orchard", "voyage", "letters", "shore",
               "meridian", "archive", "procession"]
_GENRES = ["drama", "comedy", "thriller", "documentary", "romance", "adventure"]
_SPORTS = ["running", "swimming", "cycling", "rowing", "fencing", "judo",
           "archery", "skiing", "tennis", "boxing"]
_TEAMS = ["tigers", "falcons", "wolves", "eagles", "sharks", "lions",
          "dragons", "hawks", "bears", "otters"]
_SECTORS = ["energy", "finance", "retail", "transport", "software",
            "agriculture", "media", "health", "logistics", "materials"]
_COMPANY_STEMS = ["nova", "vertex", "atlas", "lumen", "cobalt", "aurora", "delta",
                  "zephyr", "orion", "quartz", "helix", "summit", "meridian",
                  "pioneer", "cascade"]
_COMPANY_SUFFIXES = ["corp", "labs", "group", "works", "systems", "industries"]

DOMAINS = ("countries", "films", "athletes", "companies")


class KnowledgeBase:
    """A deterministic synthetic world of typed entities and facts.

    Parameters
    ----------
    seed:
        Controls every random attribute; two KBs with the same seed are
        identical.
    num_films, num_athletes, num_companies:
        Sizes of the generated entity populations (countries are fixed).
    """

    def __init__(self, seed: int = 0, num_films: int = 60, num_athletes: int = 60,
                 num_companies: int = 40) -> None:
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.entities: list[Entity] = []
        self._by_type: dict[str, list[Entity]] = {}
        self.facts: dict[str, list[dict[str, object]]] = {d: [] for d in DOMAINS}

        self._build_countries(rng)
        self._build_films(rng, num_films)
        self._build_athletes(rng, num_athletes)
        self._build_companies(rng, num_companies)

    # ------------------------------------------------------------------
    # Entity bookkeeping
    # ------------------------------------------------------------------
    def _new_entity(self, name: str, etype: str) -> Entity:
        entity = Entity(len(self.entities), name, etype)
        self.entities.append(entity)
        self._by_type.setdefault(etype, []).append(entity)
        return entity

    def entities_of_type(self, etype: str) -> list[Entity]:
        return list(self._by_type.get(etype, []))

    @property
    def num_entities(self) -> int:
        return len(self.entities)

    def entity(self, entity_id: int) -> Entity:
        return self.entities[entity_id]

    # ------------------------------------------------------------------
    # Domain builders
    # ------------------------------------------------------------------
    def _build_countries(self, rng: np.random.Generator) -> None:
        for index, (name, capital, continent) in enumerate(_COUNTRIES):
            country = self._new_entity(name, "country")
            city = self._new_entity(capital, "city")
            self.facts["countries"].append({
                "country": country,
                "capital": city,
                "continent": continent,
                "population": round(float(rng.uniform(0.5, 150.0)), 2),
                "area": round(float(rng.uniform(50, 9000)), 0),
                "language": _LANGUAGES[index % len(_LANGUAGES)],
                "currency": _CURRENCIES[index % len(_CURRENCIES)],
            })

    def _build_films(self, rng: np.random.Generator, count: int) -> None:
        countries = self.facts["countries"]
        directors = [
            self._new_entity(f"{first} {last}", "person")
            for first, last in zip(_FIRST_NAMES, _LAST_NAMES)
        ]
        seen: set[str] = set()
        while len(self.facts["films"]) < count:
            title = (f"the {_FILM_ADJECTIVES[rng.integers(len(_FILM_ADJECTIVES))]} "
                     f"{_FILM_NOUNS[rng.integers(len(_FILM_NOUNS))]}")
            if title in seen:
                continue
            seen.add(title)
            film = self._new_entity(title, "film")
            record = countries[int(rng.integers(len(countries)))]
            self.facts["films"].append({
                "film": film,
                "director": directors[int(rng.integers(len(directors)))],
                "year": int(rng.integers(1950, 2023)),
                "genre": _GENRES[int(rng.integers(len(_GENRES)))],
                "country": record["country"],
                "language": record["language"],
                "rating": round(float(rng.uniform(4.0, 9.5)), 1),
            })

    def _build_athletes(self, rng: np.random.Generator, count: int) -> None:
        countries = self.facts["countries"]
        seen: set[str] = set()
        while len(self.facts["athletes"]) < count:
            name = (f"{_FIRST_NAMES[rng.integers(len(_FIRST_NAMES))]} "
                    f"{_LAST_NAMES[rng.integers(len(_LAST_NAMES))]}")
            if name in seen:
                continue
            seen.add(name)
            athlete = self._new_entity(name, "athlete")
            record = countries[int(rng.integers(len(countries)))]
            self.facts["athletes"].append({
                "athlete": athlete,
                "sport": _SPORTS[int(rng.integers(len(_SPORTS)))],
                "country": record["country"],
                "team": _TEAMS[int(rng.integers(len(_TEAMS)))],
                "medals": int(rng.integers(0, 20)),
                "debut": int(rng.integers(1990, 2022)),
            })

    def _build_companies(self, rng: np.random.Generator, count: int) -> None:
        countries = self.facts["countries"]
        seen: set[str] = set()
        while len(self.facts["companies"]) < count:
            name = (f"{_COMPANY_STEMS[rng.integers(len(_COMPANY_STEMS))]} "
                    f"{_COMPANY_SUFFIXES[rng.integers(len(_COMPANY_SUFFIXES))]}")
            if name in seen:
                continue
            seen.add(name)
            company = self._new_entity(name, "company")
            record = countries[int(rng.integers(len(countries)))]
            self.facts["companies"].append({
                "company": company,
                "sector": _SECTORS[int(rng.integers(len(_SECTORS)))],
                "country": record["country"],
                "founded": int(rng.integers(1900, 2020)),
                "revenue": round(float(rng.uniform(1.0, 500.0)), 1),
                "employees": int(rng.integers(50, 100000)),
            })

    # ------------------------------------------------------------------
    # Queries used by generators and evaluation
    # ------------------------------------------------------------------
    def domain_records(self, domain: str) -> list[dict[str, object]]:
        """All fact records of one domain (each a subject-rooted dict)."""
        if domain not in self.facts:
            raise KeyError(f"unknown domain {domain!r}; have {sorted(self.facts)}")
        return list(self.facts[domain])

    def subject_attribute(self, domain: str) -> str:
        """Name of the subject (entity) attribute of a domain."""
        return {"countries": "country", "films": "film",
                "athletes": "athlete", "companies": "company"}[domain]

    def attribute_names(self, domain: str) -> list[str]:
        """Non-subject attribute names of a domain, in canonical order."""
        record = self.facts[domain][0]
        subject = self.subject_attribute(domain)
        return [key for key in record if key != subject]
