"""Deterministic train/validation/test splits.

Splitting is by stable hash of ``table_id`` so that (a) the same table never
appears in two splits even when examples are regenerated, and (b) splits are
reproducible across processes (Python's builtin ``hash`` is salted, so a
private FNV-1a is used instead).
"""

from __future__ import annotations

from typing import Sequence

from ..tables import Table

__all__ = ["stable_hash", "split_tables", "assign_split"]

_FNV_OFFSET = 0xcbf29ce484222325
_FNV_PRIME = 0x100000001b3


def stable_hash(text: str) -> int:
    """64-bit FNV-1a hash; stable across runs and platforms."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) % (1 << 64)
    return value


def assign_split(table_id: str, fractions: Sequence[float] = (0.8, 0.1, 0.1),
                 salt: str = "") -> int:
    """Deterministically map a table id to a split index.

    ``fractions`` must sum to 1 (±1e-6); the returned index is the position
    in ``fractions`` (0 = train, 1 = valid, 2 = test for the default).
    """
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")
    point = (stable_hash(salt + table_id) % 10_000) / 10_000.0
    cumulative = 0.0
    for index, fraction in enumerate(fractions):
        cumulative += fraction
        if point < cumulative:
            return index
    return len(fractions) - 1


def split_tables(tables: Sequence[Table],
                 fractions: Sequence[float] = (0.8, 0.1, 0.1),
                 salt: str = "") -> tuple[list[Table], ...]:
    """Partition tables into ``len(fractions)`` deterministic groups."""
    groups: tuple[list[Table], ...] = tuple([] for _ in fractions)
    for table in tables:
        if not table.table_id:
            raise ValueError("split_tables requires every table to have a table_id")
        groups[assign_split(table.table_id, fractions, salt=salt)].append(table)
    return groups
