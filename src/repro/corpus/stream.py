"""Streaming corpora: deterministic shard-seeded table generation.

TaBERT and TAPAS pretrain over tens of millions of tables — corpora that
can never live in memory as a ``list[Table]``.  This module makes every
corpus generator *streamable*: a corpus is a (finite or infinite)
sequence of fixed-size **shards**, and shard ``s`` of a corpus seeded
with ``corpus_seed`` is generated on demand from the spawned child

    numpy.random.SeedSequence(corpus_seed, spawn_key=(s,))

— the same independent-stream scheme ``run_imputation_pipeline`` uses
for its per-split generators.  The spawn key makes shard generation a
pure function of ``(corpus_seed, shard_index)``:

- **order-free**: shards can be generated in any order, repeatedly, on
  any process, and always contain the same tables (this is what lets
  the elastic workers regenerate a lost shard bit-identically instead
  of shipping pickled tables over pipes);
- **prefix-stable**: the first ``k`` full shards of a corpus do not
  depend on the corpus size, so growing a corpus never perturbs
  training runs over its prefix;
- **collision-free**: distinct ``(corpus_seed, shard_index)`` pairs
  yield statistically independent streams by the ``SeedSequence``
  spawning contract.

Consumers hold a :class:`ShardWindow` — a bounded LRU cache of
generated shards — so random access over a finite stream costs at most
``window_shards * shard_tables`` tables of memory no matter the corpus
size.  :class:`MaterializedCorpus` wraps an existing ``list[Table]`` in
the same protocol so legacy callers keep working, and
:meth:`StreamingCorpus.materialize` goes the other way for differential
testing: a streamed consumer and a materialized consumer of the same
stream must behave *bit-identically* (the contract
``tests/corpus/test_stream_differential.py`` enforces at checkpoint-byte
level).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Iterable, Iterator

import numpy as np

from .gittables import GitTablesConfig, generate_git_table
from .infobox import generate_infobox
from .knowledge import KnowledgeBase
from .splits import stable_hash
from .wikitables import WikiTablesConfig, generate_wiki_table
from ..tables import Table

__all__ = [
    "EmptyCorpusError",
    "StreamingCorpus", "MaterializedCorpus",
    "WikiTableStream", "GitTableStream", "InfoboxStream",
    "ShardWindow",
    "shard_seed", "table_fingerprint", "shard_fingerprint",
    "as_stream", "open_stream", "STREAM_KINDS",
]

#: Default tables per shard for the generator adapters and the CLI.
DEFAULT_SHARD_TABLES = 64


class EmptyCorpusError(ValueError):
    """A corpus or stream with zero tables was offered for training.

    Subclasses :class:`ValueError` so callers that guarded against the
    historical bare ``ValueError`` keep working; the CLI maps it to an
    operator error (exit code 2).
    """


def shard_seed(corpus_seed: int, shard_index: int) -> np.random.SeedSequence:
    """The spawned :class:`~numpy.random.SeedSequence` for one shard.

    ``SeedSequence(seed).spawn(n)[i]`` equals
    ``SeedSequence(seed, spawn_key=(i,))``; constructing the child
    directly makes shard ``i`` reachable without enumerating (or even
    knowing the number of) its predecessors — the property an infinite
    stream and a mid-stream resume both rely on.
    """
    if shard_index < 0:
        raise ValueError(f"shard_index must be non-negative, got {shard_index}")
    return np.random.SeedSequence(corpus_seed, spawn_key=(shard_index,))


# ----------------------------------------------------------------------
# Fingerprints: stable content hashes for drift detection
# ----------------------------------------------------------------------
def table_fingerprint(table: Table) -> str:
    """A 64-bit stable content hash of one table, as 16 hex digits.

    Covers identity, header, context and every cell (text and entity
    id), so any generator drift — reordered draws, changed pools, new
    columns — changes the fingerprint.  Uses the same FNV-1a hash as
    the corpus splits: stable across processes, platforms and runs.
    """
    parts = [table.table_id, "\x1d".join(table.header),
             table.context.title, table.context.section,
             table.context.caption]
    for _, _, cell in table.iter_cells():
        parts.append(cell.text())
        parts.append("" if cell.entity_id is None else str(cell.entity_id))
    return f"{stable_hash(chr(0x1e).join(parts)):016x}"


def shard_fingerprint(tables: Iterable[Table]) -> str:
    """Order-sensitive fingerprint of a whole shard (16 hex digits)."""
    joined = "\x1f".join(table_fingerprint(t) for t in tables)
    return f"{stable_hash(joined):016x}"


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class StreamingCorpus:
    """A corpus as a deterministic sequence of fixed-size table shards.

    Parameters
    ----------
    shard_tables:
        Tables per shard.  Every shard is full except (for finite
        streams) possibly the last.
    size:
        Total number of tables, or ``None`` for an infinite stream.

    Subclasses implement :meth:`generate_shard` — a *pure* function of
    the shard index (typically via :func:`shard_seed`) — and
    :meth:`spec`, the JSON-able identity of the stream used for
    checkpoint compatibility checks and fingerprinting.
    """

    def __init__(self, shard_tables: int, size: int | None) -> None:
        if shard_tables < 1:
            raise ValueError("shard_tables must be positive")
        if size is not None and size < 0:
            raise ValueError("size must be non-negative (None = infinite)")
        self.shard_tables = int(shard_tables)
        self.size = None if size is None else int(size)
        self._fingerprint: str | None = None

    # -- identity -------------------------------------------------------
    def spec(self) -> dict:
        """JSON-able description that fully determines the stream."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable 16-hex-digit hash of :meth:`spec` (cached)."""
        if self._fingerprint is None:
            encoded = json.dumps(self.spec(), sort_keys=True)
            self._fingerprint = f"{stable_hash(encoded):016x}"
        return self._fingerprint

    # -- geometry -------------------------------------------------------
    @property
    def is_infinite(self) -> bool:
        return self.size is None

    @property
    def num_shards(self) -> int | None:
        """Shard count, or ``None`` for an infinite stream."""
        if self.size is None:
            return None
        return -(-self.size // self.shard_tables)  # ceil division

    def shard_length(self, index: int) -> int:
        """How many tables shard ``index`` holds (last may be short)."""
        if index < 0:
            raise IndexError(f"shard index {index} out of range")
        if self.size is None:
            return self.shard_tables
        start = index * self.shard_tables
        if start >= self.size:
            raise IndexError(
                f"shard index {index} out of range for {self.num_shards} "
                f"shard(s)")
        return min(self.shard_tables, self.size - start)

    # -- generation -----------------------------------------------------
    def generate_shard(self, index: int) -> list[Table]:
        """Generate shard ``index`` — pure, order-free, repeatable."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[list[Table]]:
        """Yield shards in order; never terminates for infinite streams."""
        index = 0
        total = self.num_shards
        while total is None or index < total:
            yield self.generate_shard(index)
            index += 1

    def iter_tables(self) -> Iterator[Table]:
        """Flat table iterator over :meth:`__iter__`."""
        for shard in self:
            yield from shard

    def head_tables(self, count: int) -> list[Table]:
        """The first ``count`` tables (fewer if the stream is shorter).

        Bounded-memory: generates only the shards it needs.  Used to
        seed tokenizers without materializing the corpus.
        """
        head: list[Table] = []
        if count <= 0:
            return head
        for shard in self:
            head.extend(shard)
            if len(head) >= count:
                break
        return head[:count]

    def materialize(self) -> list[Table]:
        """Every table as one in-memory list (finite streams only).

        This is the differential-testing bridge: training over the
        stream must be bit-identical to training over this list.
        """
        if self.size is None:
            raise ValueError("cannot materialize an infinite stream")
        return list(self.iter_tables())


# ----------------------------------------------------------------------
# Generator adapters
# ----------------------------------------------------------------------
class WikiTableStream(StreamingCorpus):
    """Streamed WikiTables-style corpus (entity-focused tables)."""

    kind = "wiki"

    def __init__(self, kb: KnowledgeBase, size: int | None, seed: int = 0,
                 shard_tables: int = DEFAULT_SHARD_TABLES,
                 config: WikiTablesConfig | None = None) -> None:
        super().__init__(shard_tables, size)
        self.kb = kb
        self.seed = int(seed)
        self.config = config

    def spec(self) -> dict:
        config = self.config
        return {
            "kind": self.kind, "seed": self.seed, "size": self.size,
            "shard_tables": self.shard_tables, "kb_seed": self.kb.seed,
            "config": None if config is None else {
                "min_rows": config.min_rows, "max_rows": config.max_rows,
                "min_attributes": config.min_attributes,
                "max_attributes": config.max_attributes,
            },
        }

    def generate_shard(self, index: int) -> list[Table]:
        count = self.shard_length(index)
        rng = np.random.default_rng(shard_seed(self.seed, index))
        base = index * self.shard_tables
        return [generate_wiki_table(self.kb, rng, config=self.config,
                                    table_id=f"wiki-{base + offset}")
                for offset in range(count)]


class GitTableStream(StreamingCorpus):
    """Streamed GitTables-style corpus (heterogeneous CSV tables)."""

    kind = "git"

    def __init__(self, size: int | None, seed: int = 0,
                 shard_tables: int = DEFAULT_SHARD_TABLES,
                 config: GitTablesConfig | None = None) -> None:
        super().__init__(shard_tables, size)
        self.seed = int(seed)
        self.config = config

    def spec(self) -> dict:
        config = self.config
        return {
            "kind": self.kind, "seed": self.seed, "size": self.size,
            "shard_tables": self.shard_tables,
            "config": None if config is None else {
                "min_rows": config.min_rows, "max_rows": config.max_rows,
                "missing_cell_probability": config.missing_cell_probability,
                "abbreviated_header_probability":
                    config.abbreviated_header_probability,
                "headerless_probability": config.headerless_probability,
            },
        }

    def generate_shard(self, index: int) -> list[Table]:
        count = self.shard_length(index)
        rng = np.random.default_rng(shard_seed(self.seed, index))
        base = index * self.shard_tables
        return [generate_git_table(rng, config=self.config,
                                   table_id=f"git-{base + offset}")
                for offset in range(count)]


class InfoboxStream(StreamingCorpus):
    """Streamed infobox corpus (vertical entity cards)."""

    kind = "infobox"

    def __init__(self, kb: KnowledgeBase, size: int | None, seed: int = 0,
                 shard_tables: int = DEFAULT_SHARD_TABLES) -> None:
        super().__init__(shard_tables, size)
        self.kb = kb
        self.seed = int(seed)

    def spec(self) -> dict:
        return {"kind": self.kind, "seed": self.seed, "size": self.size,
                "shard_tables": self.shard_tables, "kb_seed": self.kb.seed}

    def generate_shard(self, index: int) -> list[Table]:
        count = self.shard_length(index)
        rng = np.random.default_rng(shard_seed(self.seed, index))
        base = index * self.shard_tables
        return [generate_infobox(self.kb, rng,
                                 table_id=f"infobox-{base + offset}")
                for offset in range(count)]


class MaterializedCorpus(StreamingCorpus):
    """An in-memory ``list[Table]`` wearing the streaming protocol.

    The bridge for legacy callers: anything that consumes a
    :class:`StreamingCorpus` also accepts an existing list this way, and
    the shard decomposition is a pure view — :meth:`generate_shard`
    slices, never copies or regenerates.
    """

    kind = "materialized"

    def __init__(self, tables: list[Table],
                 shard_tables: int = DEFAULT_SHARD_TABLES) -> None:
        super().__init__(shard_tables, len(tables))
        self.tables = list(tables)

    def spec(self) -> dict:
        # Content-addressed: two materialized corpora are "the same
        # stream" exactly when they hold the same tables in the same
        # order and shard decomposition.
        content = "\x1f".join(table_fingerprint(t) for t in self.tables)
        return {"kind": self.kind, "size": self.size,
                "shard_tables": self.shard_tables,
                "content": f"{stable_hash(content):016x}"}

    def generate_shard(self, index: int) -> list[Table]:
        count = self.shard_length(index)
        start = index * self.shard_tables
        return self.tables[start:start + count]

    def materialize(self) -> list[Table]:
        return list(self.tables)


# ----------------------------------------------------------------------
# Bounded random access
# ----------------------------------------------------------------------
class ShardWindow:
    """A bounded LRU cache of generated shards over one stream.

    Serves table lookups by *global index* while keeping at most
    ``max_shards`` shards in memory; anything evicted is regenerated on
    demand (cheap and bit-identical, by the shard-seeding contract).
    The window is pure cache: its capacity, hit pattern and eviction
    order can never change *which* table a global index resolves to.
    """

    def __init__(self, stream: StreamingCorpus, max_shards: int = 8) -> None:
        if max_shards < 1:
            raise ValueError("max_shards must be positive")
        self.stream = stream
        self.max_shards = int(max_shards)
        self._shards: OrderedDict[int, list[Table]] = OrderedDict()
        self.hits = 0
        self.generated = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> list[Table]:
        """The tables of shard ``index`` (cached or regenerated)."""
        cached = self._shards.get(index)
        if cached is not None:
            self.hits += 1
            self._shards.move_to_end(index)
            return cached
        tables = self.stream.generate_shard(index)
        self.generated += 1
        self._shards[index] = tables
        evicted = len(self._shards) > self.max_shards
        if evicted:
            self._shards.popitem(last=False)
            self.evicted += 1
        self._observe(evicted)
        return tables

    def table(self, global_index: int) -> Table:
        """The table at ``global_index`` of the stream."""
        size = self.stream.size
        if global_index < 0 or (size is not None and global_index >= size):
            raise IndexError(
                f"table index {global_index} out of range for corpus of "
                f"size {size}")
        shard_tables = self.stream.shard_tables
        shard = self.shard(global_index // shard_tables)
        return shard[global_index % shard_tables]

    def tables(self, global_indices: Iterable[int]) -> list[Table]:
        return [self.table(int(i)) for i in global_indices]

    def _observe(self, evicted: bool) -> None:
        from ..runtime import get_registry, telemetry_enabled

        if not telemetry_enabled():
            return
        registry = get_registry()
        registry.counter("corpus.stream.shards_generated").inc()
        if evicted:
            registry.counter("corpus.stream.shards_evicted").inc()


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
STREAM_KINDS = ("wiki", "git", "infobox")


def as_stream(corpus: "list[Table] | StreamingCorpus",
              shard_tables: int = DEFAULT_SHARD_TABLES) -> StreamingCorpus:
    """Coerce a ``list[Table]`` (or a stream) into the stream protocol."""
    if isinstance(corpus, StreamingCorpus):
        return corpus
    return MaterializedCorpus(list(corpus), shard_tables=shard_tables)


def open_stream(kind: str, *, size: int | None, seed: int = 0,
                shard_tables: int = DEFAULT_SHARD_TABLES,
                kb: KnowledgeBase | None = None) -> StreamingCorpus:
    """Build a generator-backed stream by kind name (CLI entry point).

    ``size=None`` opens an infinite stream.  ``kb`` defaults to a
    :class:`KnowledgeBase` seeded with ``seed`` for the entity-backed
    kinds, mirroring the historical ``repro corpus`` behaviour.
    """
    if kind == "git":
        return GitTableStream(size, seed=seed, shard_tables=shard_tables)
    if kind == "wiki":
        return WikiTableStream(kb or KnowledgeBase(seed=seed), size,
                               seed=seed, shard_tables=shard_tables)
    if kind == "infobox":
        return InfoboxStream(kb or KnowledgeBase(seed=seed), size,
                             seed=seed, shard_tables=shard_tables)
    raise KeyError(f"unknown corpus kind {kind!r}; have {STREAM_KINDS}")
