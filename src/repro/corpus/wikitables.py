"""WikiTables-style corpus generator: entity-focused relational tables.

Each generated table is rooted in one KB domain: the first column holds
subject entities and the remaining columns hold a sampled subset of their
attributes, with a descriptive title/caption as context — the structure of
the Wikipedia tables TURL and TaBERT pretrain on.  Entity-valued cells carry
their KB entity id, enabling masked entity recovery supervision.
"""

from __future__ import annotations

import numpy as np

from .knowledge import DOMAINS, Entity, KnowledgeBase
from ..tables import Cell, Table, TableContext

__all__ = ["WikiTablesConfig", "generate_wiki_table", "generate_wiki_corpus"]


_TITLE_TEMPLATES = {
    "countries": "list of countries by {attr}",
    "films": "films and their {attr}",
    "athletes": "athletes by {attr}",
    "companies": "companies ranked by {attr}",
}


class WikiTablesConfig:
    """Knobs for corpus generation.

    Attributes mirror the observable properties of the real corpus: table
    size distribution and how many attribute columns each table exposes.
    """

    def __init__(self, min_rows: int = 3, max_rows: int = 8,
                 min_attributes: int = 2, max_attributes: int = 4) -> None:
        if min_rows < 1 or max_rows < min_rows:
            raise ValueError("invalid row bounds")
        if min_attributes < 1 or max_attributes < min_attributes:
            raise ValueError("invalid attribute bounds")
        self.min_rows = min_rows
        self.max_rows = max_rows
        self.min_attributes = min_attributes
        self.max_attributes = max_attributes


def _cell_from_value(value: object) -> Cell:
    if isinstance(value, Entity):
        return Cell(value.name, entity_id=value.entity_id)
    return Cell(value)  # type: ignore[arg-type]


def generate_wiki_table(kb: KnowledgeBase, rng: np.random.Generator,
                        config: WikiTablesConfig | None = None,
                        domain: str | None = None,
                        table_id: str = "") -> Table:
    """Sample one entity-focused table from the knowledge base."""
    config = config or WikiTablesConfig()
    if domain is None:
        domain = DOMAINS[int(rng.integers(len(DOMAINS)))]
    records = kb.domain_records(domain)
    subject = kb.subject_attribute(domain)
    attributes = kb.attribute_names(domain)

    n_attrs = int(rng.integers(config.min_attributes,
                               min(config.max_attributes, len(attributes)) + 1))
    chosen = list(rng.choice(len(attributes), size=n_attrs, replace=False))
    chosen_attrs = [attributes[i] for i in sorted(chosen)]

    n_rows = int(rng.integers(config.min_rows,
                              min(config.max_rows, len(records)) + 1))
    row_indices = list(rng.choice(len(records), size=n_rows, replace=False))

    header = [subject] + chosen_attrs
    rows = []
    for index in row_indices:
        record = records[index]
        rows.append([_cell_from_value(record[subject])]
                    + [_cell_from_value(record[attr]) for attr in chosen_attrs])

    title = _TITLE_TEMPLATES[domain].format(attr=chosen_attrs[0])
    context = TableContext(title=title, section=domain)
    return Table(header, rows, context=context, table_id=table_id)


def generate_wiki_corpus(kb: KnowledgeBase, size: int, seed: int = 0,
                         config: WikiTablesConfig | None = None) -> list[Table]:
    """Generate ``size`` tables with deterministic ids ``wiki-<n>``."""
    rng = np.random.default_rng(seed)
    return [
        generate_wiki_table(kb, rng, config=config, table_id=f"wiki-{index}")
        for index in range(size)
    ]
