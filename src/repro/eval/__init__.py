"""Evaluation substrate: metrics, sliced analysis, consistency tests."""

from .behavioral import (
    BehavioralTest,
    SuiteReport,
    TestReport,
    default_suite,
    run_suite,
)
from .analysis import (
    SLICERS,
    header_slicer,
    numeric_table_slicer,
    size_slicer,
    slice_by,
    sliced_accuracy,
)
from .consistency import (
    cosine,
    header_drop_shift,
    row_permutation_consistency,
    value_substitution_sensitivity,
)
from .metrics import (
    accuracy,
    denotation_accuracy,
    denotation_match,
    hits_at_k,
    macro_f1,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_recall_f1,
)

__all__ = [
    "BehavioralTest", "TestReport", "SuiteReport", "default_suite", "run_suite",
    "accuracy", "precision_recall_f1", "macro_f1",
    "hits_at_k", "mean_reciprocal_rank", "ndcg_at_k",
    "denotation_match", "denotation_accuracy",
    "slice_by", "SLICERS", "numeric_table_slicer", "header_slicer",
    "size_slicer", "sliced_accuracy",
    "cosine", "row_permutation_consistency",
    "value_substitution_sensitivity", "header_drop_shift",
]
