"""Sliced error analysis (hands-on §3.4, "zoom in on cases where it fails").

The exercise highlights two failure axes for LM-based table models:
numeric-heavy tables and tables without descriptive headers.  These slicers
partition evaluation examples accordingly so per-slice metrics expose the
expected degradation (E5 reports them).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .metrics import accuracy
from ..tables import Table

__all__ = ["slice_by", "SLICERS", "numeric_table_slicer", "header_slicer",
           "size_slicer", "sliced_accuracy"]


def numeric_table_slicer(table: Table) -> str:
    """'numeric' if most non-empty cells parse as numbers, else 'textual'."""
    return "numeric" if table.numeric_fraction() >= 0.5 else "textual"


def header_slicer(table: Table) -> str:
    """'descriptive-header' vs 'headerless'."""
    return "descriptive-header" if table.has_descriptive_header() else "headerless"


def size_slicer(table: Table) -> str:
    """Coarse size bucket by cell count."""
    cells = table.num_rows * table.num_columns
    if cells <= 12:
        return "small"
    if cells <= 30:
        return "medium"
    return "large"


SLICERS: dict[str, Callable[[Table], str]] = {
    "numeric": numeric_table_slicer,
    "header": header_slicer,
    "size": size_slicer,
}


def slice_by(tables: Sequence[Table],
             slicer: Callable[[Table], str]) -> dict[str, list[int]]:
    """Indices of ``tables`` grouped by slice label."""
    groups: dict[str, list[int]] = {}
    for index, table in enumerate(tables):
        groups.setdefault(slicer(table), []).append(index)
    return groups


def sliced_accuracy(tables: Sequence[Table], predictions: Sequence,
                    golds: Sequence,
                    slicer: Callable[[Table], str]) -> dict[str, float]:
    """Accuracy per slice; slices with no examples are absent."""
    if not (len(tables) == len(predictions) == len(golds)):
        raise ValueError("tables/predictions/golds must align")
    result: dict[str, float] = {}
    for label, indices in slice_by(tables, slicer).items():
        result[label] = accuracy([predictions[i] for i in indices],
                                 [golds[i] for i in indices])
    return result
