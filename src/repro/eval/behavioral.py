"""Behavioral test suites for table representations (§2.4's call to action).

The paper: "in contrast to what has been done for LMs for text [CheckList,
31], there is a lack in terms of benchmarking data representations.  A new
family of data-driven basic tests should be designed to measure the
consistency of the data representation."

This module designs that family.  Following CheckList's taxonomy:

- **INV** (invariance): perturbations that must NOT change behaviour —
  row order, column order, whitespace/case of cell text;
- **DIR** (directional expectation): perturbations that MUST change
  behaviour in a known direction — replacing a cell value, dropping the
  header should move representations;
- **MFT** (minimum functionality): basic capabilities — identical tables
  encode identically, different tables encode differently.

Each test perturbs tables, re-encodes, and scores a pass rate against a
threshold.  :func:`run_suite` executes all registered tests over a corpus
and returns a report usable by the E11 bench and by downstream users
validating their own encoders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .consistency import cosine
from ..models import TableEncoder
from ..tables import Table

__all__ = ["BehavioralTest", "TestReport", "SuiteReport", "default_suite",
           "run_suite"]


@dataclass(frozen=True)
class BehavioralTest:
    """One behavioral check.

    ``score`` maps (model, table, rng) to a float in [0, 1]; a table passes
    when the score reaches ``threshold``.  ``kind`` is the CheckList
    category: INV, DIR or MFT.
    """

    name: str
    kind: str
    score: Callable[[TableEncoder, Table, np.random.Generator], float]
    threshold: float = 0.9
    requires_rows: int = 1


@dataclass
class TestReport:
    """Outcome of one behavioral test over a corpus."""

    name: str
    kind: str
    pass_rate: float
    mean_score: float
    cases: int

    def passed(self, required_rate: float = 0.5) -> bool:
        return self.pass_rate >= required_rate


@dataclass
class SuiteReport:
    """All test reports plus a rendering helper."""

    model_name: str
    reports: list[TestReport] = field(default_factory=list)

    def by_kind(self, kind: str) -> list[TestReport]:
        return [r for r in self.reports if r.kind == kind]

    def render(self) -> str:
        lines = [f"behavioral suite — {self.model_name}"]
        for report in self.reports:
            lines.append(
                f"  [{report.kind}] {report.name:<28} "
                f"pass={report.pass_rate:.2f} mean={report.mean_score:.3f} "
                f"(n={report.cases})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Individual test scorers
# ----------------------------------------------------------------------
def _matched_cell_similarity(model: TableEncoder, table: Table,
                             transformed: Table,
                             coord_map: Callable[[tuple[int, int]],
                                                 tuple[int, int]]) -> float:
    original = model.encode(table)
    changed = model.encode(transformed)
    sims = []
    for coord, vector in changed.cell_embeddings.items():
        source = coord_map(coord)
        if source in original.cell_embeddings:
            sims.append(cosine(original.cell_embeddings[source], vector))
    return float(np.mean(sims)) if sims else 0.0


def _row_order_invariance(model, table, rng):
    permutation = list(rng.permutation(table.num_rows))
    permuted = table.with_rows_permuted(permutation)
    return _matched_cell_similarity(
        model, table, permuted,
        lambda coord: (permutation[coord[0]], coord[1]))


def _column_order_invariance(model, table, rng):
    order = list(rng.permutation(table.num_columns))
    reordered = table.subtable(column_indices=order)
    return _matched_cell_similarity(
        model, table, reordered,
        lambda coord: (coord[0], order[coord[1]]))


def _case_invariance(model, table, rng):
    shouted = Table(
        [h.upper() for h in table.header],
        [[(c.text().upper() if not c.is_numeric and not c.is_empty
           else c.value) for c in row] for row in table.rows],
        context=table.context, table_id=table.table_id)
    return _matched_cell_similarity(model, table, shouted, lambda coord: coord)


def _value_substitution_direction(model, table, rng):
    """DIR: a replaced cell must move MORE than untouched cells."""
    candidates = [(r, c) for r, c, cell in table.iter_cells()
                  if not cell.is_empty]
    if not candidates:
        return 0.0
    row, column = candidates[int(rng.integers(len(candidates)))]
    changed_table = table.replace_cell(row, column, "zzz unrelated value")
    original = model.encode(table)
    changed = model.encode(changed_table)
    target = (row, column)
    if target not in original.cell_embeddings or \
            target not in changed.cell_embeddings:
        return 0.0
    moved = 1.0 - cosine(original.cell_embeddings[target],
                         changed.cell_embeddings[target])
    others = [1.0 - cosine(original.cell_embeddings[c],
                           changed.cell_embeddings[c])
              for c in original.cell_embeddings
              if c != target and c in changed.cell_embeddings]
    baseline = float(np.mean(others)) if others else 0.0
    return 1.0 if moved > baseline else 0.0


def _header_drop_direction(model, table, rng):
    """DIR: dropping a descriptive header must shift the table embedding."""
    if not table.has_descriptive_header():
        return 1.0  # nothing to drop; vacuously fine
    original = model.encode(table).table_embedding
    stripped = model.encode(table.without_header()).table_embedding
    return 1.0 if (1.0 - cosine(original, stripped)) > 1e-6 else 0.0


def _identity_functionality(model, table, rng):
    """MFT: encoding is deterministic for identical input."""
    a = model.encode(table).table_embedding
    b = model.encode(table).table_embedding
    return 1.0 if np.array_equal(a, b) else 0.0


def _distinctness_functionality(model, table, rng):
    """MFT: a table and a heavily corrupted copy must differ."""
    corrupted = table
    for r, c, cell in table.iter_cells():
        if not cell.is_empty:
            corrupted = corrupted.replace_cell(r, c, f"noise {r} {c}")
    a = model.encode(table).table_embedding
    b = model.encode(corrupted).table_embedding
    return 1.0 if not np.allclose(a, b) else 0.0


def default_suite() -> list[BehavioralTest]:
    """The standard battery of data-driven representation tests."""
    return [
        BehavioralTest("row-order invariance", "INV", _row_order_invariance,
                       threshold=0.7, requires_rows=2),
        BehavioralTest("column-order invariance", "INV",
                       _column_order_invariance, threshold=0.7),
        BehavioralTest("case invariance", "INV", _case_invariance,
                       threshold=0.7),
        BehavioralTest("value-substitution direction", "DIR",
                       _value_substitution_direction, threshold=0.5),
        BehavioralTest("header-drop direction", "DIR",
                       _header_drop_direction, threshold=0.5),
        BehavioralTest("identity determinism", "MFT",
                       _identity_functionality, threshold=1.0),
        BehavioralTest("distinctness", "MFT", _distinctness_functionality,
                       threshold=1.0),
    ]


def run_suite(model: TableEncoder, tables: Sequence[Table],
              tests: Sequence[BehavioralTest] | None = None,
              seed: int = 0) -> SuiteReport:
    """Execute a behavioral suite over a corpus of probe tables."""
    if not tables:
        raise ValueError("behavioral suite needs at least one probe table")
    tests = list(tests) if tests is not None else default_suite()
    rng = np.random.default_rng(seed)
    report = SuiteReport(model_name=getattr(model, "model_name", "model"))
    for test in tests:
        scores = []
        for table in tables:
            if table.num_rows < test.requires_rows:
                continue
            scores.append(test.score(model, table, rng))
        if not scores:
            continue
        scores_arr = np.asarray(scores)
        report.reports.append(TestReport(
            name=test.name, kind=test.kind,
            pass_rate=float((scores_arr >= test.threshold).mean()),
            mean_score=float(scores_arr.mean()),
            cases=len(scores),
        ))
    return report
