"""Representation-consistency checks — the benchmarking gap of §2.4.

The paper closes its survey noting "a lack in terms of benchmarking data
representations [...] a new family of data-driven basic tests should be
designed to measure the consistency of the data representation."  This
module implements three such tests (E11):

- *row-permutation consistency*: a relational table's meaning is invariant
  to row order, so cell representations should be too;
- *value-substitution sensitivity*: changing a cell's value SHOULD move its
  representation (a representation that never moves is degenerate);
- *header-drop degradation*: how much table-level representations rely on
  descriptive headers.
"""

from __future__ import annotations

import numpy as np

from ..models import TableEncoder
from ..tables import Table

__all__ = [
    "cosine",
    "row_permutation_consistency",
    "value_substitution_sensitivity",
    "header_drop_shift",
]


def cosine(a: np.ndarray, b: np.ndarray, eps: float = 1e-9) -> float:
    """Cosine similarity of two vectors."""
    denom = (np.linalg.norm(a) * np.linalg.norm(b)) + eps
    return float(np.dot(a, b) / denom)


def row_permutation_consistency(model: TableEncoder, table: Table,
                                rng: np.random.Generator) -> float:
    """Mean cosine between matched cell embeddings before/after shuffling.

    1.0 means perfectly order-invariant cell representations.
    """
    if table.num_rows < 2:
        raise ValueError("need at least two rows to permute")
    permutation = rng.permutation(table.num_rows)
    while np.array_equal(permutation, np.arange(table.num_rows)):
        permutation = rng.permutation(table.num_rows)
    original = model.encode(table)
    permuted = model.encode(table.with_rows_permuted([int(i) for i in permutation]))

    inverse = {int(new_pos): int(old_row)
               for new_pos, old_row in enumerate(permutation)}
    similarities = []
    for (new_row, column), vector in permuted.cell_embeddings.items():
        old_coord = (inverse[new_row], column)
        if old_coord in original.cell_embeddings:
            similarities.append(cosine(original.cell_embeddings[old_coord], vector))
    if not similarities:
        raise ValueError("no matched cells between original and permuted tables")
    return float(np.mean(similarities))


def value_substitution_sensitivity(model: TableEncoder, table: Table,
                                   rng: np.random.Generator,
                                   replacement: str = "zzz unrelated") -> float:
    """1 - cosine of a cell's embedding before/after replacing its value.

    Larger is better: the representation notices the change.
    """
    candidates = [(r, c) for r, c, cell in table.iter_cells() if not cell.is_empty]
    if not candidates:
        raise ValueError("table has no non-empty cells")
    row, column = candidates[int(rng.integers(len(candidates)))]
    original = model.encode(table)
    changed = model.encode(table.replace_cell(row, column, replacement))
    coord = (row, column)
    if coord not in original.cell_embeddings or coord not in changed.cell_embeddings:
        raise ValueError("substituted cell missing from encoding")
    return 1.0 - cosine(original.cell_embeddings[coord],
                        changed.cell_embeddings[coord])


def header_drop_shift(model: TableEncoder, table: Table) -> float:
    """1 - cosine between table embeddings with and without the header."""
    original = model.encode(table).table_embedding
    stripped = model.encode(table.without_header()).table_embedding
    return 1.0 - cosine(original, stripped)
