"""Evaluation metrics for every downstream task family.

Includes F1 (the metric named in hands-on §3.4 for imputation), ranking
metrics for retrieval, and denotation accuracy for QA / text-to-SQL /
neural execution.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

__all__ = [
    "accuracy",
    "precision_recall_f1",
    "macro_f1",
    "hits_at_k",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "denotation_match",
    "denotation_accuracy",
]


def accuracy(predictions: Sequence, golds: Sequence) -> float:
    """Fraction of exact matches; 0 on empty input."""
    if len(predictions) != len(golds):
        raise ValueError("prediction/gold length mismatch")
    if not golds:
        return 0.0
    return float(np.mean([p == g for p, g in zip(predictions, golds)]))


def precision_recall_f1(predictions: Sequence, golds: Sequence,
                        positive_label=1) -> tuple[float, float, float]:
    """Binary precision/recall/F1 for one positive label."""
    if len(predictions) != len(golds):
        raise ValueError("prediction/gold length mismatch")
    tp = sum(1 for p, g in zip(predictions, golds)
             if p == positive_label and g == positive_label)
    fp = sum(1 for p, g in zip(predictions, golds)
             if p == positive_label and g != positive_label)
    fn = sum(1 for p, g in zip(predictions, golds)
             if p != positive_label and g == positive_label)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def macro_f1(predictions: Sequence, golds: Sequence) -> float:
    """Unweighted mean of per-class F1 over the classes present in gold."""
    if len(predictions) != len(golds):
        raise ValueError("prediction/gold length mismatch")
    classes = sorted(set(golds), key=str)
    if not classes:
        return 0.0
    scores = [precision_recall_f1(predictions, golds, positive_label=c)[2]
              for c in classes]
    return float(np.mean(scores))


def hits_at_k(ranked_ids: Sequence[Sequence[str]], gold_ids: Sequence[str],
              k: int = 1) -> float:
    """Fraction of queries whose gold item appears in the top-k ranking."""
    if len(ranked_ids) != len(gold_ids):
        raise ValueError("ranking/gold length mismatch")
    if not gold_ids:
        return 0.0
    hits = sum(1 for ranking, gold in zip(ranked_ids, gold_ids)
               if gold in list(ranking)[:k])
    return hits / len(gold_ids)


def mean_reciprocal_rank(ranked_ids: Sequence[Sequence[str]],
                         gold_ids: Sequence[str]) -> float:
    """MRR; items missing from a ranking contribute 0."""
    if len(ranked_ids) != len(gold_ids):
        raise ValueError("ranking/gold length mismatch")
    if not gold_ids:
        return 0.0
    total = 0.0
    for ranking, gold in zip(ranked_ids, gold_ids):
        ranking = list(ranking)
        if gold in ranking:
            total += 1.0 / (ranking.index(gold) + 1)
    return total / len(gold_ids)


def ndcg_at_k(ranked_ids: Sequence[Sequence[str]], gold_ids: Sequence[str],
              k: int = 10) -> float:
    """Binary-relevance NDCG@k (one relevant item per query)."""
    if len(ranked_ids) != len(gold_ids):
        raise ValueError("ranking/gold length mismatch")
    if not gold_ids:
        return 0.0
    total = 0.0
    for ranking, gold in zip(ranked_ids, gold_ids):
        ranking = list(ranking)[:k]
        if gold in ranking:
            total += 1.0 / np.log2(ranking.index(gold) + 2)
    return total / len(gold_ids)  # ideal DCG is 1 for binary single-relevant


def _normalize_value(value) -> str:
    """Canonical string for denotation comparison (numeric tolerant)."""
    if isinstance(value, (int, float)):
        number = float(value)
        return str(int(number)) if number.is_integer() else f"{number:.6g}"
    text = str(value).strip().lower()
    try:
        return _normalize_value(float(text.replace(",", "")))
    except ValueError:
        return text


def denotation_match(predicted: Sequence, gold: Sequence) -> bool:
    """Multiset equality of normalized denotation values."""
    return Counter(map(_normalize_value, predicted)) == \
        Counter(map(_normalize_value, gold))


def denotation_accuracy(predictions: Sequence[Sequence],
                        golds: Sequence[Sequence]) -> float:
    """Fraction of examples whose denotations match."""
    if len(predictions) != len(golds):
        raise ValueError("prediction/gold length mismatch")
    if not golds:
        return 0.0
    return float(np.mean([denotation_match(p, g)
                          for p, g in zip(predictions, golds)]))
