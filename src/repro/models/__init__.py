"""Model zoo: the neural table representation architectures of the tutorial.

| class       | survey mechanism                                        |
|-------------|---------------------------------------------------------|
| `TableBert` | vanilla linearize-and-encode baseline                    |
| `Tapas`     | row/column/segment embeddings + cell selection [19]      |
| `TaBert`    | content snapshot + vertical self-attention [41]          |
| `Turl`      | entity embeddings + visibility matrix + MLM/MER [11]     |
| `Mate`      | sparse row-head / column-head attention [15]             |
| `Tabbie`    | parallel row / column transformers [21]                  |
| `Tuta`      | tree-distance attention biases [39]                       |
| `Tapex`     | encoder-decoder neural SQL executor [27]                 |
"""

from .base import TableEncoder, TableEncoding
from .bert import TableBert
from .config import EncoderConfig
from .heads import (
    CellSelectionHead,
    ClassificationHead,
    EntityRecoveryHead,
    MlmHead,
)
from .mate import Mate
from .tabbie import Tabbie
from .tuta import Tuta
from .structure import (
    attention_flops_proxy,
    dense_mask,
    horizontal_mask,
    mate_head_masks,
    tree_distance_bias,
    vertical_mask,
    visibility_mask,
)
from .tabert import TaBert
from .tapas import AGGREGATION_OPS, Tapas
from .tapex import Tapex
from .turl import Turl

MODEL_CLASSES = {
    cls.model_name: cls
    for cls in (TableBert, Tapas, TaBert, Turl, Mate, Tabbie, Tuta, Tapex)
}

__all__ = [
    "EncoderConfig", "TableEncoder", "TableEncoding",
    "TableBert", "Tapas", "TaBert", "Turl", "Mate", "Tabbie", "Tuta", "Tapex",
    "AGGREGATION_OPS", "MODEL_CLASSES",
    "MlmHead", "EntityRecoveryHead", "ClassificationHead", "CellSelectionHead",
    "dense_mask", "visibility_mask", "vertical_mask", "horizontal_mask",
    "mate_head_masks", "tree_distance_bias",
    "attention_flops_proxy",
]
