"""Base table encoder: embeddings, backbone, and the ``encode`` API.

``model.encode(table)`` is the third line of the paper's Fig. 2a snippet —
it returns a :class:`TableEncoding` with representations at every
granularity the survey discusses (token / cell / row / column / table),
which is what lets one backbone serve all downstream tasks (survey
dimension 4, "Output Model Representation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Callable

from .config import EncoderConfig
from .structure import dense_mask
from ..nn import Dropout, Embedding, Encoder, LayerNorm, Module, Tensor
from ..nn.compile import ProgramCache, TapeExecutor, binding_signature, \
    record_program
from ..nn.tensor import is_inference_mode
from ..serialize import (
    BatchedFeatures,
    RowMajorSerializer,
    SerializedTable,
    Serializer,
    TableFeatures,
    encode_features,
    pad_batch,
)
from ..tables import Table
from ..text import WordPieceTokenizer

__all__ = ["TableEncoding", "TableEncoder", "forward_bindings"]


@dataclass
class TableEncoding:
    """Multi-granularity numeric representation of one table.

    All arrays are plain numpy (inference is run under ``no_grad``).
    """

    tokens: list[str]
    token_embeddings: np.ndarray                       # (seq, dim)
    table_embedding: np.ndarray                        # (dim,)
    cell_embeddings: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    row_embeddings: dict[int, np.ndarray] = field(default_factory=dict)
    column_embeddings: dict[int, np.ndarray] = field(default_factory=dict)
    serialized: SerializedTable | None = None

    @property
    def dim(self) -> int:
        return int(self.token_embeddings.shape[-1])

    def __len__(self) -> int:
        return len(self.tokens)


def _mean_span(hidden: np.ndarray, start: int, end: int) -> np.ndarray | None:
    if end <= start:
        return None
    return hidden[start:end].mean(axis=0)


def forward_bindings(batch: BatchedFeatures,
                     arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Name every batch-dependent array a compiled forward consumes.

    The feature channels come straight off :class:`BatchedFeatures`; the
    model-specific structure arrays (masks, biases, entity slots — see
    :meth:`TableEncoder.structure_arrays`) are namespaced ``arrays.*``.
    Recording a step against these bindings guarantees nothing
    batch-dependent is baked into the program as a constant.
    """
    bindings = {
        "token_ids": batch.token_ids,
        "positions": batch.positions,
        "row_ids": batch.row_ids,
        "column_ids": batch.column_ids,
        "roles": batch.roles,
        "entity_ids": batch.entity_ids,
        "numeric_features": batch.numeric_features,
        "lengths": batch.lengths,
    }
    for name, value in arrays.items():
        bindings[f"arrays.{name}"] = value
    return bindings


class _CompiledInference:
    """Signature-keyed cache of compiled forward programs for one model.

    The first batch of a given signature (padded shape + dtypes) runs the
    ordinary eager forward under a recorder; later batches replay the
    recorded program through a :class:`~repro.nn.compile.TapeExecutor`
    without building any tape.  Parameters are fetched live at every
    replay, so weight updates (``load_state_dict``, optimizer steps
    between serving sessions) are always visible.
    """

    def __init__(self, model: "TableEncoder") -> None:
        self.model = model
        self.cache = ProgramCache()

    def hidden(self, batch: BatchedFeatures,
               arrays: dict[str, np.ndarray]) -> Tensor:
        bindings = forward_bindings(batch, arrays)
        signature = binding_signature(bindings)
        executor = self.cache.get(signature)
        if executor is None:
            program, outputs = record_program(
                lambda: {"hidden": self.model._forward_impl(batch, arrays)},
                bindings)
            self.cache.put(signature, TapeExecutor(program))
            return outputs["hidden"]
        # The executor reuses its output buffer across replays; copy so
        # callers (and the serve EncodingCache) hold stable arrays, as
        # they would after an eager forward.
        return Tensor(executor.run(bindings)["hidden"].copy())


class TableEncoder(Module):
    """Shared machinery for every model in the zoo.

    Subclasses toggle the structural embedding channels (row/column/role),
    override :meth:`attention_mask` to inject their attention pattern, and
    may override :meth:`prepare_table` (e.g. TaBERT's content snapshot).
    """

    model_name = "base"
    uses_row_embeddings = False
    uses_column_embeddings = False
    uses_role_embeddings = False

    # Optional repro.serve.EncodingCache reused across inference calls;
    # attach with set_encoding_cache.
    encoding_cache = None

    # Optional compiled-replay cache for no-grad forwards; attach with
    # enable_compiled_inference.
    _compiled_inference = None

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer
        self.serializer = serializer or RowMajorSerializer(
            tokenizer, max_tokens=config.max_position)
        if self.serializer.max_tokens > config.max_position:
            raise ValueError("serializer budget exceeds max_position embeddings")

        self.token_embedding = Embedding(config.vocab_size, config.dim, rng)
        self.position_embedding = Embedding(config.max_position, config.dim, rng)
        if self.uses_row_embeddings:
            self.row_embedding = Embedding(config.max_rows + 1, config.dim, rng)
        if self.uses_column_embeddings:
            self.column_embedding = Embedding(config.max_columns + 1, config.dim, rng)
        if self.uses_role_embeddings:
            self.role_embedding = Embedding(config.num_roles, config.dim, rng)
        if config.numeric_features:
            # Magnitude-aware channel: [is_number, sign, log1p|v|] → dim.
            # Addresses the numeric-cell failure mode of hands-on §3.4.
            from ..nn import Linear
            self.numeric_projection = Linear(3, config.dim, rng)
        self.embedding_norm = LayerNorm(config.dim)
        self.embedding_dropout = Dropout(config.dropout, rng)
        self.encoder = Encoder(
            dim=config.dim, num_heads=config.num_heads,
            hidden_dim=config.hidden_dim, num_layers=config.num_layers,
            rng=rng, dropout=config.dropout,
        )

    # ------------------------------------------------------------------
    # Input preparation
    # ------------------------------------------------------------------
    def prepare_table(self, table: Table, context: str | None) -> Table:
        """Hook for input filtering before serialization (default: none)."""
        return table

    def serialize(self, table: Table, context: str | None = None) -> SerializedTable:
        """Serialize one table with this model's serializer."""
        prepared = self.prepare_table(table, context)
        return self.serializer.serialize(prepared, context=context)

    def features(self, serialized: SerializedTable,
                 table: Table | None = None) -> TableFeatures:
        """Per-token input arrays clamped to this model's embedding ranges."""
        return encode_features(
            serialized,
            max_row_id=self.config.max_rows,
            max_column_id=self.config.max_columns,
            table=table,
        )

    def batch(self, tables: list[Table],
              contexts: list[str] | None = None
              ) -> tuple[BatchedFeatures, list[SerializedTable]]:
        """Serialize and collate a list of tables (+optional contexts)."""
        if contexts is None:
            contexts = [None] * len(tables)
        serialized = [self.serialize(t, c) for t, c in zip(tables, contexts)]
        features = [self.features(s, table=t) for s, t in zip(serialized, tables)]
        return pad_batch(features, pad_id=self.tokenizer.vocab.pad_id), serialized

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def attention_mask(self, batch: BatchedFeatures) -> np.ndarray:
        """Structural block mask; vanilla models only mask padding."""
        return dense_mask(batch)

    def structure_arrays(self, batch: BatchedFeatures) -> dict[str, np.ndarray]:
        """Every batch-derived array the forward pass consumes.

        Subclasses override this (extending ``super()``'s dict) instead of
        computing masks/biases inline in ``forward``, so the compiled
        path can bind them per replay — a structure array computed inside
        :meth:`_forward_impl` would be baked into the recorded program as
        a stale constant.
        """
        return {"mask": self.attention_mask(batch)}

    def embed(self, batch: BatchedFeatures,
              arrays: dict[str, np.ndarray] | None = None) -> Tensor:
        """Sum the enabled embedding channels and normalize."""
        total = self.token_embedding(batch.token_ids) \
            + self.position_embedding(batch.positions)
        if self.uses_row_embeddings:
            total = total + self.row_embedding(batch.row_ids)
        if self.uses_column_embeddings:
            total = total + self.column_embedding(batch.column_ids)
        if self.uses_role_embeddings:
            total = total + self.role_embedding(batch.roles)
        if self.config.numeric_features:
            total = total + self.numeric_projection(
                Tensor(batch.numeric_features))
        return self.embedding_dropout(self.embedding_norm(total))

    def _forward_impl(self, batch: BatchedFeatures,
                      arrays: dict[str, np.ndarray]) -> Tensor:
        """The actual op graph; consumes only ``batch`` + ``arrays``."""
        return self.encoder(self.embed(batch, arrays), mask=arrays["mask"])

    def forward(self, batch: BatchedFeatures,
                arrays: dict[str, np.ndarray] | None = None) -> Tensor:
        """Hidden states of shape ``(batch, seq, dim)``.

        Template method: computes :meth:`structure_arrays` when not
        supplied, then either replays a compiled program (no-grad
        forwards with :meth:`enable_compiled_inference` on) or runs the
        eager :meth:`_forward_impl`.
        """
        if arrays is None:
            arrays = self.structure_arrays(batch)
        if self._compiled_inference is not None and is_inference_mode():
            return self._compiled_inference.hidden(batch, arrays)
        return self._forward_impl(batch, arrays)

    def enable_compiled_inference(self, enabled: bool = True) -> None:
        """Toggle compiled tape-replay for no-grad forward passes.

        When enabled, every :meth:`forward` under
        :class:`~repro.nn.inference_mode` (``infer_hidden``, ``encode``,
        all task ``predict`` paths, the serve engine) records its op
        graph once per batch signature and replays it afterwards without
        building Tensors.  Numerics are bit-identical to eager mode.
        Disabling drops the compiled-program cache.
        """
        object.__setattr__(
            self, "_compiled_inference",
            _CompiledInference(self) if enabled else None)

    # ------------------------------------------------------------------
    # Inference API (Fig. 2a)
    # ------------------------------------------------------------------
    def set_encoding_cache(self, cache) -> None:
        """Attach (or detach with ``None``) a serve-layer encoding cache.

        Once attached, every :meth:`infer_hidden` call — and therefore
        every task ``predict`` path and :meth:`encode` — reuses hidden
        states for inputs it has already encoded under the current
        weights.
        """
        self.encoding_cache = cache

    def infer_hidden(
        self,
        tables: list[Table],
        contexts: list[str | None] | None = None,
        feature_hook: "Callable[[int, TableFeatures, SerializedTable], None] | None" = None,
    ) -> tuple[Tensor, list[SerializedTable]]:
        """Batched no-grad hidden states, served from the cache when attached.

        The inference twin of ``self(batch)``: serializes and featurizes
        each table, runs the transformer under
        :class:`~repro.nn.inference_mode` (no autograd tape), and returns
        a right-padded ``(batch, seq, dim)`` tensor plus the serialized
        tables for span lookup.  With an attached
        :class:`~repro.serve.EncodingCache`, previously seen inputs skip
        the encoder forward entirely.

        Parameters
        ----------
        feature_hook:
            Optional per-example mutation of the input features *before*
            hashing and the forward pass — e.g. the imputer masking the
            cell to fill.  Called as ``hook(index, features, serialized)``
            and expected to edit ``features`` in place, so the cache key
            reflects the mutated input.
        """
        if contexts is None:
            contexts = [None] * len(tables)
        if self.encoding_cache is None:
            serialized = [self.serialize(t, c)
                          for t, c in zip(tables, contexts)]
            features = [self.features(s, table=t)
                        for s, t in zip(serialized, tables)]
        else:
            # Repeated tables skip re-serialization too — on a cache-hit
            # workload, tokenization rivals the forward pass in cost.
            serialized, features = self.encoding_cache.features_for(
                self, tables, contexts)
        if feature_hook is not None:
            for i, (feats, ser) in enumerate(zip(features, serialized)):
                feature_hook(i, feats, ser)
        with self.inference():
            if self.encoding_cache is None:
                batch = pad_batch(features,
                                  pad_id=self.tokenizer.vocab.pad_id)
                data = self.forward(batch).data
                per_example = [data[i, : len(features[i])]
                               for i in range(len(features))]
            else:
                per_example = self.encoding_cache.hidden_for(self, features)
        seq_len = max(len(f) for f in features)
        hidden = np.zeros((len(features), seq_len, per_example[0].shape[-1]))
        for i, states in enumerate(per_example):
            hidden[i, : states.shape[0]] = states
        return Tensor(hidden), serialized

    def encode(self, table: Table, context: str | None = None) -> TableEncoding:
        """Encode one table into multi-granularity vectors (no gradients)."""
        hidden_batch, serialized_list = self.infer_hidden([table], [context])
        hidden = hidden_batch.data[0]
        serialized = serialized_list[0]

        cell_embeddings: dict[tuple[int, int], np.ndarray] = {}
        rows_acc: dict[int, list[np.ndarray]] = {}
        cols_acc: dict[int, list[np.ndarray]] = {}
        for (row, column), (start, end) in serialized.cell_spans.items():
            vector = _mean_span(hidden, start, end)
            if vector is None:
                continue
            cell_embeddings[(row, column)] = vector
            rows_acc.setdefault(row, []).append(vector)
            cols_acc.setdefault(column, []).append(vector)
        for column, (start, end) in serialized.header_spans.items():
            vector = _mean_span(hidden, start, end)
            if vector is not None:
                cols_acc.setdefault(column, []).append(vector)

        return TableEncoding(
            tokens=list(serialized.tokens),
            token_embeddings=hidden[: len(serialized)],
            table_embedding=hidden[0],  # [CLS]
            cell_embeddings=cell_embeddings,
            row_embeddings={r: np.mean(v, axis=0) for r, v in rows_acc.items()},
            column_embeddings={c: np.mean(v, axis=0) for c, v in cols_acc.items()},
            serialized=serialized,
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Summary used by the Fig. 2a comparison bench."""
        return {
            "model": self.model_name,
            "serializer": self.serializer.name,
            "parameters": self.num_parameters(),
            "dim": self.config.dim,
            "layers": self.config.num_layers,
            "row_embeddings": self.uses_row_embeddings,
            "column_embeddings": self.uses_column_embeddings,
            "role_embeddings": self.uses_role_embeddings,
        }
