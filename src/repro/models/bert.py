"""Vanilla BERT-style table encoder: linearize and pretend it's text.

The hands-on session's first exercise (§3.1) formats a table for plain
BERT "to illustrate basic design choices behind linearization": the model
sees only token and flat position embeddings — no row/column/role channels,
no structural attention.  Every structure-aware model is measured against
this baseline.
"""

from __future__ import annotations

from .base import TableEncoder

__all__ = ["TableBert"]


class TableBert(TableEncoder):
    """Linearize-and-encode baseline (token + flat position embeddings)."""

    model_name = "bert"
    uses_row_embeddings = False
    uses_column_embeddings = False
    uses_role_embeddings = False
