"""Shared model hyperparameter configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["EncoderConfig"]


@dataclass(frozen=True)
class EncoderConfig:
    """Hyperparameters of a table encoder.

    Defaults are deliberately tiny ("laptop scale", the tutorial's setting):
    training any model in the zoo takes seconds on CPU.
    """

    vocab_size: int
    dim: int = 48
    num_heads: int = 4
    num_layers: int = 2
    hidden_dim: int = 96
    max_position: int = 256
    max_rows: int = 24
    max_columns: int = 12
    num_roles: int = 4
    dropout: float = 0.0
    num_entities: int = 0       # >0 enables the TURL entity vocabulary
    decoder_layers: int = 2     # used by encoder-decoder models (TAPEX)
    numeric_features: bool = False  # add magnitude-aware numeric channel

    def __post_init__(self) -> None:
        if self.vocab_size < 1:
            raise ValueError("vocab_size must be positive")
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EncoderConfig":
        return cls(**payload)
