"""Task heads attached on top of table encoders.

The survey groups output-level customizations as "addition of CLS layers"
and task-specific heads; these are those heads:

- :class:`MlmHead` — masked-token prediction over the word vocabulary
  (weight-tied to the token embedding, as in BERT);
- :class:`EntityRecoveryHead` — TURL's masked entity recovery over the
  entity vocabulary (weight-tied to the entity embedding);
- :class:`ClassificationHead` — pooled-sequence classification (NLI,
  aggregation selection);
- :class:`CellSelectionHead` — per-token scoring pooled into per-cell
  scores (TAPAS cell selection).
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor

__all__ = ["MlmHead", "EntityRecoveryHead", "ClassificationHead", "CellSelectionHead"]


class MlmHead(Module):
    """Transform + tied-embedding projection to vocabulary logits."""

    def __init__(self, dim: int, token_embedding_weight: Parameter,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.transform = Linear(dim, dim, rng)
        self.tied_weight = token_embedding_weight  # registered on the encoder
        self.bias = Parameter(np.zeros(token_embedding_weight.shape[0]))

    def forward(self, hidden: Tensor) -> Tensor:
        """Vocabulary logits of shape ``(..., vocab_size)``."""
        transformed = self.transform(hidden).gelu()
        return transformed @ self.tied_weight.T + self.bias


class EntityRecoveryHead(Module):
    """Score the entity vocabulary for masked entity cells (TURL MER)."""

    def __init__(self, dim: int, entity_embedding_weight: Parameter,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.transform = Linear(dim, dim, rng)
        self.tied_weight = entity_embedding_weight
        self.bias = Parameter(np.zeros(entity_embedding_weight.shape[0]))

    def forward(self, hidden: Tensor) -> Tensor:
        """Entity logits of shape ``(..., num_entities)``."""
        transformed = self.transform(hidden).gelu()
        return transformed @ self.tied_weight.T + self.bias


class ClassificationHead(Module):
    """Two-layer classifier over a pooled representation."""

    def __init__(self, dim: int, num_classes: int, rng: np.random.Generator,
                 hidden_dim: int | None = None) -> None:
        super().__init__()
        hidden_dim = hidden_dim or dim
        self.hidden = Linear(dim, hidden_dim, rng)
        self.output = Linear(hidden_dim, num_classes, rng)

    def forward(self, pooled: Tensor) -> Tensor:
        return self.output(self.hidden(pooled).tanh())


class CellSelectionHead(Module):
    """Per-token scores aggregated to per-cell selection logits.

    TAPAS scores every token and averages within each cell span; the cell
    with the highest score is the predicted answer cell.
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.scorer = Linear(dim, 1, rng)

    def token_scores(self, hidden: Tensor) -> Tensor:
        """Raw per-token logits of shape ``(batch, seq)``."""
        batch, seq, _ = hidden.shape
        return self.scorer(hidden).reshape(batch, seq)

    def cell_scores(self, hidden: Tensor,
                    cell_spans: dict[tuple[int, int], tuple[int, int]],
                    batch_index: int = 0) -> dict[tuple[int, int], Tensor]:
        """Mean token score per cell, as differentiable scalars."""
        scores = self.token_scores(hidden)
        out: dict[tuple[int, int], Tensor] = {}
        for coord, (start, end) in cell_spans.items():
            if end <= start:
                continue
            out[coord] = scores[batch_index, start:end].mean()
        return out
