"""MATE-style encoder: sparse multi-view attention heads.

Eisenschlos et al. [15] "employ sparse attention to efficiently attend to
rows and columns": attention heads are split into *row heads* (each token
attends within its row) and *column heads* (within its column), both with
global access to the utterance.  Sparsity cuts the attended pair count from
O(T²) per head to roughly O(T·max(rows, cols)) — the efficiency argument
benchmarked in E8 via :func:`repro.models.structure.attention_flops_proxy`.
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from .structure import mate_head_masks
from ..serialize import BatchedFeatures, Serializer
from ..text import WordPieceTokenizer

__all__ = ["Mate"]


class Mate(TableEncoder):
    """Sparse attention encoder with row heads and column heads."""

    model_name = "mate"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None,
                 row_head_fraction: float = 0.5) -> None:
        if not 0.0 <= row_head_fraction <= 1.0:
            raise ValueError("row_head_fraction must be in [0, 1]")
        super().__init__(config, tokenizer, rng, serializer=serializer)
        self.row_head_fraction = row_head_fraction

    def attention_mask(self, batch: BatchedFeatures) -> np.ndarray:
        return mate_head_masks(batch, self.config.num_heads,
                               row_head_fraction=self.row_head_fraction)
