"""Structural attention masks — where the surveyed models differ most.

The survey's central observation (Section 2.3) is that table transformers
customize *which positions may attend to which*.  Each builder here turns a
batch's (row, column, role) coordinates into a boolean block mask
broadcastable to ``(batch, heads, seq, seq)`` with ``True`` = blocked:

- :func:`dense_mask` — vanilla BERT full attention (padding only);
- :func:`visibility_mask` — TURL's visibility matrix: a cell attends to its
  own row, its own column, headers and context; context attends everywhere;
- :func:`vertical_mask` — TaBERT-style vertical self-attention: cell tokens
  attend within their own column (headers included), context is global;
- :func:`mate_head_masks` — MATE's sparse heads: row heads attend within a
  row, column heads within a column, both plus context/specials.
"""

from __future__ import annotations

import numpy as np

from ..serialize import BatchedFeatures, TokenRole

__all__ = [
    "dense_mask",
    "visibility_mask",
    "vertical_mask",
    "horizontal_mask",
    "mate_head_masks",
    "tree_distance_bias",
    "attention_flops_proxy",
]


def _base_arrays(batch: BatchedFeatures) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    valid = batch.token_validity()          # (B, T)
    rows = batch.row_ids                    # (B, T)
    cols = batch.column_ids                 # (B, T)
    roles = batch.roles                     # (B, T)
    return valid, rows, cols, roles


def _finalize(allowed: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Combine an allowed matrix with padding validity; return block mask."""
    allowed = allowed & valid[:, np.newaxis, :] & valid[:, :, np.newaxis]
    # Never fully block a query row: let every token see itself so softmax
    # stays well-conditioned even for padding queries.
    eye = np.eye(allowed.shape[-1], dtype=bool)[np.newaxis]
    allowed = allowed | eye
    return ~allowed[:, np.newaxis, :, :]


def dense_mask(batch: BatchedFeatures) -> np.ndarray:
    """Full attention; only padded keys are blocked."""
    valid, _, _, _ = _base_arrays(batch)
    allowed = np.ones((batch.batch_size, batch.seq_len, batch.seq_len), dtype=bool)
    return _finalize(allowed, valid)


def _is_global(roles: np.ndarray) -> np.ndarray:
    """Context and special tokens participate in attention globally."""
    return (roles == TokenRole.CONTEXT) | (roles == TokenRole.SPECIAL)


def visibility_mask(batch: BatchedFeatures) -> np.ndarray:
    """TURL visibility matrix (Deng et al. 2020, adapted to subwords).

    Rules, applied symmetrically between a query q and key k:
    - if either token is context/special, they see each other;
    - header tokens see all header tokens and cells of their column;
    - cell tokens see their own row and their own column.
    """
    valid, rows, cols, roles = _base_arrays(batch)
    q_rows, k_rows = rows[:, :, np.newaxis], rows[:, np.newaxis, :]
    q_cols, k_cols = cols[:, :, np.newaxis], cols[:, np.newaxis, :]
    q_roles, k_roles = roles[:, :, np.newaxis], roles[:, np.newaxis, :]

    global_pair = _is_global(q_roles) | _is_global(k_roles)
    same_row = (q_rows == k_rows) & (q_rows > 0)
    same_col = (q_cols == k_cols) & (q_cols > 0)
    header_pair = (q_roles == TokenRole.HEADER) & (k_roles == TokenRole.HEADER)

    allowed = global_pair | same_row | same_col | header_pair
    return _finalize(allowed, valid)


def vertical_mask(batch: BatchedFeatures) -> np.ndarray:
    """TaBERT vertical self-attention: within-column plus global context."""
    valid, rows, cols, roles = _base_arrays(batch)
    q_cols, k_cols = cols[:, :, np.newaxis], cols[:, np.newaxis, :]
    q_roles, k_roles = roles[:, :, np.newaxis], roles[:, np.newaxis, :]

    global_pair = _is_global(q_roles) | _is_global(k_roles)
    same_col = (q_cols == k_cols) & (q_cols > 0)
    allowed = global_pair | same_col
    return _finalize(allowed, valid)


def horizontal_mask(batch: BatchedFeatures) -> np.ndarray:
    """TABBIE-style row attention: within-row plus global context."""
    valid, rows, cols, roles = _base_arrays(batch)
    q_rows, k_rows = rows[:, :, np.newaxis], rows[:, np.newaxis, :]
    q_roles, k_roles = roles[:, :, np.newaxis], roles[:, np.newaxis, :]

    global_pair = _is_global(q_roles) | _is_global(k_roles)
    same_row = (q_rows == k_rows) & (q_rows > 0)
    header_pair = (q_roles == TokenRole.HEADER) | (k_roles == TokenRole.HEADER)
    allowed = global_pair | same_row | header_pair
    return _finalize(allowed, valid)


def tree_distance_bias(batch: BatchedFeatures, strength: float = 1.0
                       ) -> np.ndarray:
    """TUTA-style tree-distance attention bias (additive, not a block mask).

    On a flat relational table the bi-dimensional coordinate tree reduces
    to two levels, giving distance 0 within a cell, 1 for same row OR same
    column, 2 otherwise; context/special tokens sit at the root (distance
    1 to everything).  Returns ``-strength * distance`` broadcastable to
    ``(batch, 1, seq, seq)``.
    """
    if strength < 0:
        raise ValueError("strength must be non-negative")
    _, rows, cols, roles = _base_arrays(batch)
    q_rows, k_rows = rows[:, :, np.newaxis], rows[:, np.newaxis, :]
    q_cols, k_cols = cols[:, :, np.newaxis], cols[:, np.newaxis, :]
    q_roles, k_roles = roles[:, :, np.newaxis], roles[:, np.newaxis, :]

    same_cell = (q_rows == k_rows) & (q_cols == k_cols) & \
        ((q_rows > 0) | (q_cols > 0))
    related = ((q_rows == k_rows) & (q_rows > 0)) | \
        ((q_cols == k_cols) & (q_cols > 0))
    root = _is_global(q_roles) | _is_global(k_roles)

    distance = np.full(related.shape, 2.0)
    distance[related] = 1.0
    distance[root] = 1.0
    distance[same_cell] = 0.0
    return (-strength * distance)[:, np.newaxis, :, :]


def mate_head_masks(batch: BatchedFeatures, num_heads: int,
                    row_head_fraction: float = 0.5) -> np.ndarray:
    """MATE sparse attention: per-head row- or column-restricted masks.

    The first ``round(num_heads * row_head_fraction)`` heads see within-row
    neighbourhoods, the rest within-column; all heads additionally see
    context and special tokens.  Returns ``(batch, heads, seq, seq)``.
    """
    if num_heads < 1:
        raise ValueError("num_heads must be positive")
    valid, rows, cols, roles = _base_arrays(batch)
    q_rows, k_rows = rows[:, :, np.newaxis], rows[:, np.newaxis, :]
    q_cols, k_cols = cols[:, :, np.newaxis], cols[:, np.newaxis, :]
    q_roles, k_roles = roles[:, :, np.newaxis], roles[:, np.newaxis, :]

    global_pair = _is_global(q_roles) | _is_global(k_roles)
    header_key = k_roles == TokenRole.HEADER
    row_allowed = global_pair | header_key | ((q_rows == k_rows) & (q_rows > 0))
    col_allowed = global_pair | ((q_cols == k_cols) & (q_cols > 0))

    num_row_heads = int(round(num_heads * row_head_fraction))
    blocks = []
    for head in range(num_heads):
        allowed = row_allowed if head < num_row_heads else col_allowed
        blocks.append(_finalize(allowed, valid)[:, 0])
    return np.stack(blocks, axis=1)


def attention_flops_proxy(mask: np.ndarray) -> int:
    """Number of attended (query, key) pairs — the sparse-efficiency metric.

    For a dense mask this is ``heads * seq^2`` per batch element; sparse
    masks score lower, which is MATE's efficiency argument (E8).
    """
    mask = np.asarray(mask, dtype=bool)
    while mask.ndim < 4:
        mask = mask[np.newaxis]
    batch, heads, q_len, k_len = mask.shape
    if heads == 1:
        # Broadcast-head masks count once per head only if caller expands;
        # report per provided array.
        pass
    return int((~mask).sum())
