"""TABBIE-style encoder: parallel row and column transformers.

Iida et al. [21] encode a table twice — one transformer sees each row as a
sequence, one sees each column — and represent every cell as the average
of its row-wise and column-wise embeddings.  Here the two views share the
embedding layer but run separate stacks under row-restricted and
column-restricted attention masks; outputs are averaged.
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from .structure import horizontal_mask, vertical_mask
from ..nn import Encoder, Tensor
from ..serialize import BatchedFeatures, Serializer
from ..text import WordPieceTokenizer

__all__ = ["Tabbie"]


class Tabbie(TableEncoder):
    """Dual-view encoder: row-attention stack ∥ column-attention stack."""

    model_name = "tabbie"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None) -> None:
        super().__init__(config, tokenizer, rng, serializer=serializer)
        # The base ``self.encoder`` becomes the row-view stack; add the
        # column-view twin.
        self.column_encoder = Encoder(
            dim=config.dim, num_heads=config.num_heads,
            hidden_dim=config.hidden_dim, num_layers=config.num_layers,
            rng=rng, dropout=config.dropout,
        )

    def structure_arrays(self, batch: BatchedFeatures) -> dict[str, np.ndarray]:
        return {"row_mask": horizontal_mask(batch),
                "column_mask": vertical_mask(batch)}

    def _forward_impl(self, batch: BatchedFeatures,
                      arrays: dict[str, np.ndarray]) -> Tensor:
        embedded = self.embed(batch, arrays)
        row_view = self.encoder(embedded, mask=arrays["row_mask"])
        column_view = self.column_encoder(embedded,
                                          mask=arrays["column_mask"])
        return (row_view + column_view) * 0.5
