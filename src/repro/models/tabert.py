"""TaBERT-style encoder: content snapshot + vertical self-attention.

Yin et al. [41] contribute two mechanisms, both reproduced here:

1. a *content snapshot* — before serialization, keep only the rows most
   relevant to the utterance (token-overlap heuristic), implemented by
   :func:`repro.tables.select_relevant_rows`;
2. *vertical self-attention layers* — extra layers after the base stack in
   which cell tokens attend only within their own column, letting
   information flow vertically across rows.
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from .structure import vertical_mask
from ..nn import Encoder, Tensor
from ..serialize import BatchedFeatures, Serializer
from ..tables import Table, select_relevant_rows
from ..text import WordPieceTokenizer

__all__ = ["TaBert"]


class TaBert(TableEncoder):
    """Content-snapshot encoder with trailing vertical attention layers."""

    model_name = "tabert"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None,
                 snapshot_rows: int = 3,
                 vertical_layers: int = 1) -> None:
        super().__init__(config, tokenizer, rng, serializer=serializer)
        if snapshot_rows < 1:
            raise ValueError("snapshot_rows must be positive")
        self.snapshot_rows = snapshot_rows
        self.vertical_encoder = Encoder(
            dim=config.dim, num_heads=config.num_heads,
            hidden_dim=config.hidden_dim, num_layers=vertical_layers,
            rng=rng, dropout=config.dropout,
        )

    def prepare_table(self, table: Table, context: str | None) -> Table:
        """Content snapshot: keep the rows most relevant to the context."""
        query = context if context is not None else table.context.text()
        if not query:
            # No utterance: fall back to a prefix snapshot.
            if table.num_rows <= self.snapshot_rows:
                return table
            return table.subtable(row_indices=range(self.snapshot_rows))
        return select_relevant_rows(table, query, max_rows=self.snapshot_rows)

    def structure_arrays(self, batch: BatchedFeatures) -> dict[str, np.ndarray]:
        arrays = super().structure_arrays(batch)
        arrays["vertical_mask"] = vertical_mask(batch)
        return arrays

    def _forward_impl(self, batch: BatchedFeatures,
                      arrays: dict[str, np.ndarray]) -> Tensor:
        hidden = self.encoder(self.embed(batch, arrays),
                              mask=arrays["mask"])
        return self.vertical_encoder(hidden, mask=arrays["vertical_mask"])
