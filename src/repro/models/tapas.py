"""TAPAS-style encoder: structure-aware embeddings + cell selection.

Herzig et al. [19] "add extra dimensions to the embedding vector to account
for cell, row, and column positions": here those are additive row, column
and role (segment) embedding channels.  The model carries TAPAS's two heads:
cell selection (which cells answer the question) and aggregation selection
(NONE/COUNT/SUM/AVG over the selected cells).
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from .heads import CellSelectionHead, ClassificationHead
from ..nn import Tensor
from ..serialize import BatchedFeatures, Serializer
from ..text import WordPieceTokenizer

__all__ = ["Tapas", "AGGREGATION_OPS"]

AGGREGATION_OPS = ("none", "count", "sum", "avg")


class Tapas(TableEncoder):
    """Row/column/role-aware encoder with cell-selection + aggregation heads."""

    model_name = "tapas"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None) -> None:
        super().__init__(config, tokenizer, rng, serializer=serializer)
        self.cell_selection = CellSelectionHead(config.dim, rng)
        self.aggregation = ClassificationHead(config.dim, len(AGGREGATION_OPS), rng)

    def question_answer_scores(self, batch: BatchedFeatures) -> tuple[Tensor, Tensor]:
        """Per-token selection logits and aggregation logits.

        Returns ``(token_scores (B, T), aggregation_logits (B, ops))``.
        """
        hidden = self.forward(batch)
        token_scores = self.cell_selection.token_scores(hidden)
        aggregation_logits = self.aggregation(hidden[:, 0])
        return token_scores, aggregation_logits
