"""TAPEX-style model: table pre-training via learning a neural SQL executor.

Liu et al. [27] pretrain an encoder-decoder on (SQL query, table) →
denotation pairs produced by a *symbolic* executor, so the network itself
becomes an approximate executor.  Here the encoder is a structure-aware
table encoder that reads ``query [SEP] table`` and the decoder generates
the denotation text autoregressively.  E12 measures its denotation accuracy
against the symbolic executor in :mod:`repro.sql`.
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from ..nn import (
    Decoder,
    Embedding,
    Linear,
    Module,
    Tensor,
    cross_entropy,
    no_grad,
)
from ..serialize import BatchedFeatures, Serializer
from ..tables import Table
from ..text import WordPieceTokenizer

__all__ = ["Tapex"]


class _TapexEncoder(TableEncoder):
    """Structure-aware encoder half of TAPEX."""

    model_name = "tapex-encoder"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True


class Tapex(Module):
    """Encoder-decoder that learns to execute queries over tables."""

    model_name = "tapex"

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None,
                 max_answer_tokens: int = 16) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer
        self.max_answer_tokens = max_answer_tokens
        self.encoder = _TapexEncoder(config, tokenizer, rng, serializer=serializer)
        self.decoder = Decoder(
            dim=config.dim, num_heads=config.num_heads,
            hidden_dim=config.hidden_dim, num_layers=config.decoder_layers,
            rng=rng, dropout=config.dropout,
        )
        self.target_position_embedding = Embedding(max_answer_tokens + 1,
                                                   config.dim, rng)
        self.output_projection = Linear(config.dim, config.vocab_size, rng)

    # ------------------------------------------------------------------
    # Target-side preparation
    # ------------------------------------------------------------------
    def encode_answer(self, answer: str) -> list[int]:
        """Token ids ``answer [EOS]``, truncated to the answer budget."""
        vocab = self.tokenizer.vocab
        ids = self.tokenizer.encode(answer)[: self.max_answer_tokens - 1]
        return ids + [vocab.eos_id]

    def collate_answers(self, answers: list[str]) -> tuple[np.ndarray, np.ndarray]:
        """Right-padded ``(decoder_inputs, targets)`` arrays.

        Decoder inputs are ``[BOS] answer``; targets are ``answer [EOS]``
        with pad positions set to -100 (ignored by the loss).
        """
        vocab = self.tokenizer.vocab
        encoded = [self.encode_answer(a) for a in answers]
        width = max(len(e) for e in encoded)
        inputs = np.full((len(encoded), width), vocab.pad_id, dtype=np.int64)
        targets = np.full((len(encoded), width), -100, dtype=np.int64)
        for i, ids in enumerate(encoded):
            inputs[i, : len(ids)] = [vocab.bos_id] + ids[:-1]
            targets[i, : len(ids)] = ids
        return inputs, targets

    # ------------------------------------------------------------------
    # Forward / loss
    # ------------------------------------------------------------------
    def _decode_hidden(self, memory: Tensor, batch: BatchedFeatures,
                       decoder_inputs: np.ndarray) -> Tensor:
        positions = np.minimum(np.arange(decoder_inputs.shape[1]),
                               self.max_answer_tokens)
        target = self.encoder.token_embedding(decoder_inputs) \
            + self.target_position_embedding(
                np.broadcast_to(positions, decoder_inputs.shape))
        return self.decoder(target, memory, memory_mask=batch.key_padding_mask())

    def forward(self, batch: BatchedFeatures, decoder_inputs: np.ndarray) -> Tensor:
        """Teacher-forced logits of shape ``(B, T_dec, vocab)``."""
        memory = self.encoder(batch)
        hidden = self._decode_hidden(memory, batch, decoder_inputs)
        return self.output_projection(hidden)

    def loss(self, tables: list[Table], queries: list[str],
             answers: list[str]) -> Tensor:
        """Cross-entropy of gold denotations given (query, table) inputs."""
        batch, _ = self.encoder.batch(tables, queries)
        decoder_inputs, targets = self.collate_answers(answers)
        logits = self.forward(batch, decoder_inputs)
        return cross_entropy(logits, targets, ignore_index=-100)

    # ------------------------------------------------------------------
    # Greedy decoding
    # ------------------------------------------------------------------
    def generate(self, table: Table, query: str) -> str:
        """Greedy-decode the denotation text for one (query, table) pair."""
        vocab = self.tokenizer.vocab
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                batch, _ = self.encoder.batch([table], [query])
                memory = self.encoder(batch)
                generated = [vocab.bos_id]
                for _ in range(self.max_answer_tokens):
                    inputs = np.array([generated], dtype=np.int64)
                    hidden = self._decode_hidden(memory, batch, inputs)
                    logits = self.output_projection(hidden[:, -1])
                    next_id = int(logits.data[0].argmax())
                    if next_id == vocab.eos_id:
                        break
                    generated.append(next_id)
        finally:
            if was_training:
                self.train()
        return self.tokenizer.decode(generated[1:])

    def generate_beam(self, table: Table, query: str,
                      beam_width: int = 3) -> list[tuple[str, float]]:
        """Beam-search decode; returns ``(text, log_prob)`` best-first.

        Greedy decoding (:meth:`generate`) commits to early mistakes; a
        small beam recovers denotations whose first token is uncertain.
        """
        if beam_width < 1:
            raise ValueError("beam_width must be positive")
        vocab = self.tokenizer.vocab
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                batch, _ = self.encoder.batch([table], [query])
                memory = self.encoder(batch)
                # Each beam: (token ids incl. BOS, log prob, finished).
                beams: list[tuple[list[int], float, bool]] = [
                    ([vocab.bos_id], 0.0, False)]
                for _ in range(self.max_answer_tokens):
                    candidates: list[tuple[list[int], float, bool]] = []
                    for ids, score, finished in beams:
                        if finished:
                            candidates.append((ids, score, True))
                            continue
                        inputs = np.array([ids], dtype=np.int64)
                        hidden = self._decode_hidden(memory, batch, inputs)
                        logits = self.output_projection(hidden[:, -1])
                        log_probs = logits.log_softmax(axis=-1).data[0]
                        top = np.argsort(-log_probs)[:beam_width]
                        for token_id in top:
                            token_id = int(token_id)
                            candidates.append((
                                ids + [token_id],
                                score + float(log_probs[token_id]),
                                token_id == vocab.eos_id,
                            ))
                    candidates.sort(key=lambda item: -item[1])
                    beams = candidates[:beam_width]
                    if all(finished for _, _, finished in beams):
                        break
        finally:
            if was_training:
                self.train()
        results = []
        for ids, score, _ in beams:
            body = [i for i in ids[1:] if i != vocab.eos_id]
            results.append((self.tokenizer.decode(body), score))
        return results

    def num_parameters(self) -> int:
        return super().num_parameters()
