"""TURL-style encoder: entity channel, visibility matrix, MLM + MER heads.

Deng et al. [11] represent entity cells with dedicated entity embeddings,
restrict attention with a *visibility matrix* (a cell attends to its row,
its column, headers and the table context), and pretrain with two
objectives the hands-on session (§3.3) walks through: masked language
modeling over text tokens and masked entity recovery (MER) over the entity
vocabulary.
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from .heads import EntityRecoveryHead, MlmHead
from .structure import visibility_mask
from ..nn import Embedding, Tensor
from ..serialize import BatchedFeatures, Serializer
from ..text import WordPieceTokenizer

__all__ = ["Turl"]


class Turl(TableEncoder):
    """Entity-aware encoder with TURL's visibility matrix and dual heads."""

    model_name = "turl"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None) -> None:
        if config.num_entities < 1:
            raise ValueError("TURL requires config.num_entities > 0 "
                             "(the entity vocabulary size)")
        super().__init__(config, tokenizer, rng, serializer=serializer)
        # Slot 0 is the no-entity slot; KB ids are stored offset by one.
        self.entity_embedding = Embedding(config.num_entities + 1, config.dim, rng)
        self.mlm_head = MlmHead(config.dim, self.token_embedding.weight, rng)
        self.mer_head = EntityRecoveryHead(config.dim, self.entity_embedding.weight, rng)

    def attention_mask(self, batch: BatchedFeatures) -> np.ndarray:
        return visibility_mask(batch)

    def structure_arrays(self, batch: BatchedFeatures) -> dict[str, np.ndarray]:
        arrays = super().structure_arrays(batch)
        # Clamp KB ids into the embedding range *here* rather than in
        # embed: the clamped array is batch-dependent and must be bound
        # per replay, not baked into a recorded program.
        arrays["entity_slots"] = np.minimum(batch.entity_ids,
                                            self.config.num_entities)
        return arrays

    def embed(self, batch: BatchedFeatures,
              arrays: dict[str, np.ndarray] | None = None) -> Tensor:
        """Standard channels plus the entity embedding for linked cells."""
        slots = (arrays or {}).get("entity_slots")
        if slots is None:
            slots = np.minimum(batch.entity_ids, self.config.num_entities)
        total = self.token_embedding(batch.token_ids) \
            + self.position_embedding(batch.positions) \
            + self.row_embedding(batch.row_ids) \
            + self.column_embedding(batch.column_ids) \
            + self.role_embedding(batch.roles) \
            + self.entity_embedding(slots)
        if self.config.numeric_features:
            total = total + self.numeric_projection(Tensor(batch.numeric_features))
        return self.embedding_dropout(self.embedding_norm(total))

    def mlm_logits(self, batch: BatchedFeatures) -> Tensor:
        """Vocabulary logits at every position, ``(B, T, vocab)``."""
        return self.mlm_head(self.forward(batch))

    def mer_logits(self, batch: BatchedFeatures) -> Tensor:
        """Entity logits at every position, ``(B, T, num_entities + 1)``."""
        return self.mer_head(self.forward(batch))

    def pretraining_logits(self, batch: BatchedFeatures) -> tuple[Tensor, Tensor]:
        """One shared forward pass feeding both pretraining heads."""
        hidden = self.forward(batch)
        return self.mlm_head(hidden), self.mer_head(hidden)
