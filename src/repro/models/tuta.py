"""TUTA-style encoder: bi-dimensional coordinate tree attention.

Wang et al. [39] position cells on a bi-dimensional coordinate tree and
bias attention by tree distance, so structurally close cells interact more
strongly without hard masking.  On flat relational tables the tree reduces
to two levels (rows × columns); the bias is ``-strength · distance`` with
distance 0 within a cell, 1 along a shared row/column or through the root
(context), and 2 otherwise — see
:func:`repro.models.structure.tree_distance_bias`.
"""

from __future__ import annotations

import numpy as np

from .base import TableEncoder
from .config import EncoderConfig
from .structure import dense_mask, tree_distance_bias
from ..nn import Tensor
from ..serialize import BatchedFeatures, Serializer
from ..text import WordPieceTokenizer

__all__ = ["Tuta"]


class Tuta(TableEncoder):
    """Soft structure awareness through tree-distance attention biases."""

    model_name = "tuta"
    uses_row_embeddings = True
    uses_column_embeddings = True
    uses_role_embeddings = True

    def __init__(self, config: EncoderConfig, tokenizer: WordPieceTokenizer,
                 rng: np.random.Generator,
                 serializer: Serializer | None = None,
                 distance_strength: float = 1.0) -> None:
        if distance_strength < 0:
            raise ValueError("distance_strength must be non-negative")
        super().__init__(config, tokenizer, rng, serializer=serializer)
        self.distance_strength = distance_strength

    def structure_arrays(self, batch: BatchedFeatures) -> dict[str, np.ndarray]:
        return {"mask": dense_mask(batch),
                "bias": tree_distance_bias(batch,
                                           strength=self.distance_strength)}

    def _forward_impl(self, batch: BatchedFeatures,
                      arrays: dict[str, np.ndarray]) -> Tensor:
        return self.encoder(self.embed(batch, arrays), mask=arrays["mask"],
                            bias=arrays["bias"])
