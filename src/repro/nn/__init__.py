"""Neural network substrate: autograd, layers, transformers, optimizers.

This package replaces the paper's PyTorch/HuggingFace dependency with a
self-contained, gradient-checked numpy implementation (see DESIGN.md,
substitution table).
"""

from .attention import MultiHeadAttention, causal_mask, padding_mask
from .functional import (
    binary_cross_entropy_with_logits,
    cosine_similarity,
    cross_entropy,
    in_batch_contrastive_loss,
    mse_loss,
)
from .io import (
    CheckpointError,
    latest_valid_checkpoint,
    load_checkpoint,
    read_npz_verified,
    save_checkpoint,
    verify_checkpoint,
    write_npz_atomic,
)
from .layers import Dropout, Embedding, LayerNorm, Linear
from .module import InitMetadata, Module, ModuleList, Parameter
from .optim import (
    SGD,
    Adam,
    ConstantSchedule,
    CosineSchedule,
    LinearWarmupSchedule,
    clip_gradients,
)
from .tensor import (
    Tensor,
    get_tape_hook,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    set_tape_hook,
)
from .transformer import Decoder, DecoderLayer, Encoder, EncoderLayer, FeedForward

__all__ = [
    "Tensor", "no_grad", "inference_mode", "is_grad_enabled",
    "is_inference_mode", "set_tape_hook", "get_tape_hook",
    "Module", "ModuleList", "Parameter", "InitMetadata",
    "Linear", "Embedding", "LayerNorm", "Dropout",
    "MultiHeadAttention", "causal_mask", "padding_mask",
    "FeedForward", "EncoderLayer", "Encoder", "DecoderLayer", "Decoder",
    "SGD", "Adam", "clip_gradients",
    "ConstantSchedule", "LinearWarmupSchedule", "CosineSchedule",
    "cross_entropy", "binary_cross_entropy_with_logits", "mse_loss",
    "cosine_similarity", "in_batch_contrastive_loss",
    "save_checkpoint", "load_checkpoint", "CheckpointError",
    "write_npz_atomic", "read_npz_verified", "verify_checkpoint",
    "latest_valid_checkpoint",
]
