"""Neural network substrate: autograd, layers, transformers, optimizers.

This package replaces the paper's PyTorch/HuggingFace dependency with a
self-contained, gradient-checked numpy implementation (see DESIGN.md,
substitution table).

This ``__init__`` is the canonical public surface.  Three layers are
re-exported here and stable:

- the eager API (:class:`Tensor`, :class:`Module`, layers, optimizers);
- the backend protocol (:class:`Backend`, :class:`NumpyBackend`,
  :func:`get_backend` / :func:`set_backend`, ``DEFAULT_DTYPE``) — every
  op's forward/vjp pair lives in the backend registry, and both eager
  tensors and the compiled executor dispatch through it;
- the compile entry points (:func:`record_program`,
  :class:`TapeExecutor`, :class:`Program`, :class:`ProgramCache`,
  :func:`binding_signature`, :func:`plan_buffers`) — record one eager
  step, replay it without graph bookkeeping, bit-identically.

``Tensor._make`` and raw ``.data`` arithmetic are implementation details
of the backend seam; outside it they are deprecated (lint rule REPRO006).
"""

from .attention import MultiHeadAttention, causal_mask, padding_mask
from .backend import (
    DEFAULT_DTYPE,
    Backend,
    NumpyBackend,
    OpDef,
    get_backend,
    set_backend,
)
from .compile import (
    Program,
    ProgramCache,
    TapeExecutor,
    binding_signature,
    plan_buffers,
    record_program,
)
from .functional import (
    binary_cross_entropy_with_logits,
    cosine_similarity,
    cross_entropy,
    in_batch_contrastive_loss,
    mse_loss,
)
from .io import (
    CheckpointError,
    latest_valid_checkpoint,
    load_checkpoint,
    read_npz_verified,
    save_checkpoint,
    verify_checkpoint,
    write_npz_atomic,
)
from .layers import Dropout, Embedding, LayerNorm, Linear
from .module import InitMetadata, Module, ModuleList, Parameter
from .optim import (
    SGD,
    Adam,
    ConstantSchedule,
    CosineSchedule,
    LinearWarmupSchedule,
    clip_gradients,
)
from .tensor import (
    Tensor,
    get_recorder,
    get_tape_hook,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    set_recorder,
    set_tape_hook,
)
from .transformer import Decoder, DecoderLayer, Encoder, EncoderLayer, FeedForward

__all__ = [
    "Tensor", "no_grad", "inference_mode", "is_grad_enabled",
    "is_inference_mode", "set_tape_hook", "get_tape_hook",
    "set_recorder", "get_recorder",
    "Backend", "NumpyBackend", "OpDef", "get_backend", "set_backend",
    "DEFAULT_DTYPE",
    "record_program", "TapeExecutor", "Program", "ProgramCache",
    "binding_signature", "plan_buffers",
    "Module", "ModuleList", "Parameter", "InitMetadata",
    "Linear", "Embedding", "LayerNorm", "Dropout",
    "MultiHeadAttention", "causal_mask", "padding_mask",
    "FeedForward", "EncoderLayer", "Encoder", "DecoderLayer", "Decoder",
    "SGD", "Adam", "clip_gradients",
    "ConstantSchedule", "LinearWarmupSchedule", "CosineSchedule",
    "cross_entropy", "binary_cross_entropy_with_logits", "mse_loss",
    "cosine_similarity", "in_batch_contrastive_loss",
    "save_checkpoint", "load_checkpoint", "CheckpointError",
    "write_npz_atomic", "read_npz_verified", "verify_checkpoint",
    "latest_valid_checkpoint",
]
