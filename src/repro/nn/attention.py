"""Multi-head attention with pluggable structural masks.

The surveyed table transformers differ mostly in *which positions may attend
to which*:

- vanilla BERT: full bidirectional attention;
- TURL: a visibility matrix restricting cells to their own row/column plus
  the textual context;
- MATE: sparse attention where some heads see only their row and the others
  only their column.

All variants are expressed here through a boolean *block mask* — an array
broadcastable to ``(batch, heads, query, key)`` where ``True`` means "may
NOT attend".  Masked scores get a large negative constant before softmax.
"""

from __future__ import annotations

import math

import numpy as np

from .backend import DEFAULT_DTYPE
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "NEG_INF"]

NEG_INF = -1e9


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention.

    Supports self-attention (``forward(x)``) and cross-attention
    (``forward(x, memory=encoder_states)``) for the TAPEX-style decoder.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.output = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng)
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)

    def forward(
        self,
        x: Tensor,
        memory: Tensor | None = None,
        mask: np.ndarray | None = None,
        bias: np.ndarray | None = None,
    ) -> Tensor:
        """Attend from ``x`` to ``memory`` (defaults to ``x``).

        Parameters
        ----------
        mask:
            Boolean array broadcastable to ``(batch, heads, q_len, k_len)``;
            ``True`` blocks attention.
        bias:
            Additive score bias broadcastable to the same shape (TUTA-style
            tree-distance biases); applied before masking.
        """
        source = memory if memory is not None else x
        q = self._split_heads(self.query(x))
        k = self._split_heads(self.key(source))
        v = self._split_heads(self.value(source))

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        if bias is not None:
            scores = scores + Tensor(np.asarray(bias, dtype=DEFAULT_DTYPE))
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            while mask.ndim < 4:
                mask = mask[np.newaxis]
            scores = scores.masked_fill(mask, NEG_INF)
        weights = scores.softmax(axis=-1)
        self.last_attention = weights.data
        weights = self.dropout(weights)
        context = weights @ v
        return self.output(self._merge_heads(context))


def causal_mask(seq_len: int) -> np.ndarray:
    """Upper-triangular block mask for autoregressive decoding."""
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)


def padding_mask(lengths: np.ndarray, seq_len: int) -> np.ndarray:
    """Block mask hiding padded key positions.

    Parameters
    ----------
    lengths:
        1-D array of valid lengths per batch element.
    seq_len:
        Padded sequence length.

    Returns
    -------
    Boolean array of shape ``(batch, 1, 1, seq_len)``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    positions = np.arange(seq_len)
    blocked = positions[np.newaxis, :] >= lengths[:, np.newaxis]
    return blocked[:, np.newaxis, np.newaxis, :]


__all__ += ["causal_mask", "padding_mask"]
