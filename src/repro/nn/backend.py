"""The pluggable numeric backend behind every ``Tensor`` op.

This module is the seam between the autograd bookkeeping in
:mod:`repro.nn.tensor` and the arithmetic that actually runs.  Every
operation the library performs — eagerly through ``Tensor`` methods or
replayed through :class:`repro.nn.compile.TapeExecutor` — is expressed as
an :class:`OpDef`: a pure ``forward`` function producing the result array
plus a context tuple, and a pure ``vjp`` function mapping an output
gradient back onto the inputs.  Both directions receive the active
:class:`Backend`, so swapping numpy for a BLAS-threaded or array-API
implementation means registering a different op table — no caller
changes.

Bit-identity contract
---------------------
The forward/vjp pairs here reproduce, float-op for float-op, the inline
numpy the pre-backend ``Tensor`` closures executed.  The compiled
executor replays exactly these functions, which is what makes compiled
training byte-identical to eager training (see DESIGN.md, "Compiled
execution & backend seam").  The fused kernels (``bias_gelu``,
``masked_softmax``, ``layernorm``, ``cross_entropy``) run the same
elementary float sequence as the op chains they replace; their speedup
comes from eliminating per-op dispatch and node bookkeeping, never from
reassociating arithmetic.

``DEFAULT_DTYPE`` is the single source of truth for the library's
accumulation dtype; the tape sanitizer's dtype-creep check and the loss
functions both read it from here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "Backend",
    "NumpyBackend",
    "OpDef",
    "get_backend",
    "set_backend",
    "active_ops",
]

# The accumulation dtype of the whole library: parameters, gradients and
# loss arithmetic.  Integer/bool inputs are promoted to this on Tensor
# construction; the tape sanitizer flags anything that silently narrows.
DEFAULT_DTYPE = np.float64


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after a broadcast forward op.

    Broadcasting can prepend dimensions and stretch size-1 axes; the adjoint
    of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _canon(x: np.ndarray) -> np.ndarray:
    """Replicate ``zeros + x`` — the tape's per-node gradient-buffer write.

    Fused kernels collapse chains of tape nodes; at every interior node
    boundary the eager tape materialized ``grad = zeros_like(...) += x``,
    which canonicalizes ``-0.0`` to ``+0.0``.  Adding ``0.0`` performs the
    identical float op, keeping fused backward passes bitwise equal to
    their unfused counterparts.
    """
    return x + 0.0


@dataclass(frozen=True)
class OpDef:
    """One differentiable operation: a forward kernel and its VJP.

    ``forward(backend, datas, params) -> (out, ctx)`` consumes raw input
    arrays (no Tensor objects) and returns the result plus whatever the
    backward pass needs.  ``vjp(backend, grad, ctx, needs) -> grads``
    returns one gradient per input (``None`` where ``needs`` is False).

    ``accumulating`` marks fused kernels whose backward must interleave
    several contributions into one input buffer in tape order; their vjp
    signature is ``vjp(backend, grad, ctx, needs, accumulate)`` where
    ``accumulate(input_index, contribution)`` mirrors
    ``Tensor._accumulate``.
    """

    name: str
    forward: Callable[..., tuple[np.ndarray, tuple]]
    vjp: Callable[..., tuple] | None = None
    accumulating: bool = False
    supports_out: bool = False


class Backend:
    """Protocol for a numeric backend: primitives plus the op table.

    The primitive methods (``matmul``, ``exp`` …) are the compute-heavy
    entry points an alternative backend overrides wholesale; the op table
    (``op(name)``) carries the full forward/VJP definitions the eager
    layer and the compiled executor both dispatch through.  Shape/view
    glue (``reshape``, ``broadcast_to``) is numpy-array semantics by
    definition and not part of the protocol.
    """

    name = "abstract"
    default_dtype = DEFAULT_DTYPE

    def __init__(self) -> None:
        self._ops: dict[str, OpDef] = {}

    # -- op table ------------------------------------------------------
    def op(self, name: str) -> OpDef:
        return self._ops[name]

    def register(self, opdef: OpDef) -> None:
        """Install (or override) one op definition."""
        self._ops[opdef.name] = opdef

    def ops(self) -> dict[str, OpDef]:
        return dict(self._ops)

    # -- primitives (the minimal swap surface) -------------------------
    def matmul(self, a, b, out=None):
        raise NotImplementedError

    def add(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def exp(self, a, out=None):
        raise NotImplementedError

    def tanh(self, a, out=None):
        raise NotImplementedError


class NumpyBackend(Backend):
    """The default backend: plain numpy, float64 accumulation."""

    name = "numpy"

    def __init__(self) -> None:
        super().__init__()
        for opdef in _NUMPY_OPS.values():
            self.register(opdef)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out) if out is not None else a @ b

    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def exp(self, a, out=None):
        return np.exp(a, out=out)

    def tanh(self, a, out=None):
        return np.tanh(a, out=out)


# ----------------------------------------------------------------------
# Elementary ops.  Each forward/vjp pair replicates the numpy sequence of
# the original Tensor closure exactly — do not "simplify" the arithmetic.
# ----------------------------------------------------------------------

def _fw_add(b, datas, params, out=None):
    x, y = datas
    return b.add(x, y, out=out), (x.shape, y.shape)


def _bw_add(b, grad, ctx, needs):
    xs, ys = ctx
    return (_unbroadcast(grad, xs) if needs[0] else None,
            _unbroadcast(grad, ys) if needs[1] else None)


def _fw_neg(b, datas, params, out=None):
    return np.negative(datas[0], out=out), ()


def _bw_neg(b, grad, ctx, needs):
    return (-grad,)


def _fw_mul(b, datas, params, out=None):
    x, y = datas
    return b.multiply(x, y, out=out), (x, y)


def _bw_mul(b, grad, ctx, needs):
    x, y = ctx
    return (_unbroadcast(grad * y, x.shape) if needs[0] else None,
            _unbroadcast(grad * x, y.shape) if needs[1] else None)


def _fw_div(b, datas, params, out=None):
    x, y = datas
    return np.divide(x, y, out=out), (x, y)


def _bw_div(b, grad, ctx, needs):
    x, y = ctx
    return (_unbroadcast(grad / y, x.shape) if needs[0] else None,
            _unbroadcast(-grad * x / (y**2), y.shape) if needs[1] else None)


def _fw_pow(b, datas, params, out=None):
    (x,) = datas
    e = params["exponent"]
    return np.power(x, e, out=out), (x, e)


def _bw_pow(b, grad, ctx, needs):
    x, e = ctx
    return (grad * e * x ** (e - 1),)


def _fw_exp(b, datas, params, out=None):
    out_data = b.exp(datas[0], out=out)
    return out_data, (out_data,)


def _bw_exp(b, grad, ctx, needs):
    (out_data,) = ctx
    return (grad * out_data,)


def _fw_log(b, datas, params, out=None):
    (x,) = datas
    return np.log(x, out=out), (x,)


def _bw_log(b, grad, ctx, needs):
    (x,) = ctx
    return (grad / x,)


def _fw_tanh(b, datas, params, out=None):
    out_data = b.tanh(datas[0], out=out)
    return out_data, (out_data,)


def _bw_tanh(b, grad, ctx, needs):
    (out_data,) = ctx
    return (grad * (1.0 - out_data**2),)


def _fw_relu(b, datas, params, out=None):
    (x,) = datas
    mask = x > 0
    return np.where(mask, x, 0.0), (mask,)


def _bw_relu(b, grad, ctx, needs):
    (mask,) = ctx
    return (grad * mask,)


_GELU_C = math.sqrt(2.0 / math.pi)


def _fw_gelu(b, datas, params, out=None):
    (x,) = datas
    inner = _GELU_C * (x + 0.044715 * x**3)
    t = b.tanh(inner)
    return 0.5 * x * (1.0 + t), (x, t)


def _bw_gelu(b, grad, ctx, needs):
    x, t = ctx
    d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
    return (grad * local,)


def _fw_sigmoid(b, datas, params, out=None):
    out_data = 1.0 / (1.0 + b.exp(-datas[0]))
    return out_data, (out_data,)


def _bw_sigmoid(b, grad, ctx, needs):
    (out_data,) = ctx
    return (grad * out_data * (1.0 - out_data),)


def _fw_matmul(b, datas, params, out=None):
    x, y = datas
    return b.matmul(x, y, out=out), (x, y)


def _bw_matmul(b, grad, ctx, needs):
    x, y = ctx
    gx = gy = None
    if needs[0]:
        gx = _unbroadcast(b.matmul(grad, np.swapaxes(y, -1, -2)), x.shape)
    if needs[1]:
        gy = _unbroadcast(b.matmul(np.swapaxes(x, -1, -2), grad), y.shape)
    return (gx, gy)


def _fw_sum(b, datas, params, out=None):
    (x,) = datas
    axis = params["axis"]
    keepdims = params["keepdims"]
    return x.sum(axis=axis, keepdims=keepdims), (x.shape, axis, keepdims)


def _bw_sum(b, grad, ctx, needs):
    shape, axis, keepdims = ctx
    g = grad
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else axis
        ndim = len(shape)
        for ax in sorted(a % ndim for a in axes):
            g = np.expand_dims(g, ax)
    return (np.broadcast_to(g, shape).copy(),)


def _fw_max(b, datas, params, out=None):
    (x,) = datas
    axis = params["axis"]
    keepdims = params["keepdims"]
    data = x.max(axis=axis, keepdims=keepdims)
    return data, (x, data, axis, keepdims)


def _bw_max(b, grad, ctx, needs):
    x, out_data, axis, keepdims = ctx
    expanded = out_data if keepdims else np.expand_dims(out_data, axis)
    mask = x == expanded
    # Split gradient equally among ties to keep the check well defined.
    counts = mask.sum(axis=axis, keepdims=True)
    g = grad if keepdims else np.expand_dims(grad, axis)
    return (mask * g / counts,)


def _fw_reshape(b, datas, params, out=None):
    (x,) = datas
    return x.reshape(params["shape"]), (x.shape,)


def _bw_reshape(b, grad, ctx, needs):
    (original,) = ctx
    return (grad.reshape(original),)


def _fw_transpose(b, datas, params, out=None):
    (x,) = datas
    axes = params["axes"]
    return x.transpose(axes), (np.argsort(axes),)


def _bw_transpose(b, grad, ctx, needs):
    (inverse,) = ctx
    return (grad.transpose(inverse),)


def _fw_getitem(b, datas, params, out=None):
    (x,) = datas
    return x[params["index"]], (x, params["index"])


def _bw_getitem(b, grad, ctx, needs):
    x, index = ctx
    full = np.zeros_like(x, dtype=DEFAULT_DTYPE)
    np.add.at(full, index, grad)
    return (full,)


def _fw_take_rows(b, datas, params, out=None):
    (x,) = datas
    idx = params["indices"]
    return x[idx], (x, idx)


def _bw_take_rows(b, grad, ctx, needs):
    x, idx = ctx
    full = np.zeros_like(x, dtype=DEFAULT_DTYPE)
    np.add.at(full, idx.reshape(-1), grad.reshape(-1, x.shape[1]))
    return (full,)


def _fw_softmax(b, datas, params, out=None):
    (x,) = datas
    axis = params["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = b.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    return out_data, (out_data, axis)


def _bw_softmax(b, grad, ctx, needs):
    out_data, axis = ctx
    dot = (grad * out_data).sum(axis=axis, keepdims=True)
    return (out_data * (grad - dot),)


def _fw_log_softmax(b, datas, params, out=None):
    (x,) = datas
    axis = params["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    log_z = np.log(b.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    probs = b.exp(out_data)
    return out_data, (probs, axis)


def _bw_log_softmax(b, grad, ctx, needs):
    probs, axis = ctx
    total = grad.sum(axis=axis, keepdims=True)
    return (grad - probs * total,)


def _fw_masked_fill(b, datas, params, out=None):
    (x,) = datas
    mask = params["mask"]
    return np.where(mask, params["value"], x), (mask, x.shape)


def _bw_masked_fill(b, grad, ctx, needs):
    mask, shape = ctx
    return (_unbroadcast(np.where(mask, 0.0, grad), shape),)


def _fw_concatenate(b, datas, params, out=None):
    axis = params["axis"]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)
    return out_data, (axis, offsets)


def _bw_concatenate(b, grad, ctx, needs):
    axis, offsets = ctx
    grads = []
    for i, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
        if not needs[i]:
            grads.append(None)
            continue
        slicer = [slice(None)] * grad.ndim
        slicer[axis] = slice(start, stop)
        grads.append(grad[tuple(slicer)])
    return tuple(grads)


def _fw_stack(b, datas, params, out=None):
    return np.stack(datas, axis=params["axis"]), (params["axis"],)


def _bw_stack(b, grad, ctx, needs):
    (axis,) = ctx
    slices = np.moveaxis(grad, axis, 0)
    return tuple(piece if need else None
                 for piece, need in zip(slices, needs))


# ----------------------------------------------------------------------
# Fused kernels.  Same elementary float sequence as the op chains they
# replace; ``_canon`` marks every interior tape-node boundary.
# ----------------------------------------------------------------------

def _fw_cross_entropy(b, datas, params, out=None):
    """Mean NLL over non-ignored targets, fused with log-softmax.

    Replaces the five-op chain ``log_softmax → getitem → mul → sum →
    neg`` the functional layer used to build, keeping the keep-mask /
    weight arithmetic inside the op so replay recomputes it per batch.
    """
    (flat,) = datas
    targets = params["targets"]
    ignore_index = params["ignore_index"]
    shifted = flat - flat.max(axis=-1, keepdims=True)
    log_z = np.log(b.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    probs = b.exp(log_probs)
    if ignore_index is not None:
        keep = targets != ignore_index
        safe = np.where(keep, targets, 0)
    else:
        keep = np.ones_like(targets, dtype=bool)
        safe = targets
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, safe]
    weights = keep.astype(DEFAULT_DTYPE) / keep.sum()
    out_data = -(picked * weights).sum()
    return out_data, (probs, weights, rows, safe, picked.shape, flat.shape)


def _bw_cross_entropy(b, grad, ctx, needs):
    probs, weights, rows, safe, picked_shape, flat_shape = ctx
    g1 = _canon(-grad)
    g2 = np.broadcast_to(g1, picked_shape)
    g3 = _canon(g2 * weights)
    full = np.zeros(flat_shape, dtype=DEFAULT_DTYPE)
    np.add.at(full, (rows, safe), g3)
    total = full.sum(axis=-1, keepdims=True)
    return (full - probs * total,)


def _fw_bias_gelu(b, datas, params, out=None):
    """``gelu(x + bias)`` — the feed-forward expand activation."""
    x, y = datas
    t_in = b.add(x, y)
    inner = _GELU_C * (t_in + 0.044715 * t_in**3)
    t = b.tanh(inner)
    out_data = 0.5 * t_in * (1.0 + t)
    return out_data, (x.shape, y.shape, t_in, t)


def _bw_bias_gelu(b, grad, ctx, needs):
    xs, ys, t_in, t = ctx
    d_inner = _GELU_C * (1.0 + 3 * 0.044715 * t_in**2)
    local = 0.5 * (1.0 + t) + 0.5 * t_in * (1.0 - t**2) * d_inner
    g_t = _canon(grad * local)
    return (_unbroadcast(g_t, xs) if needs[0] else None,
            _unbroadcast(g_t, ys) if needs[1] else None)


def _fw_masked_softmax(b, datas, params, out=None):
    """``softmax(masked_fill(scores, mask, value))`` — attention core."""
    (scores,) = datas
    mask = params["mask"]
    axis = params["axis"]
    masked = np.where(mask, params["value"], scores)
    shifted = masked - masked.max(axis=axis, keepdims=True)
    exp = b.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    return out_data, (mask, out_data, axis, scores.shape)


def _bw_masked_softmax(b, grad, ctx, needs):
    mask, out_data, axis, shape = ctx
    dot = (grad * out_data).sum(axis=axis, keepdims=True)
    g_masked = _canon(out_data * (grad - dot))
    return (_unbroadcast(np.where(mask, 0.0, g_masked), shape),)


def _fw_layernorm(b, datas, params, out=None):
    """The 16-node layer-norm cluster as one kernel.

    The eager graph computes the feature mean twice (directly and inside
    ``var``); the values are bitwise equal, so the kernel computes them
    once.  ``inv_d`` must equal the recorded ``1.0 / dim`` constant.
    """
    x, gain, bias = datas
    inv_d = params["inv_d"]
    eps = params["eps"]
    s1 = x.sum(axis=-1, keepdims=True)
    mu = s1 * inv_d
    cent = x + np.negative(mu)
    sq = cent * cent
    s3 = sq.sum(axis=-1, keepdims=True)
    var = s3 * inv_d
    veps = var + eps
    inv = veps ** -0.5
    normed = cent * inv
    o1 = normed * gain
    out_data = o1 + bias
    return out_data, (x.shape, gain, bias.shape, cent, inv, veps, normed,
                      mu.shape, inv_d)


def _bw_layernorm(b, grad, ctx, needs, accumulate):
    """Backward in the exact node order of the eager DFS sweep.

    Input 0 (``x``) receives four contributions — residual path, direct
    mean, centered square, variance mean — interleaved at the tape
    positions the eager sweep used, hence the accumulating protocol.
    """
    (x_shape, gain, bias_shape, cent, inv, veps, normed,
     mu_shape, inv_d) = ctx
    g = grad
    # out = o1 + bias
    g_o1 = g
    accumulate(2, _unbroadcast(g, bias_shape))
    # o1 = normed * gain
    g_normed = _canon(g_o1 * gain)
    accumulate(1, _unbroadcast(g_o1 * normed, gain.shape))
    # normed = num * inv  (num is bitwise cent)
    g_num = _canon(g_normed * inv)
    g_inv = _canon(_unbroadcast(g_normed * cent, inv.shape))
    # num = x + (-mu): x contribution #1
    accumulate(0, g_num)
    g_nmu = _canon(_unbroadcast(g_num, mu_shape))
    g_mu = _canon(-g_nmu)
    g_s1 = _canon(g_mu * inv_d)
    # s1 = x.sum(-1): x contribution #2
    accumulate(0, np.broadcast_to(g_s1, x_shape))
    # inv = veps ** -0.5
    g_veps = _canon(g_inv * -0.5 * veps ** -1.5)
    g_var = _canon(g_veps)
    g_s3 = _canon(g_var * inv_d)
    g_sq = _canon(np.broadcast_to(g_s3, x_shape))
    # sq = cent * cent: two adds of the same product, in tape order
    t = g_sq * cent
    g_cent = _canon(t)
    g_cent = g_cent + t
    # cent = x + (-mu2): x contribution #3
    accumulate(0, g_cent)
    g_nmu2 = _canon(_unbroadcast(g_cent, mu_shape))
    g_mu2 = _canon(-g_nmu2)
    g_s2 = _canon(g_mu2 * inv_d)
    # s2 = x.sum(-1): x contribution #4
    accumulate(0, np.broadcast_to(g_s2, x_shape))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_NUMPY_OPS: dict[str, OpDef] = {}


def _register(name: str, forward, vjp, **kwargs: Any) -> None:
    _NUMPY_OPS[name] = OpDef(name=name, forward=forward, vjp=vjp, **kwargs)


_register("add", _fw_add, _bw_add, supports_out=True)
_register("neg", _fw_neg, _bw_neg, supports_out=True)
_register("mul", _fw_mul, _bw_mul, supports_out=True)
_register("div", _fw_div, _bw_div, supports_out=True)
_register("pow", _fw_pow, _bw_pow, supports_out=True)
_register("exp", _fw_exp, _bw_exp, supports_out=True)
_register("log", _fw_log, _bw_log, supports_out=True)
_register("tanh", _fw_tanh, _bw_tanh, supports_out=True)
_register("relu", _fw_relu, _bw_relu)
_register("gelu", _fw_gelu, _bw_gelu)
_register("sigmoid", _fw_sigmoid, _bw_sigmoid)
_register("matmul", _fw_matmul, _bw_matmul, supports_out=True)
_register("sum", _fw_sum, _bw_sum)
_register("max", _fw_max, _bw_max)
_register("reshape", _fw_reshape, _bw_reshape)
_register("transpose", _fw_transpose, _bw_transpose)
_register("getitem", _fw_getitem, _bw_getitem)
_register("take_rows", _fw_take_rows, _bw_take_rows)
_register("softmax", _fw_softmax, _bw_softmax)
_register("log_softmax", _fw_log_softmax, _bw_log_softmax)
_register("masked_fill", _fw_masked_fill, _bw_masked_fill)
_register("concatenate", _fw_concatenate, _bw_concatenate)
_register("stack", _fw_stack, _bw_stack)
_register("cross_entropy", _fw_cross_entropy, _bw_cross_entropy)
_register("bias_gelu", _fw_bias_gelu, _bw_bias_gelu)
_register("masked_softmax", _fw_masked_softmax, _bw_masked_softmax)
_register("layernorm", _fw_layernorm, _bw_layernorm, accumulating=True)


_BACKEND: Backend = NumpyBackend()
_ACTIVE_OPS: dict[str, OpDef] = _BACKEND.ops()


def get_backend() -> Backend:
    """The backend every op currently dispatches through."""
    return _BACKEND


def set_backend(backend: Backend) -> Backend:
    """Swap the active backend; returns the previous one.

    The eager layer and any executor built afterwards pick up the new op
    table immediately; executors already built keep the table they were
    compiled against.
    """
    global _BACKEND, _ACTIVE_OPS
    previous = _BACKEND
    _BACKEND = backend
    _ACTIVE_OPS = backend.ops()
    return previous


def active_ops() -> dict[str, OpDef]:
    """The live op table (shared reference; treat as read-only)."""
    return _ACTIVE_OPS
