"""Tape recording and compiled replay of training/inference steps.

Python dispatch — one ``Tensor`` object, one parent tuple and one backward
closure per op — dominates step time for the small encoders this library
trains.  This module removes it from the steady state:

1. :func:`record_program` runs one ordinary eager step with a passive
   recorder installed (:func:`repro.nn.tensor.set_recorder`) and captures
   every backend op into a flat :class:`Program` — an op list plus a slot
   table classifying every array the step touched as a parameter, a bound
   input (varies per batch), a baked constant, or an op result.
2. Fusion passes collapse the three hottest elementwise chains —
   ``add→gelu`` (bias+gelu), ``masked_fill→softmax`` and the 16-op
   layer-norm cluster — into single fused backend ops.  Fusion only ever
   touches single-consumer chains, which a tape DFS visits contiguously,
   so the fused backward reproduces the eager accumulation order exactly.
3. :class:`TapeExecutor` replays the program on fresh bindings without
   constructing any Tensor or node objects, writing into persistent
   ``out=`` buffers, and runs a precomputed backward sweep that replicates
   the eager DFS postorder — making replayed steps bit-identical to eager
   steps (asserted against the golden fixtures in ``tests/compile``).

Buffer reuse
------------
Training executors keep one persistent forward buffer per op slot (reuse
across steps; within a step every intermediate stays live because the
backward pass consumes it).  Forward-only executors additionally share
buffers *across* slots via :func:`plan_buffers` — a lifetime-interval
analysis where a slot is live from the instruction defining it to its last
consumer (or forever, for program outputs), view chains extend the
lifetime of their base, and two slots may share a buffer only when their
intervals do not overlap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from . import backend as _backend
from .backend import DEFAULT_DTYPE, Backend, OpDef, get_backend
from .module import Parameter
from .tensor import Tensor, set_recorder

__all__ = [
    "BoundRef",
    "Slot",
    "Instr",
    "Program",
    "Recorder",
    "TapeExecutor",
    "ProgramCache",
    "record_program",
    "binding_signature",
    "plan_buffers",
]

# Ops whose output aliases their input's storage: they recompute views on
# replay instead of writing buffers, and they extend their base slot's
# lifetime in the buffer plan.
_VIEW_OPS = frozenset({"reshape", "transpose", "getitem"})


@dataclass(frozen=True)
class BoundRef:
    """A per-replay input: ``bindings[name]``, reshaped if recorded so.

    ``shape`` is ``None`` when the recorded array *was* the binding;
    otherwise the recorded array was a reshape-view of it (verified
    element-for-element at record time) and replay re-derives it.
    """

    name: str
    shape: tuple[int, ...] | None = None

    def resolve(self, bindings: dict[str, np.ndarray]) -> np.ndarray:
        arr = bindings[self.name]
        return arr if self.shape is None else arr.reshape(self.shape)


@dataclass
class Slot:
    """One array-valued location in the program.

    ``kind`` is ``"param"`` (live :class:`Parameter`; ``.data`` fetched
    every replay so optimizer updates are seen), ``"bound"`` (resolved
    from the replay bindings), ``"const"`` (baked at record time) or
    ``"op"`` (produced by an instruction).
    """

    index: int
    kind: str
    shape: tuple[int, ...]
    dtype: np.dtype
    param: Parameter | None = None
    ref: BoundRef | None = None
    value: np.ndarray | None = None
    requires: bool = False


@dataclass
class Instr:
    """One recorded op: input slots, static params, and per-replay params.

    ``bound`` lists ``(param_key, BoundRef)`` pairs overriding ``params``
    at every replay — e.g. an attention mask or the MLM target vector.
    """

    name: str
    inputs: tuple[int, ...]
    params: dict[str, Any]
    out: int
    bound: tuple[tuple[str, BoundRef], ...] = ()


@dataclass
class Program:
    """A recorded, fused, replayable step.

    ``outputs`` names the slots a caller reads back after each replay;
    ``loss`` names the output the backward sweep seeds (``None`` for
    forward-only programs).  ``backward_order`` lists instruction indices
    in the exact order the eager DFS sweep would process them.
    """

    slots: list[Slot]
    instrs: list[Instr]
    outputs: dict[str, int]
    loss: str | None = None
    backward_order: list[int] = field(default_factory=list)
    # (where, shape) pairs for every non-scalar array baked as a constant
    # — anything batch-dependent showing up here indicates a missing
    # binding and therefore stale replays.
    baked_arrays: list[tuple[str, tuple[int, ...]]] = field(
        default_factory=list)

    def param_slots(self) -> list[Slot]:
        return [s for s in self.slots if s.kind == "param"]


class Recorder:
    """Passive observer turning one eager step into a :class:`Program`.

    Installed via :func:`repro.nn.tensor.set_recorder`; receives every
    backend op as it executes.  Leaf tensors and array-valued op params
    are classified against ``bindings`` by identity (walking numpy view
    ``.base`` chains, verifying reshape-views element-for-element), so
    anything batch-dependent must be present in ``bindings`` — arrays
    that are not are baked as constants and listed in ``baked_arrays``
    for inspection.
    """

    def __init__(self, bindings: dict[str, np.ndarray]):
        self.bindings = bindings
        self._by_id = {id(arr): name for name, arr in bindings.items()}
        self.slots: list[Slot] = []
        self.instrs: list[Instr] = []
        self._tensor_slot: dict[int, int] = {}
        self._keepalive: list[Tensor] = []
        self.baked_arrays: list[tuple[str, tuple[int, ...]]] = []

    # -- slot construction ---------------------------------------------
    def _new_slot(self, kind: str, shape, dtype, **attrs) -> int:
        slot = Slot(index=len(self.slots), kind=kind, shape=tuple(shape),
                    dtype=np.dtype(dtype), **attrs)
        self.slots.append(slot)
        return slot.index

    def _match(self, arr: np.ndarray) -> BoundRef | None:
        candidate = arr
        for _ in range(8):
            if candidate is None:
                return None
            name = self._by_id.get(id(candidate))
            if name is not None:
                target = self.bindings[name]
                if candidate is arr:
                    return BoundRef(name)
                if target.size == arr.size and np.array_equal(
                        target.reshape(arr.shape), arr):
                    return BoundRef(name, arr.shape)
                return None
            candidate = getattr(candidate, "base", None)
        return None

    def _slot_for_input(self, t: Tensor) -> int:
        sid = self._tensor_slot.get(id(t))
        if sid is not None:
            return sid
        if isinstance(t, Parameter):
            sid = self._new_slot("param", t.data.shape, t.data.dtype, param=t)
        else:
            ref = self._match(t.data)
            if ref is not None:
                sid = self._new_slot("bound", t.data.shape, t.data.dtype,
                                     ref=ref)
            else:
                if t.data.ndim > 0:
                    self.baked_arrays.append(("leaf", t.data.shape))
                sid = self._new_slot("const", t.data.shape, t.data.dtype,
                                     value=t.data)
        self._tensor_slot[id(t)] = sid
        self._keepalive.append(t)
        return sid

    def _process_params(self, params: dict) -> tuple[dict, tuple]:
        bound = []
        for key, value in params.items():
            if isinstance(value, np.ndarray) and value.dtype != object:
                ref = self._match(value)
                if ref is not None:
                    bound.append((key, ref))
                elif value.ndim > 0:
                    self.baked_arrays.append((key, value.shape))
        return dict(params), tuple(bound)

    # -- the hook tensor.py calls --------------------------------------
    def record(self, name: str, inputs: tuple[Tensor, ...], params: dict,
               out: Tensor) -> None:
        in_slots = tuple(self._slot_for_input(t) for t in inputs)
        rparams, bound = self._process_params(params)
        out_slot = self._new_slot("op", out.data.shape, out.data.dtype)
        self.instrs.append(Instr(name=name, inputs=in_slots, params=rparams,
                                 out=out_slot, bound=bound))
        self._tensor_slot[id(out)] = out_slot
        self._keepalive.append(out)

    def slot_of(self, t: Tensor) -> int:
        return self._tensor_slot[id(t)]

    def finish(self, outputs: dict[str, Tensor],
               loss: str | None = None) -> Program:
        out_slots = {name: self.slot_of(t) for name, t in outputs.items()}
        program = Program(slots=self.slots, instrs=self.instrs,
                          outputs=out_slots, loss=loss,
                          baked_arrays=list(self.baked_arrays))
        _fuse(program)
        _annotate_requires(program)
        if loss is not None:
            program.backward_order = _backward_order(
                program, program.outputs[loss])
        self._keepalive.clear()
        self._tensor_slot.clear()
        return program


def record_program(step: Callable[[], dict[str, Tensor]],
                   bindings: dict[str, np.ndarray],
                   loss: str | None = None,
                   ) -> tuple[Program, dict[str, Tensor]]:
    """Run ``step`` once eagerly while recording it into a Program.

    ``step`` must return a name→Tensor mapping of the values a replay
    should surface; ``loss`` names the (scalar) entry the compiled
    backward pass will seed.  The eager step itself is untouched — its
    tensors, gradients and RNG consumption are exactly those of an
    unrecorded step, so the recording step *is* a regular step.
    """
    recorder = Recorder(bindings)
    previous = set_recorder(recorder)
    try:
        outputs = step()
    finally:
        set_recorder(previous)
    program = recorder.finish(outputs, loss=loss)
    return program, outputs


def binding_signature(bindings: dict[str, np.ndarray],
                      flags: tuple = ()) -> tuple:
    """Cache key for a recorded program: binding shapes/dtypes + flags.

    Two steps with the same signature replay the same program; a new
    padded sequence length or a batch lacking MER targets records afresh.
    """
    return (tuple(flags),
            tuple((name, arr.shape, str(arr.dtype))
                  for name, arr in sorted(bindings.items())))


# ----------------------------------------------------------------------
# Fusion passes
# ----------------------------------------------------------------------

# Creation-order op shape of LayerNorm.forward: mean, var (which re-derives
# the mean), normalization, then gain/bias.  See _match_layernorm for the
# wiring that must hold around it.
_LN_PATTERN = ("sum", "mul", "sum", "mul", "neg", "add", "mul", "sum",
               "mul", "neg", "add", "add", "pow", "mul", "mul", "add")


def _consumer_counts(program: Program) -> dict[int, int]:
    counts: dict[int, int] = {}
    for instr in program.instrs:
        for sid in instr.inputs:
            counts[sid] = counts.get(sid, 0) + 1
    for sid in program.outputs.values():
        counts[sid] = counts.get(sid, 0) + 1
    return counts


def _scalar_const(program: Program, sid: int) -> float | None:
    slot = program.slots[sid]
    if slot.kind != "const" or slot.value is None or slot.value.ndim != 0:
        return None
    return float(slot.value)


def _match_layernorm(program: Program, window: list[Instr],
                     counts: dict[int, int]) -> Instr | None:
    (s1, m1, s2, m2, n1, a2, m3, s3, m4, n2, a3, a4, p1, m5, m6, a5) = window
    x = s1.inputs[0]
    dim = program.slots[x].shape[-1] if program.slots[x].shape else 0
    if dim == 0:
        return None
    inv_d = _scalar_const(program, m1.inputs[1])
    eps = _scalar_const(program, a4.inputs[1])
    if inv_d is None or eps is None or inv_d != 1.0 / dim:
        return None
    for red in (s1, s2, s3):
        if red.params.get("axis") != -1 or not red.params.get("keepdims"):
            return None
    if p1.params.get("exponent") != -0.5:
        return None
    wiring = (
        m1.inputs[0] == s1.out
        and s2.inputs == (x,)
        and m2.inputs[0] == s2.out
        and _scalar_const(program, m2.inputs[1]) == inv_d
        and n1.inputs == (m2.out,)
        and a2.inputs == (x, n1.out)
        and m3.inputs == (a2.out, a2.out)
        and s3.inputs == (m3.out,)
        and m4.inputs[0] == s3.out
        and _scalar_const(program, m4.inputs[1]) == inv_d
        and n2.inputs == (m1.out,)
        and a3.inputs == (x, n2.out)
        and a4.inputs[0] == m4.out
        and p1.inputs == (a4.out,)
        and m5.inputs == (a3.out, p1.out)
        and m6.inputs[0] == m5.out
        and a5.inputs[0] == m6.out
    )
    if not wiring:
        return None
    # Every interior result must be consumed only inside the cluster
    # (``cent`` legitimately has two uses — both by ``sq = cent*cent``) —
    # otherwise the eager sweep interleaves external gradient
    # contributions and the cluster cannot collapse.
    internal: dict[int, int] = {}
    for instr in window:
        for sid in instr.inputs:
            internal[sid] = internal.get(sid, 0) + 1
    for interior in window[:-1]:
        if counts.get(interior.out, 0) != internal.get(interior.out, 0):
            return None
    gain, bias = m6.inputs[1], a5.inputs[1]
    return Instr(name="layernorm", inputs=(x, gain, bias),
                 params={"inv_d": inv_d, "eps": eps}, out=a5.out)


def _fuse_layernorm(program: Program) -> None:
    counts = _consumer_counts(program)
    instrs = program.instrs
    result: list[Instr] = []
    i = 0
    while i < len(instrs):
        window = instrs[i:i + len(_LN_PATTERN)]
        if tuple(w.name for w in window) == _LN_PATTERN:
            fused = _match_layernorm(program, window, counts)
            if fused is not None:
                result.append(fused)
                i += len(_LN_PATTERN)
                continue
        result.append(instrs[i])
        i += 1
    program.instrs = result


def _fuse_pairs(program: Program, consumer: str, producer: str,
                build: Callable[[Instr, Instr], Instr]) -> None:
    """Collapse single-consumer ``producer→consumer`` chains.

    A unary chain whose head is consumed only by its tail occupies
    adjacent positions in the eager DFS postorder, so fusing it cannot
    reorder any gradient accumulation.
    """
    counts = _consumer_counts(program)
    producers = {instr.out: instr for instr in program.instrs}
    position = {id(instr): k for k, instr in enumerate(program.instrs)}
    out: list[Instr | None] = list(program.instrs)
    for k, instr in enumerate(program.instrs):
        if instr.name != consumer:
            continue
        head = producers.get(instr.inputs[0])
        if head is None or head.name != producer:
            continue
        if counts.get(head.out, 0) != 1:
            continue
        out[position[id(head)]] = None
        out[k] = build(head, instr)
    program.instrs = [instr for instr in out if instr is not None]


def _build_bias_gelu(head: Instr, tail: Instr) -> Instr:
    return Instr(name="bias_gelu", inputs=head.inputs, params={},
                 out=tail.out)


def _build_masked_softmax(head: Instr, tail: Instr) -> Instr:
    params = {"mask": head.params["mask"], "value": head.params["value"],
              "axis": tail.params["axis"]}
    return Instr(name="masked_softmax", inputs=head.inputs, params=params,
                 out=tail.out, bound=head.bound)


def _fuse(program: Program) -> None:
    _fuse_layernorm(program)
    _fuse_pairs(program, "gelu", "add", _build_bias_gelu)
    _fuse_pairs(program, "softmax", "masked_fill", _build_masked_softmax)


def _annotate_requires(program: Program) -> None:
    for slot in program.slots:
        slot.requires = slot.kind == "param"
    for instr in program.instrs:
        if any(program.slots[s].requires for s in instr.inputs):
            program.slots[instr.out].requires = True


def _backward_order(program: Program, root: int) -> list[int]:
    """Instruction order of the eager DFS backward sweep, statically.

    This is ``Tensor.backward``'s traversal verbatim — iterative DFS with
    parents pushed in input order, postorder reversed — run over slots
    instead of tensors.  Replays accumulate gradients in exactly the
    sequence the recording (eager) step did, which is what makes the
    float results bitwise equal.
    """
    producer = {instr.out: k for k, instr in enumerate(program.instrs)}
    requires = [slot.requires for slot in program.slots]
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        sid, processed = stack.pop()
        if processed:
            order.append(sid)
            continue
        if sid in seen:
            continue
        seen.add(sid)
        stack.append((sid, True))
        k = producer.get(sid)
        if k is None:
            continue
        for parent in program.instrs[k].inputs:
            if requires[parent] and parent not in seen:
                stack.append((parent, False))
    return [producer[sid] for sid in reversed(order) if sid in producer]


# ----------------------------------------------------------------------
# Buffer planning (forward-only replay)
# ----------------------------------------------------------------------

def plan_buffers(intervals: list[tuple[int, int, Any]]) -> list[int]:
    """Assign a buffer id to each live interval; reuse where lifetimes allow.

    ``intervals`` holds ``(start, end, key)`` triples in program order
    (``start`` non-decreasing); only intervals with equal ``key`` (shape +
    dtype) may share a buffer, and two intervals sharing a buffer must not
    overlap — an interval is live on ``[start, end]`` inclusive, so a
    buffer freed at ``end`` is reusable from ``end + 1`` on.  The
    hypothesis suite (``tests/compile/test_buffer_plan.py``) checks the
    no-aliasing invariant on random interval sets.
    """
    assignment: list[int] = []
    free: dict[Any, list[tuple[int, int]]] = {}
    next_id = 0
    for start, end, key in intervals:
        heap = free.setdefault(key, [])
        if heap and heap[0][0] < start:
            _, buffer_id = heapq.heappop(heap)
        else:
            buffer_id = next_id
            next_id += 1
        assignment.append(buffer_id)
        heapq.heappush(heap, (end, buffer_id))
    return assignment


def _forward_lifetimes(program: Program) -> dict[int, tuple[int, int]]:
    """Live interval per op slot, with view chains charged to their base.

    A view op's output shares storage with its input, so the base slot
    stays live as long as any view over it; program outputs are live past
    the end of the program (modelled as ``end = len(instrs)``).
    """
    infinity = len(program.instrs)
    base: dict[int, int] = {}

    def find(sid: int) -> int:
        while sid in base:
            sid = base[sid]
        return sid

    defined: dict[int, int] = {}
    last_use: dict[int, int] = {}
    for k, instr in enumerate(program.instrs):
        for sid in instr.inputs:
            if program.slots[sid].kind == "op":
                last_use[find(sid)] = k
        if instr.name in _VIEW_OPS and \
                program.slots[instr.inputs[0]].kind == "op":
            base[instr.out] = instr.inputs[0]
        defined.setdefault(find(instr.out), k)
    for sid in program.outputs.values():
        if program.slots[sid].kind == "op":
            last_use[find(sid)] = infinity
    return {sid: (start, last_use.get(sid, start))
            for sid, start in defined.items()}


class TapeExecutor:
    """Replays a recorded :class:`Program` without tape bookkeeping.

    ``run(bindings)`` re-executes the forward instruction list against
    fresh per-batch bindings; ``backward()`` runs the precomputed DFS
    sweep, assigning each parameter's gradient buffer to ``param.grad``
    (compatible with ``clip_gradients``'s in-place scaling and the
    optimizers' ``zero_grad``).

    Training executors (``program.loss`` set) keep one persistent forward
    buffer per fusible op slot — every intermediate must survive to the
    backward pass, so only step-over-step reuse is safe.  Forward-only
    executors also share buffers across slots according to
    :func:`plan_buffers`.
    """

    def __init__(self, program: Program, backend: Backend | None = None):
        self.program = program
        self.backend = backend or get_backend()
        self._ops: list[OpDef] = [self.backend.op(instr.name)
                                  for instr in program.instrs]
        self._values: list[np.ndarray | None] = [None] * len(program.slots)
        self._ctxs: list[tuple | None] = [None] * len(program.instrs)
        self._needs = [tuple(program.slots[s].requires for s in instr.inputs)
                       for instr in program.instrs]
        self._fwd_buffers = self._plan_forward_buffers()
        self._grad_pool: dict[tuple, list[np.ndarray]] = {}
        self._param_buffers: dict[int, np.ndarray] = {}
        self._last_outputs: dict[str, np.ndarray] = {}

    # -- forward -------------------------------------------------------
    def _plan_forward_buffers(self) -> dict[int, np.ndarray]:
        buffers: dict[int, np.ndarray] = {}
        candidates = [
            (k, instr) for k, instr in enumerate(self.program.instrs)
            if self._ops[k].supports_out
        ]
        if self.program.loss is not None:
            for _, instr in candidates:
                slot = self.program.slots[instr.out]
                buffers[instr.out] = np.empty(slot.shape, dtype=slot.dtype)
            return buffers
        lifetimes = _forward_lifetimes(self.program)
        intervals = []
        slots = []
        for k, instr in candidates:
            if instr.out not in lifetimes:
                continue
            start, end = lifetimes[instr.out]
            slot = self.program.slots[instr.out]
            intervals.append((start, end, (slot.shape, str(slot.dtype))))
            slots.append(instr.out)
        assignment = plan_buffers(intervals)
        shared: dict[int, np.ndarray] = {}
        for sid, buffer_id in zip(slots, assignment):
            slot = self.program.slots[sid]
            if buffer_id not in shared:
                shared[buffer_id] = np.empty(slot.shape, dtype=slot.dtype)
            buffers[sid] = shared[buffer_id]
        return buffers

    def run(self, bindings: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Replay the forward program; returns the named output arrays."""
        values = self._values
        backend = self.backend
        for slot in self.program.slots:
            if slot.kind == "param":
                values[slot.index] = slot.param.data
            elif slot.kind == "bound":
                values[slot.index] = slot.ref.resolve(bindings)
            elif slot.kind == "const":
                values[slot.index] = slot.value
        buffers = self._fwd_buffers
        for k, instr in enumerate(self.program.instrs):
            datas = tuple(values[s] for s in instr.inputs)
            params = instr.params
            if instr.bound:
                params = dict(params)
                for key, ref in instr.bound:
                    params[key] = ref.resolve(bindings)
            out_data, ctx = self._ops[k].forward(
                backend, datas, params, out=buffers.get(instr.out))
            values[instr.out] = out_data
            self._ctxs[k] = ctx
        self._last_outputs = {name: values[sid]
                              for name, sid in self.program.outputs.items()}
        return self._last_outputs

    # -- backward ------------------------------------------------------
    def _acquire(self, shape: tuple[int, ...]) -> np.ndarray:
        pool = self._grad_pool.setdefault(shape, [])
        if pool:
            buffer = pool.pop()
            buffer.fill(0.0)
            return buffer
        return np.zeros(shape, dtype=DEFAULT_DTYPE)

    def backward(self) -> None:
        """Run the recorded DFS sweep; leaves gradients on ``param.grad``.

        Accumulation replicates ``Tensor._accumulate`` — a zeroed float64
        buffer receiving ``+=`` contributions in eager order — so the
        resulting gradients are bitwise those of the eager step.
        """
        program = self.program
        if program.loss is None:
            raise RuntimeError("forward-only program has no backward pass")
        slots = program.slots
        grads: dict[int, np.ndarray] = {}
        root = program.outputs[program.loss]
        seed = self._acquire(slots[root].shape)
        seed += np.ones(slots[root].shape, dtype=DEFAULT_DTYPE)
        grads[root] = seed

        def accumulate(sid: int, contribution: np.ndarray) -> None:
            buffer = grads.get(sid)
            if buffer is None:
                if slots[sid].kind == "param":
                    buffer = self._param_buffers.get(sid)
                    if buffer is None:
                        buffer = np.zeros(slots[sid].shape,
                                          dtype=DEFAULT_DTYPE)
                        self._param_buffers[sid] = buffer
                    else:
                        buffer.fill(0.0)
                else:
                    buffer = self._acquire(slots[sid].shape)
                grads[sid] = buffer
            np.add(buffer, contribution, out=buffer)

        backend = self.backend
        for k in program.backward_order:
            instr = program.instrs[k]
            grad = grads.get(instr.out)
            if grad is None:
                continue
            opdef = self._ops[k]
            needs = self._needs[k]
            if opdef.accumulating:
                def fused_accumulate(i: int, contribution: np.ndarray,
                                     _instr=instr, _needs=needs) -> None:
                    if _needs[i]:
                        accumulate(_instr.inputs[i], contribution)
                opdef.vjp(backend, grad, self._ctxs[k], needs,
                          fused_accumulate)
            else:
                results = opdef.vjp(backend, grad, self._ctxs[k], needs)
                for sid, contribution in zip(instr.inputs, results):
                    if contribution is not None and slots[sid].requires:
                        accumulate(sid, contribution)
            del grads[instr.out]
            self._grad_pool.setdefault(slots[instr.out].shape, []).append(grad)
        for slot in program.param_slots():
            slot.param.grad = grads.get(slot.index)


class ProgramCache:
    """Signature-keyed cache of compiled executors.

    One entry per distinct :func:`binding_signature` — e.g. per padded
    sequence length and per objective-flag combination.  ``get`` returns
    ``None`` on a miss; the caller records the step eagerly and ``put``s
    the resulting executor.
    """

    def __init__(self) -> None:
        self._executors: dict[tuple, TapeExecutor] = {}

    def get(self, signature: tuple) -> TapeExecutor | None:
        return self._executors.get(signature)

    def put(self, signature: tuple, executor: TapeExecutor) -> None:
        self._executors[signature] = executor

    def __len__(self) -> int:
        return len(self._executors)
