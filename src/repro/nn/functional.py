"""Loss functions and small functional helpers used by training code."""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "cosine_similarity",
    "in_batch_contrastive_loss",
]


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean token-level cross entropy.

    Dispatches to the backend's fused ``cross_entropy`` op (log-softmax,
    target gather and ignore-index weighting in one kernel); gradients
    are bit-identical to the op chain earlier releases built here.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute zero loss (used for padding
        and for unmasked positions in MLM).
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None and not (flat_targets != ignore_index).any():
        return Tensor(0.0)
    return flat_logits.cross_entropy(flat_targets, ignore_index=ignore_index)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE: ``max(x,0) - x*t + log(1 + exp(-|x|))``."""
    targets_t = Tensor(np.asarray(targets, dtype=get_backend().default_dtype))
    abs_logits = logits.relu() + (-logits).relu()
    softplus = ((-abs_logits).exp() + 1.0).log()
    return (logits.relu() - logits * targets_t + softplus).mean()


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = predictions - Tensor(np.asarray(targets,
                                           dtype=get_backend().default_dtype))
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise cosine similarity between two ``(n, d)`` tensors."""
    a_norm = ((a * a).sum(axis=-1, keepdims=True) + eps) ** 0.5
    b_norm = ((b * b).sum(axis=-1, keepdims=True) + eps) ** 0.5
    return ((a / a_norm) * (b / b_norm)).sum(axis=-1)


def in_batch_contrastive_loss(queries: Tensor, keys: Tensor,
                              temperature: float = 0.07) -> Tensor:
    """InfoNCE with in-batch negatives for the retrieval bi-encoder.

    ``queries[i]`` should match ``keys[i]``; every other key in the batch is
    a negative.
    """
    q_norm = ((queries * queries).sum(axis=-1, keepdims=True) + 1e-8) ** 0.5
    k_norm = ((keys * keys).sum(axis=-1, keepdims=True) + 1e-8) ** 0.5
    q = queries / q_norm
    k = keys / k_norm
    logits = (q @ k.swapaxes(-1, -2)) * (1.0 / temperature)
    targets = np.arange(logits.shape[0])
    return cross_entropy(logits, targets)
