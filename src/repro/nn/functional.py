"""Loss functions and small functional helpers used by training code."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "cosine_similarity",
    "in_batch_contrastive_loss",
]


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    targets:
        Integer array of shape ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute zero loss (used for padding
        and for unmasked positions in MLM).
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            return Tensor(0.0)
        safe_targets = np.where(keep, flat_targets, 0)
    else:
        keep = np.ones_like(flat_targets, dtype=bool)
        safe_targets = flat_targets

    log_probs = flat_logits.log_softmax(axis=-1)
    rows = np.arange(flat_targets.shape[0])
    picked = log_probs[rows, safe_targets]
    weights = keep.astype(np.float64) / keep.sum()
    return -(picked * Tensor(weights)).sum()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE: ``max(x,0) - x*t + log(1 + exp(-|x|))``."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    abs_logits = logits.relu() + (-logits).relu()
    softplus = ((-abs_logits).exp() + 1.0).log()
    return (logits.relu() - logits * targets_t + softplus).mean()


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = predictions - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise cosine similarity between two ``(n, d)`` tensors."""
    a_norm = ((a * a).sum(axis=-1, keepdims=True) + eps) ** 0.5
    b_norm = ((b * b).sum(axis=-1, keepdims=True) + eps) ** 0.5
    return ((a / a_norm) * (b / b_norm)).sum(axis=-1)


def in_batch_contrastive_loss(queries: Tensor, keys: Tensor,
                              temperature: float = 0.07) -> Tensor:
    """InfoNCE with in-batch negatives for the retrieval bi-encoder.

    ``queries[i]`` should match ``keys[i]``; every other key in the batch is
    a negative.
    """
    q_norm = ((queries * queries).sum(axis=-1, keepdims=True) + 1e-8) ** 0.5
    k_norm = ((keys * keys).sum(axis=-1, keepdims=True) + 1e-8) ** 0.5
    q = queries / q_norm
    k = keys / k_norm
    logits = (q @ k.swapaxes(-1, -2)) * (1.0 / temperature)
    targets = np.arange(logits.shape[0])
    return cross_entropy(logits, targets)
