"""Checkpoint IO: save/load module state plus a JSON config sidecar."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(module: Module, path: str | Path,
                    config: dict | None = None) -> Path:
    """Persist ``module.state_dict()`` (npz) and an optional config (json).

    Returns the npz path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)
    if config is not None:
        path.with_suffix(".json").write_text(json.dumps(config, indent=2, sort_keys=True))
    return path


def load_checkpoint(module: Module, path: str | Path) -> dict | None:
    """Load a checkpoint written by :func:`save_checkpoint` into ``module``.

    Returns the config dict if a sidecar exists, else ``None``.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
    config_path = path.with_suffix(".json")
    if config_path.exists():
        return json.loads(config_path.read_text())
    return None
