"""Crash-safe checkpoint IO: atomic writes, manifests, verified loads.

Checkpoints are ``.npz`` archives written atomically (tmp file +
``os.replace``) so a crash mid-write can never leave a half-written
archive under the final name.  Every archive gets a ``.manifest.json``
sidecar stamping its SHA-256 digest and byte size; loads verify the
digest and raise :class:`CheckpointError` on truncation or corruption
instead of surfacing a raw ``zipfile``/``numpy`` failure.

:func:`latest_valid_checkpoint` scans a snapshot directory for the
newest archive that still verifies — the fallback path trainers use
when the most recent snapshot was interrupted mid-write.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "write_npz_atomic",
    "read_npz_verified",
    "verify_checkpoint",
    "manifest_path",
    "latest_valid_checkpoint",
]

MANIFEST_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, verified, or applied."""


def manifest_path(path: str | Path) -> Path:
    """The ``.manifest.json`` sidecar location for an archive path."""
    path = Path(path)
    return path.with_name(path.name + ".manifest.json")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def write_npz_atomic(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Write ``arrays`` to ``path`` atomically and stamp a manifest sidecar.

    The archive is first written to a ``.tmp`` file in the same directory
    and moved into place with ``os.replace`` (atomic on POSIX), then the
    manifest — SHA-256 digest, byte size, array names — is written the
    same way.  Readers that find a digest mismatch know the archive is
    corrupt; readers that find no manifest treat the archive as legacy
    and skip verification.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    manifest = {
        "format_version": MANIFEST_FORMAT_VERSION,
        "file": path.name,
        "sha256": _sha256(path),
        "bytes": path.stat().st_size,
        "arrays": sorted(arrays),
    }
    _atomic_write_text(manifest_path(path),
                       json.dumps(manifest, indent=2, sort_keys=True))
    return path


def verify_checkpoint(path: str | Path) -> bool:
    """Whether ``path`` is a readable archive matching its manifest.

    Returns ``False`` (never raises) for missing, truncated, or corrupt
    archives and for digest mismatches; archives without a manifest pass
    if the zip structure itself is intact.
    """
    path = Path(path)
    if not path.is_file():
        return False
    sidecar = manifest_path(path)
    if sidecar.exists():
        try:
            manifest = json.loads(sidecar.read_text())
        except (json.JSONDecodeError, OSError):
            return False
        if manifest.get("bytes") != path.stat().st_size:
            return False
        if manifest.get("sha256") != _sha256(path):
            return False
        return True
    try:
        with zipfile.ZipFile(path) as archive:
            return archive.testzip() is None
    except (zipfile.BadZipFile, OSError, EOFError):
        return False


def read_npz_verified(path: str | Path) -> dict[str, np.ndarray]:
    """Load every array from an archive, verifying integrity first.

    Raises
    ------
    FileNotFoundError
        When the archive does not exist.
    CheckpointError
        When the archive is truncated/corrupt or fails manifest digest
        verification.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    sidecar = manifest_path(path)
    if sidecar.exists() and not verify_checkpoint(path):
        raise CheckpointError(
            f"checkpoint {path} failed manifest verification "
            f"(truncated or corrupt archive)")
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as error:
        raise CheckpointError(f"checkpoint {path} is unreadable: {error}") from error


def latest_valid_checkpoint(directory: str | Path,
                            pattern: str = "*.npz") -> Path | None:
    """The newest archive under ``directory`` that verifies, else ``None``.

    Candidates are ordered by name (snapshot names embed zero-padded step
    numbers, so lexicographic order is training order) and checked newest
    first, skipping any that a crash left truncated.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    for candidate in sorted(directory.glob(pattern), reverse=True):
        if verify_checkpoint(candidate):
            return candidate
    return None


def _state_diff(module: Module,
                state: dict[str, np.ndarray]) -> list[str]:
    """Human-readable problems applying ``state`` to ``module``, if any."""
    own = dict(module.named_parameters())
    problems = []
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing:
        problems.append(f"missing keys: {missing}")
    if unexpected:
        problems.append(f"unexpected keys: {unexpected}")
    mismatched = [
        f"{name} (saved {state[name].shape}, model {param.shape})"
        for name, param in sorted(own.items())
        if name in state and np.asarray(state[name]).shape != param.shape
    ]
    if mismatched:
        problems.append(f"shape mismatches: {mismatched}")
    return problems


def save_checkpoint(module: Module, path: str | Path,
                    config: dict | None = None) -> Path:
    """Persist ``module.state_dict()`` (npz) and an optional config (json).

    The archive is written atomically with a SHA-256 manifest sidecar
    (see :func:`write_npz_atomic`).  Returns the npz path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    write_npz_atomic(path, module.state_dict())
    if config is not None:
        _atomic_write_text(path.with_suffix(".json"),
                           json.dumps(config, indent=2, sort_keys=True))
    return path


def load_checkpoint(module: Module, path: str | Path) -> dict | None:
    """Load a checkpoint written by :func:`save_checkpoint` into ``module``.

    Returns the config dict if a sidecar exists, else ``None``.

    Raises
    ------
    CheckpointError
        When the archive is corrupt, or when its keys do not match the
        module (every missing/unexpected/shape-mismatched key is listed).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = read_npz_verified(path)
    problems = _state_diff(module, state)
    if problems:
        raise CheckpointError(
            f"checkpoint {path} does not match the model: "
            + "; ".join(problems))
    module.load_state_dict(state)
    config_path = path.with_suffix(".json")
    if config_path.exists():
        return json.loads(config_path.read_text())
    return None
