"""Core neural layers: Linear, Embedding, LayerNorm, Dropout.

Layers compose backend ops through the :class:`Tensor` API only — no raw
``.data`` arithmetic (lint rule REPRO006) — so each forward works
identically in eager mode and under tape recording.  The compiled
executor (:mod:`repro.nn.compile`) fuses the op *patterns* these layers
emit: ``matmul → add-bias → gelu`` from :class:`Linear` inside a GELU
MLP, and the ``sub-mean / scale / gain+bias`` chain from
:class:`LayerNorm` behind a residual add.
"""

from __future__ import annotations

import numpy as np

from .backend import DEFAULT_DTYPE
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout"]


def _xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 scale: float = 0.02) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, scale, size=(num_embeddings, dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight.take_rows(ids)


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable gain/bias."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) * ((var + self.eps) ** -0.5)
        return normed * self.gain + self.bias


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        # Cast through the library-wide accumulation dtype rather than
        # relying on bool/float promotion — the mask is drawn eagerly per
        # step, which is also why compiled replay rejects dropout > 0.
        mask = (self._rng.random(x.shape) < keep).astype(DEFAULT_DTYPE) / keep
        return x * Tensor(mask)
