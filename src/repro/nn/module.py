"""Minimal module system: parameter registration, train/eval mode, state IO.

Modules mirror the familiar torch-style API at the scale this library needs:
attribute assignment auto-registers parameters and submodules, and
``state_dict``/``load_state_dict`` give flat name→array views used by the
checkpoint code in :mod:`repro.nn.io`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from .backend import DEFAULT_DTYPE
from .tensor import Tensor, inference_mode

__all__ = ["Parameter", "Module", "ModuleList", "InitMetadata"]


@dataclass(frozen=True)
class InitMetadata:
    """How a module was constructed — what a bundle needs to rebuild it.

    Factories (see :func:`repro.core.create_model`) stamp this on the
    models they build via :attr:`Module.init_metadata`; ``save_pretrained``
    serializes it so ``load_pretrained`` can re-invoke the constructor
    with the same seed and extra keyword arguments.
    """

    seed: int = 0
    kwargs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InitMetadata":
        return cls(seed=int(payload.get("seed", 0)),
                   kwargs=dict(payload.get("kwargs", {})))


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data, dtype=DEFAULT_DTYPE),
                         requires_grad=True)


class Module:
    """Base class for all neural network components."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Construction metadata
    # ------------------------------------------------------------------
    @property
    def init_metadata(self) -> InitMetadata:
        """Construction metadata for bundle IO (empty unless stamped)."""
        stamped = getattr(self, "_init_metadata", None)
        return stamped if stamped is not None else InitMetadata()

    @init_metadata.setter
    def init_metadata(self, value: InitMetadata) -> None:
        if not isinstance(value, InitMetadata):
            raise TypeError(
                f"init_metadata must be an InitMetadata, got {type(value).__name__}")
        object.__setattr__(self, "_init_metadata", value)

    # ------------------------------------------------------------------
    # Parameter iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter exactly once."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Gradient / mode management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (enables dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (disables dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    @contextmanager
    def inference(self) -> Iterator["Module"]:
        """Run a block in serving mode: eval + tape-free fast path.

        Switches the module to eval (dropout off), enters
        :class:`~repro.nn.tensor.inference_mode` so forward passes build
        no autograd tape, and restores the previous training mode on
        exit.  The standard wrapper around every ``predict`` path.
        """
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                yield self
        finally:
            if was_training:
                self.train()

    # ------------------------------------------------------------------
    # State IO
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter names to array copies."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        for name, param in own.items():
            incoming = np.asarray(state[name], dtype=DEFAULT_DTYPE)
            if incoming.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {incoming.shape}, model {param.shape}"
                )
            param.data[...] = incoming

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container that registers each child module."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
