"""Optimizers and learning-rate schedules for pretraining and fine-tuning."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .module import Parameter
from .tensor import no_grad

__all__ = [
    "SGD",
    "Adam",
    "clip_gradients",
    "ConstantSchedule",
    "LinearWarmupSchedule",
    "CosineSchedule",
]


def clip_gradients(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training stability).
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class _Optimizer:
    """Shared bookkeeping for optimizers."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State IO (trainer checkpointing)
    # ------------------------------------------------------------------
    def _slot_names(self) -> tuple[str, ...]:
        """Names of per-parameter state attributes (lists of arrays)."""
        return ()

    def state_dict(self) -> dict:
        """Everything needed to continue stepping bit-identically."""
        state: dict = {"lr": self.lr, "step_count": self.step_count}
        for name in self._slot_names():
            state[name] = [array.copy() for array in getattr(self, name)]
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (validates slot shapes)."""
        for name in self._slot_names():
            saved = state[name]
            own = getattr(self, name)
            if len(saved) != len(own):
                raise ValueError(
                    f"optimizer state {name!r} has {len(saved)} slots, "
                    f"expected {len(own)}")
            mismatched = [i for i, (s, o) in enumerate(zip(saved, own))
                          if np.asarray(s).shape != o.shape]
            if mismatched:
                raise ValueError(
                    f"optimizer state {name!r} shape mismatch at "
                    f"slots {mismatched}")
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])
        for name in self._slot_names():
            for own, saved in zip(getattr(self, name), state[name]):
                own[...] = saved


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_names(self) -> tuple[str, ...]:
        return ("_velocity",)

    def step(self) -> None:
        self.step_count += 1
        with no_grad():
            for p, v in zip(self.parameters, self._velocity):
                if p.grad is None:
                    continue
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v


class Adam(_Optimizer):
    """Adam with decoupled weight decay (AdamW), the BERT-family default."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_names(self) -> tuple[str, ...]:
        return ("_m", "_v")

    def step(self) -> None:
        self.step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self.step_count
        bias2 = 1.0 - beta2**self.step_count
        with no_grad():
            for p, m, v in zip(self.parameters, self._m, self._v):
                if p.grad is None:
                    continue
                grad = p.grad
                m *= beta1
                m += (1.0 - beta1) * grad
                v *= beta2
                v += (1.0 - beta2) * grad**2
                m_hat = m / bias1
                v_hat = v / bias2
                if self.weight_decay:
                    p.data -= self.lr * self.weight_decay * p.data
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class ConstantSchedule:
    """Fixed learning rate."""

    def __init__(self, lr: float) -> None:
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class LinearWarmupSchedule:
    """Linear warmup to ``lr`` then linear decay to zero at ``total_steps``."""

    def __init__(self, lr: float, warmup_steps: int, total_steps: int) -> None:
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.lr = lr
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.lr * (step + 1) / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        return self.lr * remaining / (self.total_steps - self.warmup_steps)


class CosineSchedule:
    """Cosine decay from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_lr: float = 0.0) -> None:
        self.lr = lr
        self.total_steps = max(1, total_steps)
        self.min_lr = min_lr

    def __call__(self, step: int) -> float:
        progress = min(1.0, step / self.total_steps)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.lr - self.min_lr) * cosine
