"""Reverse-mode automatic differentiation on top of the backend op table.

This module is the computational foundation of the library.  It implements a
small, well-tested :class:`Tensor` type supporting the operations the
transformer stack needs: broadcasting arithmetic, matrix multiplication,
reductions, indexing, shape manipulation and the usual nonlinearities.

The design mirrors the classic tape-based approach: every operation records
its parents and a closure computing the local vector-Jacobian product.
Calling :meth:`Tensor.backward` on a scalar walks the tape in reverse
topological order and accumulates gradients into every tensor created with
``requires_grad=True``.

Since the backend redesign, the arithmetic itself no longer lives here:
every op dispatches through :mod:`repro.nn.backend`'s :class:`OpDef` table
(forward kernel + vector-Jacobian product), and this module only does the
tape bookkeeping around it.  The compiled executor
(:mod:`repro.nn.compile`) replays the very same op definitions, which is
what keeps compiled and eager numerics bit-identical.

All gradients are checked against central finite differences in the test
suite (``tests/nn/test_tensor.py``).
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Iterable, Sequence

import numpy as np

from . import backend as _backend
from .backend import DEFAULT_DTYPE, _unbroadcast

__all__ = ["Tensor", "no_grad", "inference_mode", "is_grad_enabled",
           "is_inference_mode", "set_tape_hook", "get_tape_hook",
           "set_recorder", "get_recorder"]

_GRAD_ENABLED = True
_INFERENCE_MODE = False

# Optional profiling hook (see repro.runtime.profiler).  When installed it
# receives ``on_forward(op, nbytes)`` for every op creation and
# ``on_backward(op, seconds)`` for every vector-Jacobian product.  A hook
# may additionally define ``on_node(tensor)`` to observe every *tracked*
# result tensor as it joins the tape (see repro.analysis.tape); the bound
# method is cached here so the disabled path stays a single ``is None``
# check per op.
_TAPE_HOOK = None
_TAPE_ON_NODE = None

# Optional tape recorder (see repro.nn.compile).  When installed it
# observes every backend-dispatched op — in grad, no-grad and inference
# mode alike — so one traced step can be captured into a replayable
# program.  Purely passive: recording never changes what the op returns.
_RECORDER = None


def set_tape_hook(hook) -> object | None:
    """Install a tape profiling hook; returns the previously installed one.

    Pass ``None`` to uninstall.  Used by :func:`repro.runtime.profile`.
    """
    global _TAPE_HOOK, _TAPE_ON_NODE
    previous = _TAPE_HOOK
    _TAPE_HOOK = hook
    _TAPE_ON_NODE = getattr(hook, "on_node", None)
    return previous


def get_tape_hook() -> object | None:
    """The currently installed tape hook, if any."""
    return _TAPE_HOOK


def set_recorder(recorder) -> object | None:
    """Install a tape recorder; returns the previously installed one.

    The recorder receives ``record(op_name, inputs, params, out)`` for
    every backend op as it executes.  Pass ``None`` to uninstall.  Used
    by :func:`repro.nn.compile.record_program`.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def get_recorder() -> object | None:
    """The currently installed tape recorder, if any."""
    return _RECORDER


class no_grad:
    """Context manager disabling gradient tape recording.

    Used by inference paths (``model.encode``) and by optimizers when they
    update parameters in place.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


class inference_mode:
    """Context manager putting the op layer in its serving fast path.

    Strictly stronger than :class:`no_grad`: besides disabling gradient
    recording, every op result is built through a slim constructor that
    retains no parents and no backward closure, skips the profiling-hook
    check, and bypasses ``Tensor.__init__``'s dtype coercion — the tape
    simply does not exist for the duration of the block.  Numerics are
    untouched: forward values are bit-identical to grad mode.

    Used by the serving layer (:mod:`repro.serve`) and by
    :meth:`Module.inference`.
    """

    def __enter__(self) -> "inference_mode":
        global _GRAD_ENABLED, _INFERENCE_MODE
        self._previous = (_GRAD_ENABLED, _INFERENCE_MODE)
        _GRAD_ENABLED = False
        _INFERENCE_MODE = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED, _INFERENCE_MODE
        _GRAD_ENABLED, _INFERENCE_MODE = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def is_inference_mode() -> bool:
    """Return whether the inference fast path is active."""
    return _INFERENCE_MODE


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float`` ndarray if needed.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        _op: str = "leaf",
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            arr = arr.astype(DEFAULT_DTYPE)
        self.data = arr
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: "Tensor | np.ndarray | float | int") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _apply(self, name: str, inputs: tuple["Tensor", ...],
               params: dict | None = None) -> "Tensor":
        """Dispatch one op through the active backend and tape it.

        Runs the backend ``forward`` kernel, wraps the result in a
        ``Tensor`` (slim in inference mode), attaches a generic backward
        closure invoking the backend ``vjp``, and notifies the profiling
        hook / recorder.  This replaces the per-op ``_make`` closures the
        pre-backend design used.
        """
        if params is None:
            params = {}
        b = _backend._BACKEND
        opdef = _backend._ACTIVE_OPS[name]
        out_data, ctx = opdef.forward(b, tuple(t.data for t in inputs), params)

        if _INFERENCE_MODE:
            out = Tensor.__new__(Tensor)
            out.data = out_data
            out.requires_grad = False
            out.grad = None
            out._parents = ()
            out._backward = None
            out._op = name
            if _RECORDER is not None:
                _RECORDER.record(name, inputs, params, out)
            return out

        if _TAPE_HOOK is not None:
            _TAPE_HOOK.on_forward(name, out_data.nbytes)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in inputs)
        if not requires:
            out = Tensor(out_data)
            if _RECORDER is not None:
                _RECORDER.record(name, inputs, params, out)
            return out

        if opdef.accumulating:
            def backward(grad: np.ndarray) -> None:
                needs = tuple(p.requires_grad for p in inputs)

                def accumulate(index: int, contribution: np.ndarray) -> None:
                    if needs[index]:
                        inputs[index]._accumulate(contribution)

                opdef.vjp(b, grad, ctx, needs, accumulate)
        else:
            def backward(grad: np.ndarray) -> None:
                needs = tuple(p.requires_grad for p in inputs)
                grads = opdef.vjp(b, grad, ctx, needs)
                for parent, g in zip(inputs, grads):
                    if g is not None and parent.requires_grad:
                        parent._accumulate(g)

        out = Tensor(out_data, requires_grad=True, _parents=inputs,
                     _backward=backward, _op=name)
        if _TAPE_ON_NODE is not None:
            _TAPE_ON_NODE(out)
        if _RECORDER is not None:
            _RECORDER.record(name, inputs, params, out)
        return out

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Deprecated: build a tape node from a hand-written closure.

        Op math must go through the backend op table (``_apply``) so the
        compiled executor can capture and replay it; ad-hoc closures are
        invisible to recording.  Kept for one release for external
        callers.
        """
        warnings.warn(
            "Tensor._make is deprecated: register an OpDef with the "
            "backend and dispatch through it instead (see "
            "repro.nn.backend); hand-written closures cannot be captured "
            "by repro.nn.compile.",
            DeprecationWarning, stacklevel=2)
        if _INFERENCE_MODE:
            out = Tensor.__new__(Tensor)
            out.data = data
            out.requires_grad = False
            out.grad = None
            out._parents = ()
            out._backward = None
            out._op = op
            return out
        if _TAPE_HOOK is not None:
            _TAPE_HOOK.on_forward(op, data.nbytes)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        out = Tensor(data, requires_grad=True, _parents=parents,
                     _backward=backward, _op=op)
        if _TAPE_ON_NODE is not None:
            _TAPE_ON_NODE(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=DEFAULT_DTYPE)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a seed requires a scalar tensor")
            grad = np.ones_like(self.data, dtype=DEFAULT_DTYPE)
        else:
            grad = np.asarray(grad, dtype=DEFAULT_DTYPE)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        hook = _TAPE_HOOK
        if hook is None:
            for node in reversed(order):
                if node._backward is None or node.grad is None:
                    continue
                node._backward(node.grad)
        else:
            for node in reversed(order):
                if node._backward is None or node.grad is None:
                    continue
                start = time.perf_counter()
                node._backward(node.grad)
                hook.on_backward(node._op, time.perf_counter() - start)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        return self._apply("add", (self, other))

    def __radd__(self, other: "float | np.ndarray") -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        return self._apply("neg", (self,))

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return self.__add__(-self._coerce(other))

    def __rsub__(self, other: "float | np.ndarray") -> "Tensor":
        return self._coerce(other).__add__(-self)

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        return self._apply("mul", (self, other))

    def __rmul__(self, other: "float | np.ndarray") -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        return self._apply("div", (self, other))

    def __rtruediv__(self, other: "float | np.ndarray") -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return self._apply("pow", (self,), {"exponent": exponent})

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return self._apply("exp", (self,))

    def log(self) -> "Tensor":
        return self._apply("log", (self,))

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        return self._apply("tanh", (self,))

    def relu(self) -> "Tensor":
        return self._apply("relu", (self,))

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in BERT)."""
        return self._apply("gelu", (self,))

    def sigmoid(self) -> "Tensor":
        return self._apply("sigmoid", (self,))

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        return self._apply("matmul", (self, other))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        return self._apply("sum", (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = 1
            for ax in axes:
                count *= self.shape[ax % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        return self._apply("max", (self,), {"axis": axis, "keepdims": keepdims})

    def var(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Population variance along ``axis`` (as used by layer norm)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._apply("reshape", (self,), {"shape": shape})

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return self._apply("transpose", (self,), {"axes": axes})

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        return self._apply("getitem", (self,), {"index": index})

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows of a 2-D tensor — the embedding-lookup primitive.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + (self.shape[1],)``.
        """
        if self.ndim != 2:
            raise ValueError("take_rows expects a 2-D tensor (a lookup table)")
        idx = np.asarray(indices, dtype=np.int64)
        return self._apply("take_rows", (self,), {"indices": idx})

    # ------------------------------------------------------------------
    # Composite ops used throughout the transformer stack
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        return self._apply("softmax", (self,), {"axis": axis})

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return self._apply("log_softmax", (self,), {"axis": axis})

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is true with ``value``.

        Used to implement attention masking: masked positions get a large
        negative score before softmax.
        """
        mask = np.asarray(mask, dtype=bool)
        return self._apply("masked_fill", (self,), {"mask": mask, "value": value})

    def cross_entropy(self, targets: np.ndarray,
                      ignore_index: int | None = None) -> "Tensor":
        """Mean NLL of a ``(n, classes)`` tensor against integer targets.

        One fused backend op replacing the ``log_softmax → getitem → mul
        → sum → neg`` chain; gradients are bit-identical to that chain.
        """
        targets = np.asarray(targets, dtype=np.int64)
        return self._apply("cross_entropy", (self,),
                           {"targets": targets, "ignore_index": ignore_index})

    def clip_norm(self, max_norm: float) -> "Tensor":
        """Differentiably rescale so the Frobenius norm is at most ``max_norm``."""
        norm = float(np.linalg.norm(self.data))
        if norm <= max_norm or norm == 0.0:
            return self
        return self * (max_norm / norm)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        ref = tensors[0]
        return ref._apply("concatenate", tuple(tensors), {"axis": axis})

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        ref = tensors[0]
        return ref._apply("stack", tuple(tensors), {"axis": axis})
