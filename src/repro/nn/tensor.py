"""Reverse-mode automatic differentiation on top of numpy.

This module is the computational foundation of the library.  It implements a
small, well-tested :class:`Tensor` type supporting the operations the
transformer stack needs: broadcasting arithmetic, matrix multiplication,
reductions, indexing, shape manipulation and the usual nonlinearities.

The design mirrors the classic tape-based approach: every operation records
its parents and a closure computing the local vector-Jacobian product.
Calling :meth:`Tensor.backward` on a scalar walks the tape in reverse
topological order and accumulates gradients into every tensor created with
``requires_grad=True``.

All gradients are checked against central finite differences in the test
suite (``tests/nn/test_tensor.py``).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "inference_mode", "is_grad_enabled",
           "is_inference_mode", "set_tape_hook", "get_tape_hook"]

_GRAD_ENABLED = True
_INFERENCE_MODE = False

# Optional profiling hook (see repro.runtime.profiler).  When installed it
# receives ``on_forward(op, nbytes)`` for every op creation and
# ``on_backward(op, seconds)`` for every vector-Jacobian product.  A hook
# may additionally define ``on_node(tensor)`` to observe every *tracked*
# result tensor as it joins the tape (see repro.analysis.tape); the bound
# method is cached here so the disabled path stays a single ``is None``
# check per op.
_TAPE_HOOK = None
_TAPE_ON_NODE = None


def set_tape_hook(hook) -> object | None:
    """Install a tape profiling hook; returns the previously installed one.

    Pass ``None`` to uninstall.  Used by :func:`repro.runtime.profile`.
    """
    global _TAPE_HOOK, _TAPE_ON_NODE
    previous = _TAPE_HOOK
    _TAPE_HOOK = hook
    _TAPE_ON_NODE = getattr(hook, "on_node", None)
    return previous


def get_tape_hook() -> object | None:
    """The currently installed tape hook, if any."""
    return _TAPE_HOOK


class no_grad:
    """Context manager disabling gradient tape recording.

    Used by inference paths (``model.encode``) and by optimizers when they
    update parameters in place.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


class inference_mode:
    """Context manager putting the op layer in its serving fast path.

    Strictly stronger than :class:`no_grad`: besides disabling gradient
    recording, every op result is built through a slim constructor that
    retains no parents and no backward closure, skips the profiling-hook
    check, and bypasses ``Tensor.__init__``'s dtype coercion — the tape
    simply does not exist for the duration of the block.  Numerics are
    untouched: forward values are bit-identical to grad mode.

    Used by the serving layer (:mod:`repro.serve`) and by
    :meth:`Module.inference`.
    """

    def __enter__(self) -> "inference_mode":
        global _GRAD_ENABLED, _INFERENCE_MODE
        self._previous = (_GRAD_ENABLED, _INFERENCE_MODE)
        _GRAD_ENABLED = False
        _INFERENCE_MODE = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED, _INFERENCE_MODE
        _GRAD_ENABLED, _INFERENCE_MODE = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def is_inference_mode() -> bool:
    """Return whether the inference fast path is active."""
    return _INFERENCE_MODE


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after a broadcast forward op.

    Broadcasting can prepend dimensions and stretch size-1 axes; the adjoint
    of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float`` ndarray if needed.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        _op: str = "leaf",
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            arr = arr.astype(np.float64)
        self.data = arr
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: "Tensor | np.ndarray | float | int") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        if _INFERENCE_MODE:
            out = Tensor.__new__(Tensor)
            out.data = data
            out.requires_grad = False
            out.grad = None
            out._parents = ()
            out._backward = None
            out._op = op
            return out
        if _TAPE_HOOK is not None:
            _TAPE_HOOK.on_forward(op, data.nbytes)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        out = Tensor(data, requires_grad=True, _parents=parents, _backward=backward, _op=op)
        if _TAPE_ON_NODE is not None:
            _TAPE_ON_NODE(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=np.float64)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a seed requires a scalar tensor")
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        hook = _TAPE_HOOK
        if hook is None:
            for node in reversed(order):
                if node._backward is None or node.grad is None:
                    continue
                node._backward(node.grad)
        else:
            for node in reversed(order):
                if node._backward is None or node.grad is None:
                    continue
                start = time.perf_counter()
                node._backward(node.grad)
                hook.on_backward(node._op, time.perf_counter() - start)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward, "add")

    def __radd__(self, other: "float | np.ndarray") -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return self.__add__(-self._coerce(other))

    def __rsub__(self, other: "float | np.ndarray") -> "Tensor":
        return self._coerce(other).__add__(-self)

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward, "mul")

    def __rmul__(self, other: "float | np.ndarray") -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: "float | np.ndarray") -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward, "tanh")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "relu")

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in BERT)."""
        c = math.sqrt(2.0 / math.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                d_inner = c * (1.0 + 3 * 0.044715 * x**2)
                local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
                self._accumulate(grad * local)

        return self._make(out_data, (self,), backward, "gelu")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, other.shape))

        return self._make(out_data, (self, other), backward, "matmul")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = 1
            for ax in axes:
                count *= self.shape[ax % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # Split gradient equally among ties to keep the check well defined.
            counts = mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g / counts)

        return self._make(out_data, (self,), backward, "max")

    def var(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Population variance along ``axis`` (as used by layer norm)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data, dtype=np.float64)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward, "getitem")

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows of a 2-D tensor — the embedding-lookup primitive.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + (self.shape[1],)``.
        """
        if self.ndim != 2:
            raise ValueError("take_rows expects a 2-D tensor (a lookup table)")
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data, dtype=np.float64)
                np.add.at(full, idx.reshape(-1), grad.reshape(-1, self.shape[1]))
                self._accumulate(full)

        return self._make(out_data, (self,), backward, "take_rows")

    # ------------------------------------------------------------------
    # Composite ops used throughout the transformer stack
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward, "softmax")

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        probs = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                total = grad.sum(axis=axis, keepdims=True)
                self._accumulate(grad - probs * total)

        return self._make(out_data, (self,), backward, "log_softmax")

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is true with ``value``.

        Used to implement attention masking: masked positions get a large
        negative score before softmax.
        """
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(np.where(mask, 0.0, grad), self.shape))

        return self._make(out_data, (self,), backward, "masked_fill")

    def clip_norm(self, max_norm: float) -> "Tensor":
        """Differentiably rescale so the Frobenius norm is at most ``max_norm``."""
        norm = float(np.linalg.norm(self.data))
        if norm <= max_norm or norm == 0.0:
            return self
        return self * (max_norm / norm)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        ref = tensors[0]
        return ref._make(out_data, tuple(tensors), backward, "concatenate")

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                if tensor.requires_grad:
                    tensor._accumulate(piece)

        ref = tensors[0]
        return ref._make(out_data, tuple(tensors), backward, "stack")
