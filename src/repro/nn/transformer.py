"""Transformer encoder / decoder stacks (pre-LN variant).

These are the backbone shared by every model in :mod:`repro.models`.  The
encoder accepts an optional structural attention mask per layer, which is
how TURL's visibility matrix and MATE's sparse heads are injected without
changing the backbone code.

The op sequences these blocks emit are the fusion targets of the
compiled executor (:mod:`repro.nn.compile`): the ``x + sublayer(norm(x))``
pre-LN residual pattern fuses into a single residual+layernorm kernel,
the GELU MLP of :class:`FeedForward` into bias+gelu, and the masked
softmax inside attention into softmax+mask.  Keep forwards expressed
through these idioms — the fusion pass matches op patterns, not layer
classes, so an equivalent-but-reordered forward would still be correct
yet replay unfused.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention, causal_mask
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor

__all__ = ["FeedForward", "EncoderLayer", "Encoder", "DecoderLayer", "Decoder"]


class FeedForward(Module):
    """Position-wise two-layer MLP with GELU."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        super().__init__()
        self.expand = Linear(dim, hidden_dim, rng)
        self.contract = Linear(hidden_dim, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.contract(self.dropout(self.expand(x).gelu()))


class EncoderLayer(Module):
    """Pre-LN encoder block: attention and MLP with residual connections."""

    def __init__(self, dim: int, num_heads: int, hidden_dim: int,
                 rng: np.random.Generator, dropout: float = 0.0) -> None:
        super().__init__()
        self.attention = MultiHeadAttention(dim, num_heads, rng, dropout=dropout)
        self.feed_forward = FeedForward(dim, hidden_dim, rng, dropout=dropout)
        self.norm_attention = LayerNorm(dim)
        self.norm_feed_forward = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                bias: np.ndarray | None = None) -> Tensor:
        x = x + self.dropout(self.attention(self.norm_attention(x), mask=mask,
                                            bias=bias))
        x = x + self.dropout(self.feed_forward(self.norm_feed_forward(x)))
        return x


class Encoder(Module):
    """A stack of encoder layers with a final layer norm.

    Attention weights of every layer are kept on the layer objects
    (``layer.attention.last_attention``) so the visualization utilities in
    :mod:`repro.viz` can inspect them after a forward pass.
    """

    def __init__(self, dim: int, num_heads: int, hidden_dim: int, num_layers: int,
                 rng: np.random.Generator, dropout: float = 0.0) -> None:
        super().__init__()
        self.layers = ModuleList([
            EncoderLayer(dim, num_heads, hidden_dim, rng, dropout=dropout)
            for _ in range(num_layers)
        ])
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, mask: np.ndarray | None = None,
                bias: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask, bias=bias)
        return self.final_norm(x)

    def attention_maps(self) -> list[np.ndarray]:
        """Per-layer attention weights from the most recent forward pass."""
        return [layer.attention.last_attention for layer in self.layers]


class DecoderLayer(Module):
    """Pre-LN decoder block with causal self-attention and cross-attention."""

    def __init__(self, dim: int, num_heads: int, hidden_dim: int,
                 rng: np.random.Generator, dropout: float = 0.0) -> None:
        super().__init__()
        self.self_attention = MultiHeadAttention(dim, num_heads, rng, dropout=dropout)
        self.cross_attention = MultiHeadAttention(dim, num_heads, rng, dropout=dropout)
        self.feed_forward = FeedForward(dim, hidden_dim, rng, dropout=dropout)
        self.norm_self = LayerNorm(dim)
        self.norm_cross = LayerNorm(dim)
        self.norm_feed_forward = LayerNorm(dim)

    def forward(self, x: Tensor, memory: Tensor,
                self_mask: np.ndarray | None = None,
                memory_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.self_attention(self.norm_self(x), mask=self_mask)
        x = x + self.cross_attention(self.norm_cross(x), memory=memory, mask=memory_mask)
        x = x + self.feed_forward(self.norm_feed_forward(x))
        return x


class Decoder(Module):
    """Autoregressive decoder stack used by the TAPEX-style executor."""

    def __init__(self, dim: int, num_heads: int, hidden_dim: int, num_layers: int,
                 rng: np.random.Generator, dropout: float = 0.0) -> None:
        super().__init__()
        self.layers = ModuleList([
            DecoderLayer(dim, num_heads, hidden_dim, rng, dropout=dropout)
            for _ in range(num_layers)
        ])
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, memory: Tensor,
                memory_mask: np.ndarray | None = None) -> Tensor:
        seq_len = x.shape[1]
        self_mask = causal_mask(seq_len)
        for layer in self.layers:
            x = layer(x, memory, self_mask=self_mask, memory_mask=memory_mask)
        return self.final_norm(x)
