"""Data-parallel training: deterministic multi-process gradient steps.

The engine shards each optimizer step's batch across N persistent
forked worker processes and combines per-shard gradients with a
fixed-order tree all-reduce, so the summed gradient — and therefore
every checkpoint byte — is identical for ``workers=1`` and
``workers=N``.  Workers stay alive across steps behind a
request/response pipe protocol; a supervisor detects dead or hung
workers (heartbeats + step deadlines), respawns them with exponential
backoff, and deterministically re-executes lost shards — so a run
survives worker loss without moving a single gradient bit.  See
DESIGN.md ("Deterministic data parallelism", "Elastic data-parallel
training") for why the summation order must be pinned and how the
failure matrix is covered.

Quickstart::

    from repro.parallel import ParallelConfig
    from repro.pretrain import Pretrainer, PretrainConfig

    config = PretrainConfig(steps=60,
                            parallel=ParallelConfig(workers=4))
    Pretrainer(model, config).train(corpus)   # bit-identical to workers=1
    # kill -9 a worker mid-run: the supervisor replaces it and the
    # final checkpoint bytes do not change.
"""

from .config import DEFAULT_SHARDS, FixedClock, ParallelConfig
from .engine import DataParallelEngine, EngineStep
from .faults import FaultPlan, FaultSpec, parse_fault_plan
from .plan import (
    ShardPlan,
    assign_round_robin,
    plan_shards,
    shard_slices,
    split_waves,
)
from .reduce import tree_combine, tree_reduce_grads
from .workers import WorkerError, WorkerFailedError, WorkerHandle, WorkerPool

__all__ = [
    "ParallelConfig", "FixedClock", "DEFAULT_SHARDS",
    "DataParallelEngine", "EngineStep",
    "FaultPlan", "FaultSpec", "parse_fault_plan",
    "ShardPlan", "plan_shards", "shard_slices", "split_waves",
    "assign_round_robin",
    "tree_combine", "tree_reduce_grads",
    "WorkerError", "WorkerFailedError", "WorkerHandle", "WorkerPool",
]
