"""Data-parallel training: deterministic multi-process gradient steps.

The engine shards each optimizer step's batch across N forked worker
processes and combines per-shard gradients with a fixed-order tree
all-reduce, so the summed gradient — and therefore every checkpoint
byte — is identical for ``workers=1`` and ``workers=N``.  See
DESIGN.md ("Deterministic data parallelism") for why the summation
order must be pinned.

Quickstart::

    from repro.parallel import ParallelConfig
    from repro.pretrain import Pretrainer, PretrainConfig

    config = PretrainConfig(steps=60,
                            parallel=ParallelConfig(workers=4))
    Pretrainer(model, config).train(corpus)   # bit-identical to workers=1
"""

from .config import DEFAULT_SHARDS, FixedClock, ParallelConfig
from .engine import DataParallelEngine, EngineStep
from .plan import (
    ShardPlan,
    assign_round_robin,
    plan_shards,
    shard_slices,
    split_waves,
)
from .reduce import tree_combine, tree_reduce_grads
from .workers import WorkerError, WorkerPool

__all__ = [
    "ParallelConfig", "FixedClock", "DEFAULT_SHARDS",
    "DataParallelEngine", "EngineStep",
    "ShardPlan", "plan_shards", "shard_slices", "split_waves",
    "assign_round_robin",
    "tree_combine", "tree_reduce_grads",
    "WorkerError", "WorkerPool",
]
