"""Configuration of the data-parallel training engine.

The one rule that makes parallel runs bit-identical to serial ones:
**numerics may depend only on the shard decomposition, never on the
worker count**.  ``ParallelConfig.workers`` is pure scheduling — it
decides which OS process computes which shard, not how the batch is cut
or in which order shard gradients are summed.  ``resolve_shard_size``
therefore derives the shard size from the batch size alone, and
``numeric_signature`` (what :class:`~repro.pretrain.TrainerCheckpoint`
stores) deliberately excludes ``workers``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from .faults import FaultPlan

__all__ = ["ParallelConfig", "FixedClock", "DEFAULT_SHARDS"]

# When shard_size is left at 0 (auto), a batch is cut into this many
# shards regardless of worker count, so the summation tree — and with it
# every gradient bit — is identical for workers=1 and workers=N.
DEFAULT_SHARDS = 4


@dataclass(frozen=True)
class ParallelConfig:
    """How one optimizer step is sharded across worker processes.

    Parameters
    ----------
    workers:
        OS processes computing shard gradients.  ``1`` runs every shard
        in the calling process (no fork) — cheap for tests and laptops,
        bit-identical to any other worker count.
    shard_size:
        Rows per micro-shard.  ``0`` (auto) resolves to
        ``ceil(batch_size / DEFAULT_SHARDS)``; the resolution never
        looks at ``workers``.
    accumulate:
        Number of sequential dispatch waves a step's shards are split
        into.  Purely a scheduling/memory knob: all shard gradients
        still enter one fixed-order reduction tree, so ``accumulate``
        does not change a single bit of the combined gradient.
    elastic:
        Master switch for the worker supervisor.  ``True`` (default)
        detects dead/hung workers, respawns them with backoff and
        deterministically re-executes their lost shards; ``False``
        turns any worker loss into an immediate
        :class:`~repro.parallel.WorkerFailedError`.
    heartbeat_interval:
        Seconds between liveness frames a busy worker emits.  ``0``
        disables heartbeats (hang detection then rests on the step
        deadline alone).
    heartbeat_timeout:
        Silence (no frame of any kind from a dispatched worker) after
        which the supervisor declares the process wedged and reaps it.
    step_deadline:
        Wall-clock budget for one dispatched wave assignment; a worker
        that has not replied within it is reaped even if it still
        heartbeats (slow-degenerate case).  ``0`` disables deadlines.
    max_respawns:
        Replacement forks permitted *per worker slot* over a run before
        the slot is retired and the pool degrades to fewer workers —
        safe, because worker count is pure scheduling.
    respawn_backoff:
        Base of the exponential backoff slept before respawn attempt
        ``k`` (``respawn_backoff * 2**k`` seconds).
    faults:
        Optional deterministic :class:`~repro.parallel.faults.FaultPlan`
        executed inside the workers — the fault-injection harness.

    Every supervisor knob is scheduling-only: none of them appears in
    ``numeric_signature`` because a recovered (or degraded) run is
    byte-identical to a healthy one.
    """

    workers: int = 1
    shard_size: int = 0
    accumulate: int = 1
    elastic: bool = True
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 10.0
    step_deadline: float = 120.0
    max_respawns: int = 2
    respawn_backoff: float = 0.05
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.shard_size < 0:
            raise ValueError("shard_size must be non-negative (0 = auto)")
        if self.accumulate < 1:
            raise ValueError("accumulate must be positive")
        if self.heartbeat_interval < 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_interval must be >= 0 and "
                             "heartbeat_timeout > 0")
        if self.step_deadline < 0:
            raise ValueError("step_deadline must be non-negative (0 = off)")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        if self.respawn_backoff < 0:
            raise ValueError("respawn_backoff must be non-negative")
        if self.faults is not None and self.workers == 1:
            raise ValueError(
                "fault injection needs forked workers (workers > 1): "
                "the in-process path has no processes to kill")

    def resolve_shard_size(self, batch_size: int) -> int:
        """The rows-per-shard actually used for ``batch_size`` batches.

        Depends only on the batch size and ``shard_size`` — never on
        ``workers`` — so the shard decomposition (and therefore the
        gradient) is invariant to how many processes run it.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.shard_size:
            return min(self.shard_size, batch_size)
        return max(1, math.ceil(batch_size / DEFAULT_SHARDS))

    def numeric_signature(self, batch_size: int) -> dict:
        """The projection of this config that affects training numerics.

        This is what checkpoints persist and what resume compatibility
        compares: two runs with equal signatures produce bit-identical
        gradients no matter their worker counts.
        """
        return {"shard_size": self.resolve_shard_size(batch_size)}


class FixedClock:
    """A deterministic stand-in for ``time.perf_counter``.

    Each call advances by ``tick`` seconds, so wall-time fields in
    training records — and therefore checkpoint archives — are
    byte-identical across runs and machines.  Used by
    ``repro pretrain --fixed-clock`` and the differential test harness.
    """

    __slots__ = ("tick", "_now")

    def __init__(self, tick: float = 1.0, start: float = 0.0) -> None:
        self.tick = float(tick)
        self._now = float(start)

    def __call__(self) -> float:
        self._now += self.tick
        return self._now


# Re-exported so callers can write ``clock=parallel.config.DEFAULT_CLOCK``
# symmetric with serve.DynamicBatcher's injectable clock.
DEFAULT_CLOCK = time.perf_counter
