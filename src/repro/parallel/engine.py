"""The data-parallel step engine: shard → compute → fixed-order reduce.

:class:`DataParallelEngine` owns scheduling and reduction; *what* a
shard computes stays with the caller, passed in as ``compute(payload) ->
stats``.  The contract:

- ``compute`` runs forward+backward for one shard payload against the
  live ``parameters`` and returns a JSON-able stats dict; the engine
  harvests ``p.grad`` afterwards (as a sparse ``{param_index: grad}``
  dict) and clears it, so consecutive shards never cross-accumulate.
- Per-shard losses must already carry their global normalization (e.g.
  ``n_shard_targets / n_total_targets`` scaling), so the engine's job is
  a plain unweighted sum — performed by the fixed-order reduction tree
  in :mod:`repro.parallel.reduce`, which is what makes the combined
  gradient bit-identical for every worker count and completion order.
- ``workers=1`` runs shards in-process in shard order (no fork, no
  pickling); ``workers>1`` forks a :class:`~repro.parallel.workers.WorkerPool`
  lazily on the first step and syncs parameter arrays to it each step.

Telemetry lands in the process registry: ``parallel.shard_ms`` (one
observation per shard), ``parallel.reduce_ms`` (per step) and
``parallel.imbalance`` (per step; ``max/mean - 1`` over shard times, 0.0
means perfectly balanced).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .config import ParallelConfig
from .plan import assign_round_robin, split_waves
from .reduce import tree_reduce_grads
from .workers import WorkerPool
from ..runtime import get_registry

__all__ = ["DataParallelEngine", "EngineStep"]


@dataclass
class EngineStep:
    """What one engine step produced, ordered by shard index."""

    grads: dict[int, np.ndarray]
    stats: list[dict]
    shard_seconds: list[float]
    reduce_seconds: float

    @property
    def imbalance(self) -> float:
        """``max/mean - 1`` over shard compute times (0 = balanced)."""
        if len(self.shard_seconds) < 2:
            return 0.0
        mean = sum(self.shard_seconds) / len(self.shard_seconds)
        if mean <= 0.0:
            return 0.0
        return max(self.shard_seconds) / mean - 1.0


class DataParallelEngine:
    """Schedules shard computations and reduces their gradients."""

    def __init__(self, parameters: Sequence,
                 compute: Callable[[Any], dict],
                 config: ParallelConfig | None = None) -> None:
        self.parameters = list(parameters)
        self.compute = compute
        self.config = config or ParallelConfig()
        self._pool: WorkerPool | None = None

    # -- shard execution ------------------------------------------------
    def _run_shard(self, payload: Any) -> tuple[dict[int, np.ndarray], dict]:
        """Compute one shard against the live parameters; harvest grads."""
        for parameter in self.parameters:
            parameter.zero_grad()
        stats = self.compute(payload)
        grads = {index: parameter.grad
                 for index, parameter in enumerate(self.parameters)
                 if parameter.grad is not None}
        for parameter in self.parameters:
            parameter.zero_grad()
        return grads, stats

    def _sync(self, arrays: list[np.ndarray]) -> None:
        """Overwrite parameter storage in place (worker-side per step)."""
        for parameter, value in zip(self.parameters, arrays):
            parameter.data[...] = value

    # -- the step -------------------------------------------------------
    def step(self, payloads: Sequence[Any]) -> EngineStep:
        """Run every shard payload, return the tree-combined gradients.

        The result is bit-identical for any ``workers`` setting because
        shard decomposition happened upstream, per-shard numerics run on
        identical parameter bytes (fork + per-step sync), and the reduce
        orders contributions by shard index — never by completion.
        """
        if not payloads:
            raise ValueError("engine step needs at least one shard payload")
        num_shards = len(payloads)
        waves = split_waves(num_shards, self.config.accumulate)

        raw: list[tuple[int, dict, dict, float]] = []
        if self.config.workers == 1:
            for wave in waves:
                for shard_index in wave:
                    started = time.perf_counter()
                    grads, stats = self._run_shard(payloads[shard_index])
                    elapsed = time.perf_counter() - started
                    raw.append((shard_index, grads, stats, elapsed))
        else:
            pool = self._ensure_pool()
            params = [parameter.data for parameter in self.parameters]
            synced: set[int] = set()
            for wave in waves:
                assignment = assign_round_robin(wave, self.config.workers)
                for worker, shard_ids in sorted(assignment.items()):
                    pool.send(worker,
                              None if worker in synced else params,
                              [(i, payloads[i]) for i in shard_ids])
                    synced.add(worker)
                raw.extend(pool.collect(sorted(assignment)))

        started = time.perf_counter()
        combined = tree_reduce_grads(
            ((shard_index, grads) for shard_index, grads, _, _ in raw),
            num_shards)
        reduce_seconds = time.perf_counter() - started

        by_index = {shard_index: (stats, elapsed)
                    for shard_index, _, stats, elapsed in raw}
        result = EngineStep(
            grads=combined,
            stats=[by_index[i][0] for i in range(num_shards)],
            shard_seconds=[by_index[i][1] for i in range(num_shards)],
            reduce_seconds=reduce_seconds,
        )
        self._observe(result)
        return result

    def load_grads(self, grads: dict[int, np.ndarray]) -> None:
        """Install combined gradients; untouched parameters keep ``None``."""
        for index, parameter in enumerate(self.parameters):
            parameter.grad = grads.get(index)

    def _observe(self, result: EngineStep) -> None:
        registry = get_registry()
        shard_ms = registry.histogram("parallel.shard_ms")
        for seconds in result.shard_seconds:
            shard_ms.observe(seconds * 1e3)
        registry.histogram("parallel.reduce_ms").observe(
            result.reduce_seconds * 1e3)
        registry.histogram("parallel.imbalance").observe(result.imbalance)

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.config.workers,
                                    self._run_shard, self._sync)
        return self._pool

    def close(self) -> None:
        """Stop worker processes; safe to call twice or never start."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
