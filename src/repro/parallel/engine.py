"""The data-parallel step engine: shard → compute → fixed-order reduce.

:class:`DataParallelEngine` owns scheduling, reduction **and worker
supervision**; *what* a shard computes stays with the caller, passed in
as ``compute(payload) -> stats``.  The contract:

- ``compute`` runs forward+backward for one shard payload against the
  live ``parameters`` and returns a JSON-able stats dict; the engine
  harvests ``p.grad`` afterwards (as a sparse ``{param_index: grad}``
  dict) and clears it, so consecutive shards never cross-accumulate.
- Per-shard losses must already carry their global normalization (e.g.
  ``n_shard_targets / n_total_targets`` scaling), so the engine's job is
  a plain unweighted sum — performed by the fixed-order reduction tree
  in :mod:`repro.parallel.reduce`, which is what makes the combined
  gradient bit-identical for every worker count and completion order.
- ``workers=1`` runs shards in-process in shard order (no fork, no
  pickling); ``workers>1`` forks a persistent
  :class:`~repro.parallel.workers.WorkerPool` lazily on the first step
  and syncs parameter arrays to it each step.

**Elastic supervision** (``config.elastic``, default on).  Every
dispatch carries a deadline; while replies are pending the supervisor
watches each worker through three signals — process liveness, the
heartbeat frames a busy worker emits, and the wall-clock deadline.  A
worker that dies, goes silent past ``heartbeat_timeout`` or misses its
``step_deadline`` is reaped (SIGKILL, pipe closed) and replaced by a
fresh fork after exponential backoff, up to ``max_respawns`` per slot;
past that the slot is retired and the pool *degrades* to fewer workers.
Lost shards are deterministically re-executed — on the replacement, or
in-process when no replacement is permitted — which preserves the
bit-identity guarantee: a shard gradient is a pure function of the
step-start parameter bytes and the shard payload, and the reduction
tree orders by shard index, never by who computed it or when.

Telemetry lands in the process registry: ``parallel.shard_ms``/
``parallel.reduce_ms``/``parallel.imbalance`` as before, plus the
supervisor counters ``parallel.worker_deaths``, ``parallel.respawns``
and ``parallel.degraded`` with ``kind="supervisor"`` events (mirrored
through an attached :class:`~repro.runtime.HealthMonitor` when one is
wired in).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import connection as _mp_connection
from typing import Any, Callable, Sequence

import numpy as np

from .config import ParallelConfig
from .plan import assign_round_robin, split_waves
from .reduce import tree_reduce_grads
from .workers import WorkerFailedError, WorkerPool
from ..runtime import get_registry, telemetry_enabled

__all__ = ["DataParallelEngine", "EngineStep"]

#: How often the supervisor wakes to re-examine silent workers while
#: waiting for replies (seconds).  Purely a polling granularity — it
#: bounds detection latency, never correctness.
_POLL_GRANULARITY = 0.05

_RawResult = tuple[int, dict, dict, float]


@dataclass
class EngineStep:
    """What one engine step produced, ordered by shard index."""

    grads: dict[int, np.ndarray]
    stats: list[dict]
    shard_seconds: list[float]
    reduce_seconds: float

    @property
    def imbalance(self) -> float:
        """``max/mean - 1`` over shard compute times (0 = balanced)."""
        if len(self.shard_seconds) < 2:
            return 0.0
        mean = sum(self.shard_seconds) / len(self.shard_seconds)
        if mean <= 0.0:
            return 0.0
        return max(self.shard_seconds) / mean - 1.0


class DataParallelEngine:
    """Schedules shard computations, supervises workers, reduces grads."""

    def __init__(self, parameters: Sequence,
                 compute: Callable[[Any], dict],
                 config: ParallelConfig | None = None,
                 health=None) -> None:
        self.parameters = list(parameters)
        self.compute = compute
        self.config = config or ParallelConfig()
        self.health = health
        self._pool: WorkerPool | None = None
        self._steps = 0
        self._respawn_attempts: dict[int, int] = {}

    # -- shard execution ------------------------------------------------
    def _run_shard(self, payload: Any) -> tuple[dict[int, np.ndarray], dict]:
        """Compute one shard against the live parameters; harvest grads."""
        for parameter in self.parameters:
            parameter.zero_grad()
        stats = self.compute(payload)
        grads = {index: parameter.grad
                 for index, parameter in enumerate(self.parameters)
                 if parameter.grad is not None}
        for parameter in self.parameters:
            parameter.zero_grad()
        return grads, stats

    def _sync(self, arrays: list[np.ndarray]) -> None:
        """Overwrite parameter storage in place (worker-side per step)."""
        for parameter, value in zip(self.parameters, arrays):
            parameter.data[...] = value

    def _run_inline(self, shards: list[tuple[int, Any]]) -> list[_RawResult]:
        """Re-execute shards in the parent process (degraded fallback).

        Bit-identical to a worker executing them: the parent's parameter
        bytes *are* the step-start bytes every worker synced from.
        """
        results: list[_RawResult] = []
        for shard_index, payload in shards:
            started = time.perf_counter()
            grads, stats = self._run_shard(payload)
            elapsed = time.perf_counter() - started
            results.append((shard_index, grads, stats, elapsed))
        return results

    # -- the step -------------------------------------------------------
    def step(self, payloads: Sequence[Any]) -> EngineStep:
        """Run every shard payload, return the tree-combined gradients.

        The result is bit-identical for any ``workers`` setting — and
        for any pattern of worker deaths, hangs, respawns or pool
        degradation — because shard decomposition happened upstream,
        per-shard numerics run on identical parameter bytes (fork +
        per-step sync), and the reduce orders contributions by shard
        index, never by completion or by executor.
        """
        if not payloads:
            raise ValueError("engine step needs at least one shard payload")
        num_shards = len(payloads)
        waves = split_waves(num_shards, self.config.accumulate)
        step_index = self._steps
        self._steps += 1

        raw: list[_RawResult] = []
        if self.config.workers == 1:
            for wave in waves:
                raw.extend(self._run_inline(
                    [(i, payloads[i]) for i in wave]))
        else:
            pool = self._ensure_pool()
            pool.start()
            params = [parameter.data for parameter in self.parameters]
            synced: set[int] = set()
            for wave in waves:
                live = pool.live_slots()
                if not live:
                    raw.extend(self._run_inline(
                        [(i, payloads[i]) for i in wave]))
                    continue
                pending: dict[int, list[tuple[int, Any]]] = {}
                assignment = assign_round_robin(wave, len(live))
                for position, shard_ids in sorted(assignment.items()):
                    self._dispatch(live[position], step_index,
                                   [(i, payloads[i]) for i in shard_ids],
                                   pending, synced, params, raw)
                raw.extend(self._collect(pending, step_index, synced,
                                         params))

        started = time.perf_counter()
        combined = tree_reduce_grads(
            ((shard_index, grads) for shard_index, grads, _, _ in raw),
            num_shards)
        reduce_seconds = time.perf_counter() - started

        by_index = {shard_index: (stats, elapsed)
                    for shard_index, _, stats, elapsed in raw}
        result = EngineStep(
            grads=combined,
            stats=[by_index[i][0] for i in range(num_shards)],
            shard_seconds=[by_index[i][1] for i in range(num_shards)],
            reduce_seconds=reduce_seconds,
        )
        self._observe(result)
        return result

    def load_grads(self, grads: dict[int, np.ndarray]) -> None:
        """Install combined gradients; untouched parameters keep ``None``."""
        for index, parameter in enumerate(self.parameters):
            parameter.grad = grads.get(index)

    # -- elastic supervision --------------------------------------------
    def _dispatch(self, slot: int, step: int, shards: list[tuple[int, Any]],
                  pending: dict[int, list[tuple[int, Any]]],
                  synced: set[int], params: list[np.ndarray],
                  results: list[_RawResult]) -> None:
        """Send an assignment, rerouting through recovery on pipe failure."""
        while True:
            try:
                self._pool.send(slot, step,
                                None if slot in synced else params,
                                shards,
                                deadline=self.config.step_deadline)
            except (BrokenPipeError, EOFError, OSError):
                replacement = self._handle_loss(
                    slot, step, "worker pipe closed at dispatch", synced)
                if replacement is None:
                    results.extend(self._run_inline(shards))
                    return
                slot = replacement
                continue
            synced.add(slot)
            pending[slot] = shards
            return

    def _collect(self, pending: dict[int, list[tuple[int, Any]]], step: int,
                 synced: set[int],
                 params: list[np.ndarray]) -> list[_RawResult]:
        """Gather replies, detecting and recovering worker failures.

        Three detectors run per pending worker: pipe EOF / process exit
        (*died*), silence past ``heartbeat_timeout`` (*wedged*), and the
        dispatch deadline (*stuck or pathologically slow*).  Application
        errors raised inside a shard are not recoverable — re-execution
        is deterministic, so they would fail again — and surface as
        :class:`WorkerFailedError` attributed to the worker and step.
        """
        results: list[_RawResult] = []
        config = self.config
        while pending:
            for slot in sorted(pending):
                if slot not in pending:  # recovered away mid-iteration
                    continue
                status, payload = self._pool.poll(slot, timeout=0)
                if status == "ok":
                    results.extend(payload)
                    del pending[slot]
                    continue
                if status == "error":
                    raise WorkerFailedError(slot, step, payload)
                if status == "hb":
                    continue
                handle = self._pool.handle(slot)
                now = time.monotonic()
                reason = None
                if status == "dead" or not handle.alive():
                    reason = ("worker process died (exitcode="
                              f"{handle.process.exitcode})")
                elif (handle.deadline_at is not None
                        and now > handle.deadline_at):
                    reason = (f"step deadline ({config.step_deadline:g}s) "
                              f"exceeded")
                elif (config.heartbeat_interval > 0
                        and now - handle.last_seen
                        > config.heartbeat_timeout):
                    reason = (f"no heartbeat for "
                              f"{config.heartbeat_timeout:g}s")
                if reason is None:
                    continue
                lost = pending.pop(slot)
                replacement = self._handle_loss(slot, step, reason, synced)
                if replacement is None:
                    results.extend(self._run_inline(lost))
                else:
                    self._dispatch(replacement, step, lost, pending,
                                   synced, params, results)
            if pending:
                _mp_connection.wait(
                    [self._pool.handle(slot).connection
                     for slot in pending],
                    timeout=_POLL_GRANULARITY)
        return results

    def _handle_loss(self, slot: int, step: int, reason: str,
                     synced: set[int]) -> int | None:
        """Reap a failed worker; respawn it or retire the slot.

        Returns the slot number to re-dispatch to (a fresh fork), or
        ``None`` when the slot was retired — the caller then runs the
        lost shards in-process.  Raises :class:`WorkerFailedError` when
        supervision is disabled (``config.elastic=False``).
        """
        self._pool.reap(slot)
        synced.discard(slot)
        self._emit_supervisor("worker_death", step, slot, reason,
                              counter="parallel.worker_deaths")
        if not self.config.elastic:
            raise WorkerFailedError(slot, step, reason)
        attempts = self._respawn_attempts.get(slot, 0)
        if attempts < self.config.max_respawns:
            self._respawn_attempts[slot] = attempts + 1
            backoff = self.config.respawn_backoff * (2 ** attempts)
            if backoff > 0:
                time.sleep(backoff)
            self._pool.respawn(slot)
            self._emit_supervisor(
                "worker_respawn", step, slot,
                f"respawn {attempts + 1}/{self.config.max_respawns} "
                f"after {backoff:g}s backoff",
                counter="parallel.respawns")
            return slot
        self._emit_supervisor(
            "pool_degraded", step, slot,
            f"slot retired after {attempts} respawns; "
            f"{len(self._pool.live_slots())} workers remain",
            counter="parallel.degraded")
        return None

    def _emit_supervisor(self, action: str, step: int, slot: int,
                         reason: str, counter: str) -> None:
        if telemetry_enabled():
            registry = get_registry()
            registry.counter(counter).inc()
            registry.emit({
                "kind": "supervisor",
                "action": action,
                "step": int(step),
                "worker": int(slot),
                "reason": reason,
            })
        if self.health is not None:
            self.health.worker_event(step, slot, reason, action)

    def _observe(self, result: EngineStep) -> None:
        registry = get_registry()
        shard_ms = registry.histogram("parallel.shard_ms")
        for seconds in result.shard_seconds:
            shard_ms.observe(seconds * 1e3)
        registry.histogram("parallel.reduce_ms").observe(
            result.reduce_seconds * 1e3)
        registry.histogram("parallel.imbalance").observe(result.imbalance)

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.config.workers, self._run_shard, self._sync,
                heartbeat_interval=self.config.heartbeat_interval,
                fault_plan=self.config.faults)
        return self._pool

    def close(self) -> None:
        """Stop worker processes; safe to call twice or never start."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
