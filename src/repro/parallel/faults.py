"""Deterministic fault injection for the elastic worker supervisor.

A :class:`FaultPlan` is a seeded, fully explicit list of
:class:`FaultSpec` entries — *which worker slot* misbehaves, *at which
engine step*, and *how* (``die`` / ``hang`` / ``delay``).  The plan is
pickled into every forked worker; the worker consults it at the top of
each step and executes the matching fault **before** computing, so a
test can make worker 1 vanish at step 5 and assert the supervisor's
recovery produced checkpoint bytes identical to an unfaulted run.

Determinism rules:

- faults fire on *engine-local* step indices (the supervisor counts
  steps from 0 each run), never on wall time;
- a spec matches one ``(step, worker, generation)`` coordinate, and
  respawned replacements carry ``generation > 0`` — an injected death
  therefore never re-fires on the replacement and cannot crash-loop a
  run by construction (unless a spec explicitly targets a later
  generation);
- ``FaultPlan.seeded`` derives its specs from a ``SeedSequence`` so two
  harness runs with the same seed inject the same chaos.

The plan rides in :class:`~repro.parallel.ParallelConfig.faults` and is
pure scheduling: it is excluded from ``numeric_signature`` like every
other supervisor knob, because a recovered run is byte-identical to a
healthy one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "parse_fault_plan"]

#: The failure modes the harness can stage, mirroring the supervisor's
#: failure matrix: ``die`` exits the process without replying, ``hang``
#: sleeps past any reasonable step deadline, ``delay`` sleeps briefly
#: and then completes normally (slow, not failed).
FaultKind = str
_KINDS = ("die", "hang", "delay")

#: How long a ``hang`` sleeps when no explicit duration is given — far
#: past any sane ``step_deadline``, so detection (not the sleep) ends it.
_DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One staged fault: ``kind`` at ``(step, worker, generation)``.

    ``seconds`` is the sleep length for ``hang``/``delay`` (ignored by
    ``die``); ``generation`` selects which incarnation of the worker
    slot misbehaves — ``0`` is the originally forked worker, respawned
    replacements count up from there.
    """

    kind: FaultKind
    step: int
    worker: int
    seconds: float = 0.0
    generation: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of {_KINDS}")
        if self.step < 0 or self.worker < 0 or self.generation < 0:
            raise ValueError("step, worker and generation must be >= 0")
        if self.seconds < 0.0:
            raise ValueError("seconds must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of staged faults, indexed by coordinate."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        coordinates = [(s.step, s.worker, s.generation) for s in self.specs]
        if len(set(coordinates)) != len(coordinates):
            raise ValueError("fault plan stages two faults at the same "
                             "(step, worker, generation) coordinate")

    def match(self, step: int, worker: int,
              generation: int) -> FaultSpec | None:
        """The staged fault for this coordinate, if any."""
        for spec in self.specs:
            if (spec.step == step and spec.worker == worker
                    and spec.generation == generation):
                return spec
        return None

    @classmethod
    def seeded(cls, seed: int, steps: int, workers: int,
               n_faults: int = 1, kinds: tuple[FaultKind, ...] = _KINDS,
               hang_seconds: float = _DEFAULT_HANG_SECONDS) -> "FaultPlan":
        """A random-but-reproducible plan over a ``steps x workers`` grid.

        Coordinates are drawn without replacement from a seeded
        generator, so the same seed always stages the same chaos.
        """
        if steps < 1 or workers < 1:
            raise ValueError("steps and workers must be positive")
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        cells = steps * workers
        count = min(n_faults, cells)
        chosen = rng.choice(cells, size=count, replace=False)
        specs = []
        for cell in sorted(int(c) for c in chosen):
            kind = kinds[int(rng.integers(len(kinds)))]
            seconds = (hang_seconds if kind == "hang"
                       else float(rng.uniform(0.0, 0.05)))
            specs.append(FaultSpec(kind=kind, step=cell // workers,
                                   worker=cell % workers, seconds=seconds))
        return cls(specs=tuple(specs))


def execute_fault(spec: FaultSpec) -> None:
    """Run one staged fault inside a worker process.

    ``die`` uses ``os._exit`` so no reply, no flush and no atexit hook
    runs — indistinguishable from a SIGKILL'd or OOM-killed worker.
    ``hang``/``delay`` sleep; the supervisor's step deadline decides
    which of the two it was.
    """
    import os

    if spec.kind == "die":
        os._exit(13)
    time.sleep(spec.seconds or _DEFAULT_HANG_SECONDS)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the CLI's compact fault syntax into a plan.

    The grammar is ``KIND@STEP:WORKER[:SECONDS]``, comma-separated::

        die@5:1              worker 1 exits at step 5
        hang@3:0             worker 0 wedges at step 3 (detect via deadline)
        delay@2:2:0.25       worker 2 sleeps 250ms at step 2, then replies

    Raises ``ValueError`` with the offending clause on malformed input.
    """
    specs = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        try:
            kind, _, rest = clause.partition("@")
            parts = rest.split(":")
            if len(parts) not in (2, 3):
                raise ValueError("expected KIND@STEP:WORKER[:SECONDS]")
            step, worker = int(parts[0]), int(parts[1])
            seconds = float(parts[2]) if len(parts) == 3 else 0.0
            specs.append(FaultSpec(kind=kind, step=step, worker=worker,
                                   seconds=seconds))
        except ValueError as error:
            raise ValueError(
                f"bad fault clause {clause!r}: {error}") from error
    if not specs:
        raise ValueError("fault plan is empty")
    return FaultPlan(specs=tuple(specs))
