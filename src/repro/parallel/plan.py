"""Shard planning: how a batch is cut and scheduled, deterministically.

A :class:`ShardPlan` is a pure function of ``(batch_size, shard_size,
accumulate)``.  Worker count never appears here: workers only pick
shards up round-robin (:func:`assign_round_robin`), they never influence
the decomposition itself.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShardPlan", "plan_shards", "shard_slices", "split_waves",
           "assign_round_robin"]


@dataclass(frozen=True)
class ShardPlan:
    """The deterministic decomposition of one optimizer step.

    ``slices`` are contiguous row ranges of the batch, in batch order;
    ``waves`` groups shard *indices* into sequential dispatch rounds
    (``accumulate`` of them).  Waves bound how much payload is in flight
    at once; they never change gradient numerics because the reduction
    tree runs once over all shards at the end of the step.
    """

    batch_size: int
    shard_size: int
    slices: tuple[slice, ...]
    waves: tuple[tuple[int, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.slices)


def shard_slices(batch_size: int, shard_size: int) -> tuple[slice, ...]:
    """Contiguous row slices covering ``range(batch_size)`` in order."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    return tuple(slice(start, min(start + shard_size, batch_size))
                 for start in range(0, batch_size, shard_size))


def split_waves(num_shards: int, accumulate: int) -> tuple[tuple[int, ...], ...]:
    """Split shard indices into ``accumulate`` contiguous dispatch rounds.

    Earlier rounds take the remainder, every round is non-empty, and
    concatenating the waves always yields ``0..num_shards-1`` in order.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    indices = list(range(num_shards))
    rounds = min(max(1, accumulate), num_shards)
    base, extra = divmod(num_shards, rounds)
    waves: list[tuple[int, ...]] = []
    cursor = 0
    for round_index in range(rounds):
        take = base + (1 if round_index < extra else 0)
        waves.append(tuple(indices[cursor:cursor + take]))
        cursor += take
    return tuple(waves)


def plan_shards(batch_size: int, shard_size: int,
                accumulate: int = 1) -> ShardPlan:
    """Plan one step: slices plus ``accumulate`` contiguous waves."""
    slices = shard_slices(batch_size, shard_size)
    return ShardPlan(batch_size=batch_size, shard_size=shard_size,
                     slices=slices,
                     waves=split_waves(len(slices), accumulate))


def assign_round_robin(indices: tuple[int, ...] | list[int],
                       workers: int) -> dict[int, list[int]]:
    """Deal shard indices to workers ``0..workers-1`` round-robin.

    Only workers that received at least one shard appear in the result,
    so callers never message an idle process.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    assignment: dict[int, list[int]] = {}
    for position, shard_index in enumerate(indices):
        assignment.setdefault(position % workers, []).append(shard_index)
    return assignment
