"""Deterministic fixed-order tree all-reduce over shard gradients.

Floating-point addition is not associative, so "sum the gradients" is
only well-defined once the summation *tree* is pinned down.  This module
pins it: shard contributions are ordered by shard index (never by
arrival order) and folded pairwise, level by level —

    level 0:  g0  g1  g2  g3  g4
    level 1:  (g0+g1)  (g2+g3)  g4
    level 2:  ((g0+g1)+(g2+g3))  g4
    level 3:  (((g0+g1)+(g2+g3))+g4)

The tree depends only on the number of shards, so the combined gradient
is bit-identical for any worker count, any completion order, and any
``accumulate`` wave split.

Gradients travel as ``dict[param_index, ndarray]`` rather than dense
lists: a parameter a shard never touched simply has no entry, and the
union of the dicts preserves the serial path's ``grad is None``
semantics (``Adam.step`` skips those parameters instead of decaying
their moments against a zero gradient).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["tree_combine", "tree_reduce_grads"]


def tree_combine(values: Sequence[np.ndarray | None]) -> np.ndarray | None:
    """Pairwise-fold ``values`` in index order; ``None`` means "absent".

    ``None`` entries are identity elements (the shard produced no
    gradient for this parameter), not zeros: combining ``None`` with an
    array returns the array itself, and all-``None`` input returns
    ``None`` so callers can keep ``p.grad is None``.
    """
    level: list[np.ndarray | None] = list(values)
    if not level:
        return None
    while len(level) > 1:
        folded: list[np.ndarray | None] = []
        for left, right in zip(level[0::2], level[1::2]):
            folded.append(_pairwise_add(left, right))
        if len(level) % 2:
            folded.append(level[-1])
        level = folded
    return level[0]


def _pairwise_add(left: np.ndarray | None,
                  right: np.ndarray | None) -> np.ndarray | None:
    if left is None:
        return right
    if right is None:
        return left
    return left + right


def tree_reduce_grads(
        shard_grads: Iterable[tuple[int, Mapping[int, np.ndarray]]],
        num_shards: int) -> dict[int, np.ndarray]:
    """Combine per-shard gradient dicts into one, in fixed shard order.

    Parameters
    ----------
    shard_grads:
        ``(shard_index, {param_index: grad})`` pairs in *any* order —
        the reduction sorts by shard index, which is what makes the
        result invariant to completion/permutation order.
    num_shards:
        Expected shard count; missing or duplicate indices raise, so a
        lost worker message can never silently drop a shard's gradient.
    """
    by_shard: list[Mapping[int, np.ndarray] | None] = [None] * num_shards
    for shard_index, grads in shard_grads:
        if not 0 <= shard_index < num_shards:
            raise ValueError(
                f"shard index {shard_index} out of range for "
                f"{num_shards} shards")
        if by_shard[shard_index] is not None:
            raise ValueError(f"duplicate gradients for shard {shard_index}")
        by_shard[shard_index] = grads
    missing = [i for i, grads in enumerate(by_shard) if grads is None]
    if missing:
        raise ValueError(f"missing gradients for shard(s) {missing}")

    param_indices = sorted({param_index
                            for grads in by_shard
                            for param_index in grads})  # type: ignore[union-attr]
    combined: dict[int, np.ndarray] = {}
    for param_index in param_indices:
        value = tree_combine([grads.get(param_index)  # type: ignore[union-attr]
                              for grads in by_shard])
        if value is not None:
            combined[param_index] = value
    return combined
