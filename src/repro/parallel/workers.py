"""The persistent OS-process worker pool behind the data-parallel engine.

Workers are forked (``multiprocessing.get_context("fork")``) so they
inherit the model, optimizer parameters and corpus by address-space copy
— no model pickling — and they **stay alive across steps**: each worker
runs a request/response loop over its private duplex pipe instead of
being re-forked per step.  The framing:

parent → worker
    ``("step", step_index, params_or_None, [(shard_index, payload), …])``
    ``("stop",)``

worker → parent
    ``("hb",)``                         liveness heartbeat while computing
    ``("ok", [(shard_index, grads, stats, seconds), …])``
    ``("error", traceback_text)``       the shard compute raised

``params`` (the current parameter arrays) rides along only on the first
message a worker incarnation sees in a step; the worker writes them into
its inherited parameter objects before computing, so forked copies never
drift from the parent.  While a worker is computing, a daemon heartbeat
thread sends ``("hb",)`` frames every ``heartbeat_interval`` seconds
(pipe writes serialized by a lock) so the supervisor can distinguish a
*wedged* process (silent) from a *slow* one (still beating) — see the
failure matrix in DESIGN.md "Elastic data-parallel training".

The pool manages **worker slots**: each slot holds one live process at a
time, and :meth:`WorkerPool.respawn` replaces a reaped slot with a fresh
fork carrying an incremented ``generation`` (fault-injection plans key
on it so a staged death never re-fires on the replacement).  Failure
*policy* — deadlines, respawn backoff, degradation, shard re-execution —
lives in :class:`~repro.parallel.engine.DataParallelEngine`; this module
only provides the mechanism.

Determinism note: nothing here orders the gradient sum.  Workers may
finish in any order; the parent hands everything to
:func:`~repro.parallel.reduce.tree_reduce_grads`, which sorts by shard
index before folding.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from typing import Any, Callable

import numpy as np

from .faults import FaultPlan, execute_fault

__all__ = ["WorkerError", "WorkerFailedError", "WorkerPool", "WorkerHandle"]

#: Grace given to a worker to exit after a ``stop``/SIGTERM before the
#: next escalation level (seconds).
_JOIN_GRACE = 5.0
_TERM_GRACE = 1.0


class WorkerError(RuntimeError):
    """A worker process failed; carries the remote traceback text."""


class WorkerFailedError(WorkerError):
    """A specific worker failed at a specific step.

    Raised when the supervisor cannot (or is configured not to) recover
    a worker loss, and for shard computes that raised remotely — the
    failure is attributed to ``worker`` and ``step`` so operators see
    *which* process died *when* instead of a raw pipe traceback.
    """

    def __init__(self, worker: int, step: int, reason: str) -> None:
        who = f"worker {worker}" if worker >= 0 else "worker transport"
        super().__init__(f"{who} failed at step {step}: {reason}")
        self.worker = worker
        self.step = step
        self.reason = reason


def _send_frame(connection, frame: tuple, lock: threading.Lock) -> bool:
    """Best-effort pipe send; ``False`` when the peer is gone."""
    try:
        with lock:
            # The send lock only serializes heartbeat vs reply frames
            # on one pipe; a wedged peer is reaped by the supervisor's
            # heartbeat timeout, never waited out here.
            connection.send(frame)  # lock-ok: supervisor reaps wedged peers
        return True
    except (BrokenPipeError, EOFError, OSError):
        return False


def _worker_main(connection, slot: int, generation: int,
                 run_shard: Callable[[Any], tuple[dict, dict]],
                 sync: Callable[[list[np.ndarray]], None],
                 heartbeat_interval: float,
                 fault_plan: FaultPlan | None) -> None:
    """Child loop: recv a step, heartbeat while computing, reply."""
    lock = threading.Lock()
    busy = threading.Event()
    stopping = threading.Event()

    def beat() -> None:
        while not stopping.wait(heartbeat_interval):
            if busy.is_set():
                if not _send_frame(connection, ("hb",), lock):
                    return

    heartbeat = threading.Thread(target=beat, daemon=True)
    if heartbeat_interval > 0:
        heartbeat.start()
    try:
        while True:
            message = connection.recv()
            if message[0] == "stop":
                break
            _, step, params, assigned = message
            busy.set()
            try:
                fault = (fault_plan.match(step, slot, generation)
                         if fault_plan is not None else None)
                if fault is not None:
                    execute_fault(fault)  # die exits; hang/delay sleep
                if params is not None:
                    sync(params)
                results = []
                for shard_index, payload in assigned:
                    started = time.perf_counter()
                    grads, stats = run_shard(payload)
                    elapsed = time.perf_counter() - started
                    results.append((shard_index, grads, stats, elapsed))
                reply = ("ok", results)
            except BaseException:
                reply = ("error", traceback.format_exc())
            finally:
                busy.clear()
            if not _send_frame(connection, reply, lock):
                break
    except (EOFError, KeyboardInterrupt):
        stopping.set()  # parent went away or interrupted: quiet exit
    except OSError:
        stopping.set()  # pipe torn down mid-recv: same as EOF
    finally:
        stopping.set()
        connection.close()


class WorkerHandle:
    """One live worker incarnation bound to a slot.

    Tracks the liveness bookkeeping the supervisor reads: when the pipe
    last produced any frame (``last_seen``) and the wall-clock deadline
    of the in-flight dispatch (``deadline_at``, ``None`` when idle or
    deadlines are disabled).
    """

    __slots__ = ("slot", "generation", "process", "connection",
                 "last_seen", "deadline_at")

    def __init__(self, slot: int, generation: int, process,
                 connection) -> None:
        self.slot = slot
        self.generation = generation
        self.process = process
        self.connection = connection
        self.last_seen = time.monotonic()
        self.deadline_at: float | None = None

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """N persistent forked worker slots, one duplex pipe each, lazy start."""

    def __init__(self, workers: int,
                 run_shard: Callable[[Any], tuple[dict, dict]],
                 sync: Callable[[list[np.ndarray]], None], *,
                 heartbeat_interval: float = 0.5,
                 fault_plan: FaultPlan | None = None,
                 stop_grace: float = _JOIN_GRACE,
                 term_grace: float = _TERM_GRACE) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._run_shard = run_shard
        self._sync = sync
        self._heartbeat_interval = heartbeat_interval
        self._fault_plan = fault_plan
        self._stop_grace = stop_grace
        self._term_grace = term_grace
        self._handles: dict[int, WorkerHandle] = {}
        self._generations: dict[int, int] = {}
        self._started = False

    # -- membership -----------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def live_slots(self) -> list[int]:
        """Slots that currently hold a process, in slot order."""
        return sorted(self._handles)

    def handle(self, slot: int) -> WorkerHandle:
        return self._handles[slot]

    # -- lifecycle ------------------------------------------------------
    def _context(self):
        """The 'fork' context (POSIX): spawn/forkserver would re-import
        rather than inherit the live model, and this engine's contract
        is inherit-by-fork."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover — non-POSIX only
            raise WorkerError(
                "data-parallel workers need the 'fork' start method; "
                "use workers=1 on this platform") from error

    def start(self) -> None:
        """Fork one process per slot; idempotent."""
        if self._started:
            return
        self._started = True
        for slot in range(self.workers):
            self.spawn(slot)

    def spawn(self, slot: int) -> WorkerHandle:
        """Fork a fresh process into ``slot`` (generation increments)."""
        if slot in self._handles:
            raise WorkerError(f"slot {slot} already holds a live worker")
        generation = self._generations.get(slot, -1) + 1
        self._generations[slot] = generation
        context = self._context()
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(child_end, slot, generation, self._run_shard, self._sync,
                  self._heartbeat_interval, self._fault_plan),
            daemon=True)
        process.start()
        child_end.close()
        handle = WorkerHandle(slot, generation, process, parent_end)
        self._handles[slot] = handle
        return handle

    def respawn(self, slot: int) -> WorkerHandle:
        """Replace a reaped slot with a fresh fork (next generation)."""
        return self.spawn(slot)

    def reap(self, slot: int) -> None:
        """Forcibly remove a slot's process: SIGKILL, join, close pipe.

        SIGKILL (not SIGTERM) because the slot is only reaped once the
        supervisor has declared it dead or wedged — a process that
        missed its deadline cannot be trusted to honor a signal handler,
        and a half-written reply must never be read.
        """
        handle = self._handles.pop(slot, None)
        if handle is None:
            return
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=_JOIN_GRACE)
        handle.connection.close()

    def close(self) -> None:
        """Stop and join every worker; idempotent, never raises.

        Escalation ladder per process: cooperative ``("stop",)`` frame →
        ``join(5s)`` → SIGTERM → ``join(1s)`` → SIGKILL → ``join``.  Both
        pipe ends are always closed (the child end was closed right
        after fork), so no descriptor and no zombie survives close.
        """
        lock = threading.Lock()
        for handle in self._handles.values():
            _send_frame(handle.connection, ("stop",), lock)
        for handle in self._handles.values():
            handle.process.join(timeout=self._stop_grace)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=self._term_grace)
            if handle.process.is_alive():  # ignores SIGTERM: escalate
                handle.process.kill()
                handle.process.join()
            handle.connection.close()
        self._handles = {}
        self._started = False

    # -- transport ------------------------------------------------------
    def send(self, slot: int, step: int, params: list[np.ndarray] | None,
             assigned: list[tuple[int, Any]],
             deadline: float = 0.0) -> None:
        """Dispatch one wave's shards (plus optional parameter sync).

        Transport failures (the worker died between steps) surface as
        the underlying ``BrokenPipeError``/``OSError`` so the supervisor
        can reroute the shards; they are never swallowed here.
        """
        self.start()
        handle = self._handles[slot]
        handle.connection.send(("step", step, params, assigned))
        now = time.monotonic()
        handle.last_seen = now
        handle.deadline_at = now + deadline if deadline > 0 else None

    def poll(self, slot: int, timeout: float = 0.0):
        """Receive the next frame from a slot within ``timeout``.

        Returns one of ``("ok", results)``, ``("error", text)``,
        ``("hb", None)``, ``("dead", None)`` (pipe closed / process
        gone) or ``(None, None)`` when nothing arrived in time.  Any
        received frame refreshes the handle's ``last_seen``.
        """
        handle = self._handles[slot]
        try:
            if not handle.connection.poll(timeout):
                return (None, None)
            frame = handle.connection.recv()
        except (EOFError, OSError):
            return ("dead", None)
        handle.last_seen = time.monotonic()
        if frame[0] == "hb":
            return ("hb", None)
        if frame[0] == "ok":
            handle.deadline_at = None
            return ("ok", frame[1])
        if frame[0] == "error":
            handle.deadline_at = None
            return ("error", frame[1])
        return ("dead", None)  # unknown frame: treat the peer as broken

    def collect(self, slots: list[int],
                step: int = 0) -> list[tuple[int, dict, dict, float]]:
        """Gather one reply from each slot; raises on any shard failure.

        This is the *non-elastic* collection path (no deadlines, no
        respawn): a dead worker raises :class:`WorkerFailedError`
        attributed to its slot and step.  The supervisor in
        :class:`~repro.parallel.engine.DataParallelEngine` implements
        the fault-tolerant path on top of :meth:`poll`.
        """
        results: list[tuple[int, dict, dict, float]] = []
        for slot in slots:
            while True:
                status, payload = self.poll(slot, timeout=None)
                if status == "hb":
                    continue
                if status == "ok":
                    results.extend(payload)
                    break
                if status == "error":
                    raise WorkerFailedError(slot, step, payload)
                exitcode = self._handles[slot].process.exitcode
                raise WorkerFailedError(
                    slot, step,
                    f"died without replying (exitcode={exitcode})")
        return results

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
