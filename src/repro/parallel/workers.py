"""The OS-process worker pool behind the data-parallel engine.

Workers are forked (``multiprocessing.get_context("fork")``), so they
inherit the model, optimizer parameters and corpus by address-space copy
— no model pickling.  Per step the parent sends each participating
worker one message per wave over its private pipe:

    ("step", params_or_None, [(shard_index, payload), ...])

``params`` (the current parameter arrays) rides along only on the first
message a worker sees in a step; the worker writes them into its
inherited parameter objects before computing, so forked copies never
drift from the parent.  The reply is either

    ("ok", [(shard_index, grads_dict, stats, seconds), ...])

or ``("error", traceback_text)``, which the parent re-raises as
:class:`WorkerError` — a failed shard can never be silently dropped
(the fixed-order reduce would refuse the incomplete set anyway).

Determinism note: nothing here orders the gradient sum.  Workers may
finish in any order; the parent hands everything to
:func:`~repro.parallel.reduce.tree_reduce_grads`, which sorts by shard
index before folding.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Callable

import numpy as np

__all__ = ["WorkerError", "WorkerPool"]


class WorkerError(RuntimeError):
    """A worker process failed; carries the remote traceback text."""


def _worker_main(connection,
                 run_shard: Callable[[Any], tuple[dict, dict]],
                 sync: Callable[[list[np.ndarray]], None]) -> None:
    """Child loop: sync parameters, compute assigned shards, reply."""
    try:
        while True:
            message = connection.recv()
            if message[0] == "stop":
                break
            _, params, assigned = message
            try:
                if params is not None:
                    sync(params)
                results = []
                for shard_index, payload in assigned:
                    started = time.perf_counter()
                    grads, stats = run_shard(payload)
                    elapsed = time.perf_counter() - started
                    results.append((shard_index, grads, stats, elapsed))
                connection.send(("ok", results))
            except BaseException:
                connection.send(("error", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        connection.close()


class WorkerPool:
    """N forked processes, one duplex pipe each, lazy start."""

    def __init__(self, workers: int,
                 run_shard: Callable[[Any], tuple[dict, dict]],
                 sync: Callable[[list[np.ndarray]], None]) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._run_shard = run_shard
        self._sync = sync
        self._processes: list = []
        self._connections: list = []

    @property
    def started(self) -> bool:
        return bool(self._processes)

    def start(self) -> None:
        """Fork the workers.  Requires the 'fork' start method (POSIX):
        spawn/forkserver would re-import rather than inherit the live
        model, and this engine's contract is inherit-by-fork."""
        if self.started:
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover — non-POSIX only
            raise WorkerError(
                "data-parallel workers need the 'fork' start method; "
                "use workers=1 on this platform") from error
        for _ in range(self.workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_end, self._run_shard, self._sync),
                daemon=True)
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)

    def send(self, worker: int, params: list[np.ndarray] | None,
             assigned: list[tuple[int, Any]]) -> None:
        """Dispatch one wave's shards (plus optional parameter sync)."""
        self.start()
        self._connections[worker].send(("step", params, assigned))

    def collect(self, workers: list[int]) -> list[tuple[int, dict, dict, float]]:
        """Gather replies from ``workers``; raises on any shard failure."""
        results: list[tuple[int, dict, dict, float]] = []
        failures: list[str] = []
        for worker in workers:
            try:
                status, payload = self._connections[worker].recv()
            except (EOFError, OSError):
                failures.append(f"worker {worker} died without replying "
                                f"(exitcode={self._processes[worker].exitcode})")
                continue
            if status == "error":
                failures.append(f"worker {worker} raised:\n{payload}")
            else:
                results.extend(payload)
        if failures:
            raise WorkerError("; ".join(failures))
        return results

    def close(self) -> None:
        """Stop and join every worker; idempotent, never raises."""
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover — stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for connection in self._connections:
            connection.close()
        self._processes = []
        self._connections = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
