"""Pretraining substrate: masking procedures, objectives, training loop."""

from .masking import (
    IGNORE_INDEX,
    MaskedBatch,
    combine_masking,
    mask_for_mer,
    mask_for_mlm,
)
from .objectives import masked_accuracy, mer_loss, mlm_loss
from .trainer import EmptyCorpusError, Pretrainer, PretrainConfig, \
    TrainerCheckpoint

__all__ = [
    "IGNORE_INDEX", "MaskedBatch", "mask_for_mlm", "mask_for_mer",
    "combine_masking",
    "mlm_loss", "mer_loss", "masked_accuracy",
    "PretrainConfig", "Pretrainer", "TrainerCheckpoint",
    "EmptyCorpusError",
]
