"""Masking procedures for the pretraining objectives (hands-on §3.3).

Two procedures, matching the exercise:

- *masked language modeling* over table cells — whole-cell masking by
  default (all subwords of a chosen cell are masked together, so the model
  cannot copy a cell's suffix from its prefix), with BERT's 80/10/10
  replace/random/keep scheme;
- *masked entity recovery* — entity-linked cells lose both their surface
  tokens and their entity-embedding channel; the target is the entity id.

Both return fresh arrays; the input batch is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace

import numpy as np

from ..serialize import BatchedFeatures, SerializedTable, TokenRole
from ..text import Vocab

__all__ = ["MaskedBatch", "mask_for_mlm", "mask_for_mer", "IGNORE_INDEX"]

IGNORE_INDEX = -100


@dataclass
class MaskedBatch:
    """A masked input batch plus per-position prediction targets."""

    batch: BatchedFeatures
    mlm_targets: np.ndarray   # (B, T); IGNORE_INDEX where not predicted
    mer_targets: np.ndarray   # (B, T); IGNORE_INDEX where not predicted

    @property
    def num_mlm_targets(self) -> int:
        return int((self.mlm_targets != IGNORE_INDEX).sum())

    @property
    def num_mer_targets(self) -> int:
        return int((self.mer_targets != IGNORE_INDEX).sum())


def _copy_batch(batch: BatchedFeatures) -> BatchedFeatures:
    return dataclass_replace(
        batch,
        token_ids=batch.token_ids.copy(),
        entity_ids=batch.entity_ids.copy(),
    )


def _empty_targets(batch: BatchedFeatures) -> np.ndarray:
    return np.full(batch.token_ids.shape, IGNORE_INDEX, dtype=np.int64)


def mask_for_mlm(batch: BatchedFeatures, serialized: list[SerializedTable],
                 vocab: Vocab, rng: np.random.Generator,
                 mask_probability: float = 0.15,
                 whole_cell: bool = True,
                 vocab_size: int | None = None) -> MaskedBatch:
    """Mask cells (or individual tokens) for masked language modeling.

    Parameters
    ----------
    whole_cell:
        If True (default), masking units are whole cell/header spans; if
        False, independent tokens — the ablation of design choice 1 in
        DESIGN.md.
    vocab_size:
        Range for the 10% random-replacement tokens; defaults to
        ``len(vocab)``.
    """
    if not 0.0 < mask_probability <= 1.0:
        raise ValueError("mask_probability must be in (0, 1]")
    vocab_size = vocab_size or len(vocab)
    masked = _copy_batch(batch)
    targets = _empty_targets(batch)

    for i, table in enumerate(serialized):
        if whole_cell:
            spans = list(table.cell_spans.values()) + list(table.header_spans.values())
            for start, end in spans:
                if end <= start or rng.random() >= mask_probability:
                    continue
                targets[i, start:end] = batch.token_ids[i, start:end]
                draw = rng.random()
                if draw < 0.8:
                    masked.token_ids[i, start:end] = vocab.mask_id
                elif draw < 0.9:
                    masked.token_ids[i, start:end] = rng.integers(
                        0, vocab_size, size=end - start)
        else:
            maskable = np.isin(batch.roles[i], (TokenRole.CELL, TokenRole.HEADER,
                                                TokenRole.CONTEXT))
            maskable &= np.arange(batch.seq_len) < batch.lengths[i]
            for position in np.flatnonzero(maskable):
                if rng.random() >= mask_probability:
                    continue
                targets[i, position] = batch.token_ids[i, position]
                draw = rng.random()
                if draw < 0.8:
                    masked.token_ids[i, position] = vocab.mask_id
                elif draw < 0.9:
                    masked.token_ids[i, position] = rng.integers(0, vocab_size)

    return MaskedBatch(masked, targets, _empty_targets(batch))


def mask_for_mer(batch: BatchedFeatures, serialized: list[SerializedTable],
                 vocab: Vocab, rng: np.random.Generator,
                 mask_probability: float = 0.3) -> MaskedBatch:
    """Mask entity cells for masked entity recovery.

    A masked entity cell loses its surface tokens (→ ``[MASK]``) *and* its
    entity channel (→ 0); the target at every position of the span is the
    entity slot id (KB entity id + 1, as stored in the features).
    """
    if not 0.0 < mask_probability <= 1.0:
        raise ValueError("mask_probability must be in (0, 1]")
    masked = _copy_batch(batch)
    mer_targets = _empty_targets(batch)

    for i, table in enumerate(serialized):
        for (row, column), (start, end) in table.cell_spans.items():
            if end <= start:
                continue
            entity_slot = int(batch.entity_ids[i, start])
            if entity_slot == 0 or rng.random() >= mask_probability:
                continue
            mer_targets[i, start:end] = entity_slot
            masked.token_ids[i, start:end] = vocab.mask_id
            masked.entity_ids[i, start:end] = 0

    return MaskedBatch(masked, _empty_targets(batch), mer_targets)


def combine_masking(mlm: MaskedBatch, mer: MaskedBatch) -> MaskedBatch:
    """Merge an MLM-masked and a MER-masked view of the same batch.

    MER masking wins on overlapping spans (its positions already hide both
    channels); MLM targets on MER-masked positions are dropped to avoid
    predicting tokens whose entity is also hidden.
    """
    batch = mer.batch
    token_ids = np.where(mer.mer_targets != IGNORE_INDEX,
                         mer.batch.token_ids, mlm.batch.token_ids)
    merged = dataclass_replace(batch, token_ids=token_ids,
                               entity_ids=mer.batch.entity_ids.copy())
    mlm_targets = np.where(mer.mer_targets != IGNORE_INDEX,
                           IGNORE_INDEX, mlm.mlm_targets)
    return MaskedBatch(merged, mlm_targets, mer.mer_targets.copy())


__all__.append("combine_masking")
