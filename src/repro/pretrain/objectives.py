"""Pretraining loss computation over masked batches."""

from __future__ import annotations

import numpy as np

from .masking import IGNORE_INDEX, MaskedBatch
from ..nn import Tensor, cross_entropy

__all__ = ["mlm_loss", "mer_loss", "masked_accuracy"]


def mlm_loss(logits: Tensor, masked: MaskedBatch) -> Tensor:
    """Cross entropy at MLM-masked positions (0 if none were masked)."""
    return cross_entropy(logits, masked.mlm_targets, ignore_index=IGNORE_INDEX)


def mer_loss(logits: Tensor, masked: MaskedBatch) -> Tensor:
    """Cross entropy at MER-masked positions (0 if none were masked)."""
    return cross_entropy(logits, masked.mer_targets, ignore_index=IGNORE_INDEX)


def masked_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Fraction of masked positions predicted exactly (NaN-free).

    Returns 0.0 when nothing is masked, so training logs stay plottable.
    """
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    keep = targets != IGNORE_INDEX
    if not keep.any():
        return 0.0
    predictions = data.argmax(axis=-1)
    return float((predictions[keep] == targets[keep]).mean())
