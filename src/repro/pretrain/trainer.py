"""The pretraining loop (Fig. 1, pipeline (1); hands-on §3.3).

The :class:`Pretrainer` works with any :class:`~repro.models.TableEncoder`:
models without their own MLM head (everything except TURL) get one attached
over their token embedding, so the vanilla-vs-structure-aware comparison is
apples-to-apples.  Masked entity recovery is enabled automatically when the
model exposes a ``mer_head`` (TURL).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from .masking import combine_masking, mask_for_mer, mask_for_mlm
from .objectives import masked_accuracy, mer_loss, mlm_loss
from ..models import MlmHead, TableEncoder
from ..nn import Adam, LinearWarmupSchedule, clip_gradients
from ..runtime import TrainRecord, emit_train_record
from ..tables import Table

__all__ = ["PretrainConfig", "StepRecord", "Pretrainer"]


@dataclass(frozen=True)
class PretrainConfig:
    """Hyperparameters of a pretraining run."""

    steps: int = 60
    batch_size: int = 8
    learning_rate: float = 3e-3
    warmup_fraction: float = 0.1
    mask_probability: float = 0.15
    mer_mask_probability: float = 0.3
    whole_cell_masking: bool = True
    use_mlm: bool = True
    use_mer: bool = True          # only takes effect when the model supports it
    grad_clip: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1 or self.batch_size < 1:
            raise ValueError("steps and batch_size must be positive")
        if not (self.use_mlm or self.use_mer):
            raise ValueError("at least one pretraining objective must be enabled")


class StepRecord(TrainRecord):
    """Deprecated alias of :class:`repro.runtime.TrainRecord`.

    Accepts the legacy constructor signature (``mlm_loss``,
    ``mer_accuracy``, ``learning_rate``, ...) and maps it onto the
    unified record; the per-objective fields land in ``extras`` and stay
    readable as attributes.  New code should use ``TrainRecord``.
    """

    def __init__(self, step: int, loss: float = 0.0, mlm_loss: float = 0.0,
                 mer_loss: float = 0.0, mlm_accuracy: float = 0.0,
                 mer_accuracy: float = 0.0, learning_rate: float = 0.0,
                 grad_norm: float = 0.0, **kwargs) -> None:
        warnings.warn(
            "StepRecord is deprecated; use repro.runtime.TrainRecord",
            DeprecationWarning, stacklevel=2)
        extras = dict(kwargs.pop("extras", {}))
        extras.update(mlm_loss=mlm_loss, mer_loss=mer_loss,
                      mlm_accuracy=mlm_accuracy, mer_accuracy=mer_accuracy)
        super().__init__(step=step, loss=loss,
                         lr=kwargs.pop("lr", learning_rate),
                         grad_norm=grad_norm, extras=extras, **kwargs)


class Pretrainer:
    """Runs MLM (+MER where supported) pretraining over a table corpus."""

    def __init__(self, model: TableEncoder, config: PretrainConfig | None = None) -> None:
        self.model = model
        self.config = config or PretrainConfig()
        self.rng = np.random.default_rng(self.config.seed)

        if hasattr(model, "mlm_head"):
            self.mlm_head = model.mlm_head
            extra_params: list = []
        else:
            self.mlm_head = MlmHead(model.config.dim,
                                    model.token_embedding.weight, self.rng)
            extra_params = [p for name, p in self.mlm_head.named_parameters()
                            if "tied_weight" not in name]
        self.supports_mer = hasattr(model, "mer_head")

        parameters = list(model.parameters())
        seen = {id(p) for p in parameters}
        parameters += [p for p in extra_params if id(p) not in seen]
        self.optimizer = Adam(parameters, lr=self.config.learning_rate)
        warmup = max(1, int(self.config.steps * self.config.warmup_fraction))
        self.schedule = LinearWarmupSchedule(
            self.config.learning_rate, warmup, self.config.steps + 1)
        self.history: list[TrainRecord] = []

    # ------------------------------------------------------------------
    def _sample_tables(self, corpus: list[Table]) -> list[Table]:
        count = min(self.config.batch_size, len(corpus))
        indices = self.rng.choice(len(corpus), size=count, replace=False)
        return [corpus[int(i)] for i in indices]

    def _masked_batch(self, tables: list[Table]):
        batch, serialized = self.model.batch(tables)
        vocab = self.model.tokenizer.vocab
        use_mer = self.config.use_mer and self.supports_mer
        if self.config.use_mlm and use_mer:
            mlm = mask_for_mlm(batch, serialized, vocab, self.rng,
                               mask_probability=self.config.mask_probability,
                               whole_cell=self.config.whole_cell_masking)
            mer = mask_for_mer(batch, serialized, vocab, self.rng,
                               mask_probability=self.config.mer_mask_probability)
            return combine_masking(mlm, mer)
        if use_mer:
            return mask_for_mer(batch, serialized, vocab, self.rng,
                                mask_probability=self.config.mer_mask_probability)
        return mask_for_mlm(batch, serialized, vocab, self.rng,
                            mask_probability=self.config.mask_probability,
                            whole_cell=self.config.whole_cell_masking)

    # ------------------------------------------------------------------
    def train_step(self, corpus: list[Table]) -> TrainRecord:
        """One optimization step over a sampled batch; returns the record."""
        step = len(self.history)
        started = time.perf_counter()
        masked = self._masked_batch(self._sample_tables(corpus))
        tokens = int(masked.batch.token_ids.size)

        self.optimizer.zero_grad()
        hidden = self.model(masked.batch)

        losses = []
        mlm_value = mer_value = 0.0
        mlm_acc = mer_acc = 0.0
        if self.config.use_mlm and masked.num_mlm_targets:
            logits = self.mlm_head(hidden)
            loss = mlm_loss(logits, masked)
            losses.append(loss)
            mlm_value = float(loss.data)
            mlm_acc = masked_accuracy(logits, masked.mlm_targets)
        if self.supports_mer and self.config.use_mer and masked.num_mer_targets:
            logits = self.model.mer_head(hidden)
            loss = mer_loss(logits, masked)
            losses.append(loss)
            mer_value = float(loss.data)
            mer_acc = masked_accuracy(logits, masked.mer_targets)

        if losses:
            total = losses[0]
            for extra in losses[1:]:
                total = total + extra
            total.backward()
            grad_norm = clip_gradients(self.optimizer.parameters,
                                       self.config.grad_clip)
            self.optimizer.lr = self.schedule(step)
            self.optimizer.step()
            total_value = float(total.data)
        else:
            grad_norm = 0.0
            total_value = 0.0

        record = TrainRecord(
            step=step, loss=total_value, lr=self.optimizer.lr,
            grad_norm=grad_norm, wall_time=time.perf_counter() - started,
            tokens=tokens,
            extras={"mlm_loss": mlm_value, "mer_loss": mer_value,
                    "mlm_accuracy": mlm_acc, "mer_accuracy": mer_acc},
        )
        self.history.append(record)
        emit_train_record(record, source="pretrain")
        return record

    def train(self, corpus: list[Table]) -> list[TrainRecord]:
        """Run the configured number of steps; returns the full history."""
        if not corpus:
            raise ValueError("pretraining corpus is empty")
        self.model.train()
        for _ in range(self.config.steps):
            self.train_step(corpus)
        self.model.eval()
        return self.history
