"""The pretraining loop (Fig. 1, pipeline (1); hands-on §3.3).

The :class:`Pretrainer` works with any :class:`~repro.models.TableEncoder`:
models without their own MLM head (everything except TURL) get one attached
over their token embedding, so the vanilla-vs-structure-aware comparison is
apples-to-apples.  Masked entity recovery is enabled automatically when the
model exposes a ``mer_head`` (TURL).

The loop is fault-tolerant:

- :class:`TrainerCheckpoint` captures the *full* run state — model and
  (external) MLM-head weights, Adam moments and step count, LR-schedule
  position, the ``np.random.Generator`` bit-generator state, and the
  step history — so :meth:`Pretrainer.resume` continues a run
  bit-identically to one that was never interrupted;
- snapshots are written every ``checkpoint_every`` steps via the atomic
  npz+manifest writer in :mod:`repro.nn.io`, with bounded retention
  (``keep_checkpoints``), and resuming from a directory falls back to
  the newest snapshot that still verifies;
- a :class:`~repro.runtime.HealthMonitor` checks loss and gradient norm
  every step; bad steps are skipped before they reach ``Adam.step`` and
  a streak of them rolls the trainer back to its last good checkpoint
  with a reduced learning rate.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import asdict, dataclass, field
from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import Callable

import numpy as np

from .masking import IGNORE_INDEX, MaskedBatch, combine_masking, \
    mask_for_mer, mask_for_mlm
from .objectives import masked_accuracy, mer_loss, mlm_loss
from ..corpus.stream import EmptyCorpusError, ShardWindow, StreamingCorpus
from ..models import MlmHead, TableEncoder
from ..models.base import forward_bindings
from ..nn import Adam, LinearWarmupSchedule, Tensor, clip_gradients
from ..nn.compile import ProgramCache, TapeExecutor, binding_signature, \
    record_program
from ..parallel import DataParallelEngine, ParallelConfig, \
    WorkerFailedError, shard_slices
from ..nn.io import (
    CheckpointError,
    latest_valid_checkpoint,
    read_npz_verified,
    write_npz_atomic,
)
from ..runtime import (
    HealthConfig,
    HealthMonitor,
    TrainRecord,
    TrainingDivergedError,
    emit_train_record,
    get_registry,
)
from ..tables import Table

__all__ = ["PretrainConfig", "Pretrainer", "TrainerCheckpoint",
           "EmptyCorpusError"]

TRAINER_CHECKPOINT_VERSION = 1
_CHECKPOINT_PREFIX = "ckpt-"

# PretrainConfig fields that must match between a checkpoint and the
# trainer resuming from it for the continuation to be bit-identical.
_RESUME_CRITICAL_FIELDS = (
    "steps", "batch_size", "learning_rate", "warmup_fraction",
    "mask_probability", "mer_mask_probability", "whole_cell_masking",
    "use_mlm", "use_mer", "grad_clip", "seed", "parallel",
)


@dataclass(frozen=True)
class PretrainConfig:
    """Hyperparameters of a pretraining run."""

    steps: int = 60
    batch_size: int = 8
    learning_rate: float = 3e-3
    warmup_fraction: float = 0.1
    mask_probability: float = 0.15
    mer_mask_probability: float = 0.3
    whole_cell_masking: bool = True
    use_mlm: bool = True
    use_mer: bool = True          # only takes effect when the model supports it
    grad_clip: float = 1.0
    seed: int = 0
    checkpoint_every: int = 0     # snapshot cadence in steps; 0 disables
    keep_checkpoints: int = 3     # on-disk snapshot retention (last K)
    health: HealthConfig = field(default_factory=HealthConfig)
    parallel: ParallelConfig | None = None   # None = legacy fused path
    compile: bool = False         # record the step once, replay it after
    stream_window: int = 8        # max shards resident for streamed corpora

    def __post_init__(self) -> None:
        if self.steps < 1 or self.batch_size < 1:
            raise ValueError("steps and batch_size must be positive")
        if self.stream_window < 1:
            raise ValueError("stream_window must be positive")
        if not (self.use_mlm or self.use_mer):
            raise ValueError("at least one pretraining objective must be enabled")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be positive")
        if self.compile and self.parallel is not None:
            raise ValueError(
                "compile=True is incompatible with data-parallel "
                "pretraining: the compiled executor replays one fused "
                "single-process step; pick one of the two")


@dataclass
class TrainerCheckpoint:
    """The complete state of a :class:`Pretrainer` at one step boundary.

    Restoring a checkpoint and continuing is bit-identical to never
    having stopped: all randomness, optimizer moments, schedule position
    and history are captured.
    """

    model_state: dict[str, np.ndarray]
    head_state: dict[str, np.ndarray] | None
    optimizer_state: dict
    rng_state: dict
    history: list[dict]
    schedule_lr: float
    config: dict

    @property
    def step(self) -> int:
        """The number of completed steps this checkpoint represents."""
        return len(self.history)

    # ------------------------------------------------------------------
    # Disk format: one atomic npz archive + manifest sidecar.  Arrays are
    # namespaced (model./head./optim.m.i/optim.v.i) and everything
    # non-array travels in a JSON ``meta`` entry.
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        arrays: dict[str, np.ndarray] = {}
        for name, value in self.model_state.items():
            arrays[f"model.{name}"] = value
        for name, value in (self.head_state or {}).items():
            arrays[f"head.{name}"] = value
        for i, moment in enumerate(self.optimizer_state.get("_m", [])):
            arrays[f"optim.m.{i}"] = moment
        for i, moment in enumerate(self.optimizer_state.get("_v", [])):
            arrays[f"optim.v.{i}"] = moment
        meta = {
            "format_version": TRAINER_CHECKPOINT_VERSION,
            "has_head": self.head_state is not None,
            "optimizer": {"lr": self.optimizer_state["lr"],
                          "step_count": self.optimizer_state["step_count"]},
            "rng_state": self.rng_state,
            "history": self.history,
            "schedule_lr": self.schedule_lr,
            "config": self.config,
        }
        arrays["meta"] = np.array(json.dumps(meta))
        return write_npz_atomic(path, arrays)

    @classmethod
    def load(cls, path: str | Path) -> "TrainerCheckpoint":
        """Read a checkpoint archive; raises :class:`CheckpointError` on
        truncated/corrupt archives or a missing/unreadable meta entry."""
        path = Path(path)
        arrays = read_npz_verified(path)
        if "meta" not in arrays:
            raise CheckpointError(
                f"checkpoint {path} has no meta entry; not a trainer "
                f"checkpoint")
        try:
            meta = json.loads(str(arrays.pop("meta")[()]))
        except (json.JSONDecodeError, TypeError) as error:
            raise CheckpointError(
                f"checkpoint {path} meta entry is unreadable: {error}"
            ) from error
        version = meta.get("format_version", 1)
        if version != TRAINER_CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format_version {version!r}; this "
                f"build supports {TRAINER_CHECKPOINT_VERSION}")
        model_state = {name[len("model."):]: value
                       for name, value in arrays.items()
                       if name.startswith("model.")}
        head_state = {name[len("head."):]: value
                      for name, value in arrays.items()
                      if name.startswith("head.")} or None
        moments_m = [arrays[f"optim.m.{i}"]
                     for i in range(sum(1 for n in arrays
                                        if n.startswith("optim.m.")))]
        moments_v = [arrays[f"optim.v.{i}"]
                     for i in range(sum(1 for n in arrays
                                        if n.startswith("optim.v.")))]
        optimizer_state = dict(meta["optimizer"], _m=moments_m, _v=moments_v)
        return cls(
            model_state=model_state,
            head_state=head_state if meta.get("has_head") else None,
            optimizer_state=optimizer_state,
            rng_state=meta["rng_state"],
            history=list(meta["history"]),
            schedule_lr=float(meta["schedule_lr"]),
            config=dict(meta.get("config", {})),
        )


@dataclass(frozen=True)
class _ShardPayload:
    """One micro-shard of a masked batch plus its loss normalization.

    The weights are ``n_shard_targets / n_total_targets`` per objective,
    computed in the parent, so summing the (weighted) shard losses and
    gradients with the fixed-order tree reduce reproduces the fused
    mean-over-targets objective.  Module-level so fork/pipe transport
    can pickle it.
    """

    masked: MaskedBatch
    mlm_weight: float
    mer_weight: float


def _slice_masked(masked: MaskedBatch, rows: slice) -> MaskedBatch:
    """Row-slice a masked batch (padding/seq_len untouched).

    Keeping the padded sequence length means a shard's forward runs the
    same per-row arithmetic as any other decomposition of the same
    batch, and the slices are views — no copies cross into worker pipes
    beyond pickling itself.
    """
    batch = masked.batch
    sliced = dataclass_replace(
        batch,
        token_ids=batch.token_ids[rows],
        positions=batch.positions[rows],
        row_ids=batch.row_ids[rows],
        column_ids=batch.column_ids[rows],
        roles=batch.roles[rows],
        entity_ids=batch.entity_ids[rows],
        numeric_features=batch.numeric_features[rows],
        lengths=batch.lengths[rows],
    )
    return MaskedBatch(batch=sliced,
                       mlm_targets=masked.mlm_targets[rows],
                       mer_targets=masked.mer_targets[rows])


# ----------------------------------------------------------------------
# Corpus sources: one batch-drawing protocol over lists and streams
# ----------------------------------------------------------------------
class _ListSource:
    """Legacy whole-list corpus: random access over a ``list[Table]``."""

    streaming = False

    def __init__(self, tables: list[Table]) -> None:
        self.origin = tables
        self.tables = tables
        self.size = len(tables)

    def draw(self, rng: np.random.Generator, batch_size: int,
             step_index: int) -> list[Table]:
        count = min(batch_size, self.size)
        indices = rng.choice(self.size, size=count, replace=False)
        return [self.tables[int(i)] for i in indices]

    def checkpoint_info(self, completed_steps: int,
                        batch_size: int) -> dict | None:
        return None


class _WindowSource:
    """Finite stream: bounded-memory random access via a shard window.

    Draws the *identical* RNG stream as :class:`_ListSource` over the
    stream's materialization (same ``choice`` call, same index order),
    then resolves indices through the LRU window instead of a list — so
    a streamed run and a materialized run of the same finite corpus are
    bit-identical, and the checkpoint carries no stream identity (the
    window is pure cache, i.e. scheduling, not numerics).
    """

    streaming = True

    def __init__(self, stream: StreamingCorpus, window: ShardWindow) -> None:
        self.origin = stream
        self.stream = stream
        self.window = window
        self.size = stream.size

    def draw(self, rng: np.random.Generator, batch_size: int,
             step_index: int) -> list[Table]:
        count = min(batch_size, self.size)
        indices = rng.choice(self.size, size=count, replace=False)
        return self.window.tables(indices)

    def checkpoint_info(self, completed_steps: int,
                        batch_size: int) -> dict | None:
        return None


class _SequentialSource:
    """Infinite stream: in-order consumption with a derivable cursor.

    There is no population to sample from, so batches are consecutive
    stream slices and the sampling RNG is never consumed.  The cursor is
    a pure function of progress (``completed_steps * batch_size``) —
    rollbacks, sanitize preflights and checkpoint resumes all re-derive
    it from the history length, which is how a resumed run re-enters
    mid-stream bit-identically.
    """

    streaming = True
    size = None

    def __init__(self, stream: StreamingCorpus, window: ShardWindow) -> None:
        self.origin = stream
        self.stream = stream
        self.window = window

    def draw(self, rng: np.random.Generator, batch_size: int,
             step_index: int) -> list[Table]:
        start = step_index * batch_size
        return self.window.tables(range(start, start + batch_size))

    def checkpoint_info(self, completed_steps: int,
                        batch_size: int) -> dict | None:
        return {"mode": "sequential",
                "fingerprint": self.stream.fingerprint(),
                "cursor": completed_steps * batch_size}


@dataclass(frozen=True)
class _ShardDescriptor:
    """A regenerable reference to one micro-shard of a streamed batch.

    Replaces the pickled :class:`_ShardPayload` on worker pipes when the
    corpus is streamed and workers > 1: the worker re-draws the step's
    batch from its fork-inherited corpus source under the parent's
    captured RNG state, re-masks it, and row-slices its shard — all pure
    functions, so a lost shard regenerates bit-identically on respawn
    and step frames shrink from whole pickled batches to a few hundred
    bytes of RNG state.
    """

    step: int
    rng_state: dict
    rows: tuple[int, int]
    mlm_weight: float
    mer_weight: float


class Pretrainer:
    """Runs MLM (+MER where supported) pretraining over a table corpus."""

    def __init__(self, model: TableEncoder,
                 config: PretrainConfig | None = None, *,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.model = model
        self.config = config or PretrainConfig()
        self.clock = clock
        if (self.config.parallel is not None
                and getattr(model.config, "dropout", 0.0)):
            raise ValueError(
                "data-parallel pretraining requires dropout=0.0: a "
                "stochastic forward would consume per-module RNG in "
                "schedule-dependent order and break the bit-identity "
                "guarantee across worker counts")
        if self.config.compile and getattr(model.config, "dropout", 0.0):
            raise ValueError(
                "compiled pretraining requires dropout=0.0: dropout masks "
                "are drawn eagerly per step and would be baked into the "
                "recorded program as constants")
        self.rng = np.random.default_rng(self.config.seed)

        if hasattr(model, "mlm_head"):
            self.mlm_head = model.mlm_head
            self._external_head = False
            extra_params: list = []
        else:
            self.mlm_head = MlmHead(model.config.dim,
                                    model.token_embedding.weight, self.rng)
            self._external_head = True
            extra_params = [p for name, p in self.mlm_head.named_parameters()
                            if "tied_weight" not in name]
        self.supports_mer = hasattr(model, "mer_head")

        parameters = list(model.parameters())
        seen = {id(p) for p in parameters}
        parameters += [p for p in extra_params if id(p) not in seen]
        self.optimizer = Adam(parameters, lr=self.config.learning_rate)
        warmup = max(1, int(self.config.steps * self.config.warmup_fraction))
        self.schedule = LinearWarmupSchedule(
            self.config.learning_rate, warmup, self.config.steps + 1)
        self.history: list[TrainRecord] = []
        self.health = HealthMonitor(self.config.health, source="pretrain")
        self._last_good: TrainerCheckpoint | None = None
        self._programs = ProgramCache() if self.config.compile else None
        self._engine: DataParallelEngine | None = None
        self._shard_size = (
            self.config.parallel.resolve_shard_size(self.config.batch_size)
            if self.config.parallel is not None else None)
        self._source: "_ListSource | _WindowSource | _SequentialSource | None" = None
        self._desc_memo: tuple[int, MaskedBatch] | None = None
        self._restored_stream: dict | None = None

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------
    def capture(self) -> TrainerCheckpoint:
        """Snapshot the full trainer state in memory."""
        head_state = (self.mlm_head.state_dict()
                      if self._external_head else None)
        return TrainerCheckpoint(
            model_state=self.model.state_dict(),
            head_state=head_state,
            optimizer_state=self.optimizer.state_dict(),
            rng_state=self.rng.bit_generator.state,
            history=[record.to_dict() for record in self.history],
            schedule_lr=self.schedule.lr,
            config=self._config_dict(),
        )

    def restore(self, checkpoint: TrainerCheckpoint) -> int:
        """Load a checkpoint into this trainer; returns the restored step.

        Raises :class:`CheckpointError` when the saved state does not fit
        the model/optimizer (all offending keys listed).
        """
        try:
            self.model.load_state_dict(checkpoint.model_state)
            if checkpoint.head_state is not None:
                if not self._external_head:
                    raise CheckpointError(
                        "checkpoint carries an external MLM head but the "
                        "model owns its own")
                self.mlm_head.load_state_dict(checkpoint.head_state)
            elif self._external_head:
                raise CheckpointError(
                    "checkpoint has no external MLM head state but this "
                    "trainer needs one")
            self.optimizer.load_state_dict(checkpoint.optimizer_state)
        except (KeyError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint does not match the trainer: {error}") from error
        self.rng.bit_generator.state = checkpoint.rng_state
        self.schedule.lr = float(checkpoint.schedule_lr)
        self.history = [TrainRecord.from_dict(d) for d in checkpoint.history]
        return len(self.history)

    def save_checkpoint(self, path: str | Path) -> Path:
        """Capture and atomically persist the trainer state."""
        return self.capture().save(path)

    def resume(self, path: str | Path) -> int:
        """Restore state from a checkpoint file or snapshot directory.

        A directory resumes from its newest snapshot that verifies; an
        explicit file that turns out corrupt falls back to the newest
        valid sibling snapshot (warning) before giving up.  Returns the
        restored step count.
        """
        path = Path(path)
        if path.is_dir():
            candidate = latest_valid_checkpoint(
                path, pattern=f"{_CHECKPOINT_PREFIX}*.npz")
            if candidate is None:
                raise CheckpointError(
                    f"no valid trainer checkpoint found in {path}")
            checkpoint = TrainerCheckpoint.load(candidate)
        else:
            try:
                checkpoint = TrainerCheckpoint.load(path)
            except (CheckpointError, FileNotFoundError) as error:
                fallback = latest_valid_checkpoint(
                    path.parent, pattern=f"{_CHECKPOINT_PREFIX}*.npz")
                if fallback is None or fallback == path:
                    raise
                warnings.warn(
                    f"checkpoint {path} is unusable ({error}); falling "
                    f"back to {fallback}", RuntimeWarning, stacklevel=2)
                checkpoint = TrainerCheckpoint.load(fallback)
        self._check_config_compatible(checkpoint.config)
        step = self.restore(checkpoint)
        self._last_good = checkpoint
        self._restored_stream = checkpoint.config.get("stream")
        return step

    def _config_dict(self) -> dict:
        config = asdict(self.config)
        config["health"] = asdict(self.config.health)
        # Persist only the numeric projection of parallelism: the shard
        # decomposition decides gradient bits, the worker count does not.
        # This keeps a workers=4 checkpoint byte-identical to a workers=1
        # one, and lets serial->parallel->serial resumes pass the
        # compatibility check.
        parallel = self.config.parallel
        config["parallel"] = (
            parallel.numeric_signature(self.config.batch_size)
            if parallel is not None else None)
        # Streaming a *finite* corpus is pure scheduling (the shard
        # window is a cache), so streamed and materialized runs share
        # checkpoint bytes and "stream" stays None.  An *infinite*
        # stream is numeric identity: its fingerprint and cursor are
        # what let a resume re-enter mid-stream bit-identically.
        source = self._source
        config["stream"] = (
            source.checkpoint_info(len(self.history), self.config.batch_size)
            if source is not None else None)
        config.pop("stream_window", None)
        # Compiled replay is bit-identical to eager execution, so the
        # flag is not part of a run's numeric identity: dropping it keeps
        # compiled and eager checkpoints byte-identical and lets runs
        # resume across the two modes.
        config.pop("compile", None)
        return config

    def _check_config_compatible(self, saved: dict) -> None:
        if not saved:
            return
        current = self._config_dict()
        mismatched = {
            name: (saved[name], current[name])
            for name in _RESUME_CRITICAL_FIELDS
            if name in saved and saved[name] != current[name]
        }
        if mismatched:
            details = ", ".join(
                f"{name}: checkpoint={a!r} trainer={b!r}"
                for name, (a, b) in sorted(mismatched.items()))
            raise CheckpointError(
                f"checkpoint was written with different hyperparameters "
                f"({details}); resuming would not be bit-identical")

    # ------------------------------------------------------------------
    def _bind_source(self, corpus: "list[Table] | StreamingCorpus"):
        """Resolve (and cache) the batch source for a corpus argument.

        A ``list[Table]`` samples in place; a finite stream samples
        through a bounded :class:`ShardWindow` with the identical RNG
        stream; an infinite stream is consumed in order via a derivable
        cursor.  Rebinding happens only when a *different* corpus object
        is offered — worker descriptors rely on the source being stable
        across the steps of one ``train()`` run.
        """
        source = self._source
        if source is not None and source.origin is corpus:
            return source
        if isinstance(corpus, StreamingCorpus):
            window = ShardWindow(corpus,
                                 max_shards=self.config.stream_window)
            if corpus.is_infinite:
                source = _SequentialSource(corpus, window)
            else:
                source = _WindowSource(corpus, window)
        else:
            source = _ListSource(corpus)
        if source.size == 0:
            raise EmptyCorpusError("pretraining corpus is empty")
        self._source = source
        self._desc_memo = None
        return source

    def _check_stream_resume(self, source) -> None:
        """Validate a mid-stream resume against the checkpoint's cursor.

        Only sequential (infinite-stream) checkpoints record a stream
        identity; offering such a checkpoint a different stream — or no
        stream at all — cannot be bit-identical and is rejected up
        front.
        """
        restored = self._restored_stream
        if restored is None:
            return
        info = source.checkpoint_info(len(self.history),
                                      self.config.batch_size)
        if info is None or info["fingerprint"] != restored.get("fingerprint"):
            have = None if info is None else info["fingerprint"]
            raise CheckpointError(
                f"checkpoint was written mid-stream (stream fingerprint "
                f"{restored.get('fingerprint')!r}, cursor "
                f"{restored.get('cursor')}) but train() was offered a "
                f"corpus with stream fingerprint {have!r}; resuming would "
                f"not be bit-identical")
        self._restored_stream = None

    def _sample_tables(self, corpus: list[Table]) -> list[Table]:
        count = min(self.config.batch_size, len(corpus))
        indices = self.rng.choice(len(corpus), size=count, replace=False)
        return [corpus[int(i)] for i in indices]

    def _masked_batch(self, tables: list[Table]):
        return self._masked_batch_rng(tables, self.rng)

    def _masked_batch_rng(self, tables: list[Table],
                          rng: np.random.Generator):
        """Batch + mask ``tables`` drawing masking noise from ``rng``.

        Factored out of :meth:`_masked_batch` so worker-side shard
        regeneration can replay a step's masking under a restored
        generator without touching the trainer's own RNG stream.
        """
        batch, serialized = self.model.batch(tables)
        vocab = self.model.tokenizer.vocab
        use_mer = self.config.use_mer and self.supports_mer
        if self.config.use_mlm and use_mer:
            mlm = mask_for_mlm(batch, serialized, vocab, rng,
                               mask_probability=self.config.mask_probability,
                               whole_cell=self.config.whole_cell_masking)
            mer = mask_for_mer(batch, serialized, vocab, rng,
                               mask_probability=self.config.mer_mask_probability)
            return combine_masking(mlm, mer)
        if use_mer:
            return mask_for_mer(batch, serialized, vocab, rng,
                                mask_probability=self.config.mer_mask_probability)
        return mask_for_mlm(batch, serialized, vocab, rng,
                            mask_probability=self.config.mask_probability,
                            whole_cell=self.config.whole_cell_masking)

    # ------------------------------------------------------------------
    def _rollback(self) -> None:
        """Return to the last good checkpoint with a reduced base LR."""
        if self.health.rollback_exhausted():
            raise TrainingDivergedError(
                f"pretraining diverged: {self.health.bad_steps} bad steps "
                f"and {self.health.rollbacks} rollbacks "
                f"(max {self.config.health.max_rollbacks})")
        if self._last_good is None:
            raise TrainingDivergedError(
                "pretraining diverged before the first checkpoint; "
                "no state to roll back to")
        self.restore(self._last_good)
        self.schedule.lr *= self.config.health.lr_backoff
        self.health.reset_window()

    # ------------------------------------------------------------------
    # Objective graph (shared by the eager, compiled and sanitize paths)
    # ------------------------------------------------------------------
    def _objectives(self, masked: MaskedBatch) -> tuple[bool, bool]:
        """Which objectives this batch actually trains (targets present)."""
        use_mlm = bool(self.config.use_mlm and masked.num_mlm_targets)
        use_mer = bool(self.supports_mer and self.config.use_mer
                       and masked.num_mer_targets)
        return use_mlm, use_mer

    def _losses(self, hidden: Tensor, masked: MaskedBatch,
                use_mlm: bool, use_mer: bool) -> dict[str, Tensor]:
        """Build the loss graph over ``hidden``.

        Returns the named tensors a compiled replay must surface:
        per-objective logits and losses plus the summed ``total`` the
        backward pass seeds.  Op creation order matches the historical
        inline code exactly, so recorded programs replay bit-identically.
        """
        outputs: dict[str, Tensor] = {}
        losses = []
        if use_mlm:
            logits = self.mlm_head(hidden)
            loss = mlm_loss(logits, masked)
            losses.append(loss)
            outputs["mlm_logits"] = logits
            outputs["mlm_loss"] = loss
        if use_mer:
            logits = self.model.mer_head(hidden)
            loss = mer_loss(logits, masked)
            losses.append(loss)
            outputs["mer_logits"] = logits
            outputs["mer_loss"] = loss
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        outputs["total"] = total
        return outputs

    def _summarize(self, outs: dict[str, np.ndarray], masked: MaskedBatch,
                   use_mlm: bool, use_mer: bool) -> tuple:
        """Step statistics from the (eager or replayed) output arrays."""
        total_value = float(outs["total"])
        mlm_value = float(outs["mlm_loss"]) if use_mlm else 0.0
        mer_value = float(outs["mer_loss"]) if use_mer else 0.0
        mlm_acc = (masked_accuracy(outs["mlm_logits"], masked.mlm_targets)
                   if use_mlm else 0.0)
        mer_acc = (masked_accuracy(outs["mer_logits"], masked.mer_targets)
                   if use_mer else 0.0)
        return total_value, mlm_value, mer_value, mlm_acc, mer_acc

    # ------------------------------------------------------------------
    # Compiled step path (config.compile is set)
    # ------------------------------------------------------------------
    def _step_bindings(self, masked: MaskedBatch, use_mlm: bool,
                       use_mer: bool) -> tuple[dict, dict]:
        """Structure arrays + named bindings for one step's replay."""
        arrays = self.model.structure_arrays(masked.batch)
        bindings = forward_bindings(masked.batch, arrays)
        if use_mlm:
            bindings["mlm_targets"] = masked.mlm_targets
        if use_mer:
            bindings["mer_targets"] = masked.mer_targets
        return arrays, bindings

    def _record_step(self, masked: MaskedBatch, arrays: dict, bindings: dict,
                     use_mlm: bool, use_mer: bool) -> dict[str, Tensor]:
        """Run one ordinary eager forward under the recorder.

        The recorded program is compiled and cached under the batch's
        binding signature; the eager output tensors are returned so the
        recording step doubles as a regular training (or sanitize) step.
        """
        program, outputs = record_program(
            lambda: self._losses(self.model(masked.batch, arrays),
                                 masked, use_mlm, use_mer),
            bindings, loss="total")
        signature = binding_signature(bindings, flags=(use_mlm, use_mer))
        self._programs.put(signature, TapeExecutor(program))
        return outputs

    def _compiled_step(self, masked: MaskedBatch, use_mlm: bool,
                       use_mer: bool) -> dict[str, np.ndarray]:
        """Forward+backward through the program cache (bit-exact).

        Cache misses (first step of a new padded shape / objective
        combination) record while training eagerly; hits replay the flat
        program and its precomputed backward sweep with no Tensor or
        node construction.
        """
        arrays, bindings = self._step_bindings(masked, use_mlm, use_mer)
        signature = binding_signature(bindings, flags=(use_mlm, use_mer))
        executor = self._programs.get(signature)
        if executor is None:
            outputs = self._record_step(masked, arrays, bindings,
                                        use_mlm, use_mer)
            outputs["total"].backward()
            return {name: t.data for name, t in outputs.items()}
        outs = executor.run(bindings)
        executor.backward()
        return outs

    def sanitize_check(self, corpus: "list[Table] | StreamingCorpus"):
        """Preflight tape sanitization of one pretraining forward.

        Samples a batch, computes the configured objectives under
        :func:`~repro.analysis.trace_tape` (no backward, no optimizer
        step) and runs :func:`~repro.analysis.sanitize_tape` over the
        loss graph — dead parameters, untouched ops, float64 creep,
        NaN-prone fan-out.  Findings are emitted through the runtime
        metrics registry (``kind="sanitize"`` events) and the report is
        returned for rendering.

        The sampling RNG state is restored afterwards, so an opted-in
        run draws the identical batch sequence as a run without it.
        With ``config.compile`` the sanitize forward runs under the tape
        recorder and seeds the program cache — the first real training
        step (which re-draws this same batch) replays it instead of
        paying a second eager step.
        """
        from ..analysis.tape import sanitize_tape, trace_tape

        source = self._bind_source(corpus)
        state = self.rng.bit_generator.state
        try:
            masked = self._masked_batch(
                source.draw(self.rng, self.config.batch_size,
                            len(self.history)))
            use_mlm, use_mer = self._objectives(masked)
            if not (use_mlm or use_mer):
                raise ValueError(
                    "sampled batch produced no pretraining targets; "
                    "cannot sanitize")
            with trace_tape() as tracer:
                if self._programs is not None:
                    arrays, bindings = self._step_bindings(
                        masked, use_mlm, use_mer)
                    outputs = self._record_step(masked, arrays, bindings,
                                                use_mlm, use_mer)
                else:
                    outputs = self._losses(self.model(masked.batch),
                                           masked, use_mlm, use_mer)
                total = outputs["total"]
        finally:
            self.rng.bit_generator.state = state
        named = [(f"model.{name}", p)
                 for name, p in self.model.named_parameters()]
        seen = {id(p) for _, p in named}
        named += [(f"mlm_head.{name}", p)
                  for name, p in self.mlm_head.named_parameters()
                  if id(p) not in seen]
        report = sanitize_tape(total, parameters=named, traced=tracer.nodes)
        report.emit()
        return report

    # ------------------------------------------------------------------
    # Data-parallel step path (config.parallel is set)
    # ------------------------------------------------------------------
    def _ensure_engine(self) -> DataParallelEngine:
        if self._engine is None:
            self._engine = DataParallelEngine(
                self.optimizer.parameters, self._shard_compute,
                self.config.parallel, health=self.health)
        return self._engine

    def close(self) -> None:
        """Release worker processes; a later step re-forks them lazily."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def _resolve_descriptor(self, desc: _ShardDescriptor) -> _ShardPayload:
        """Regenerate a shard payload from its descriptor (pure).

        Re-draws and re-masks the step's full batch under a throwaway
        generator restored from the descriptor's RNG state — never the
        trainer's own ``self.rng``, because this also runs in the
        *parent* when the engine degrades to its in-process fallback —
        then row-slices the shard.  The regenerated batch is memoized
        per step so a worker resolving several shards of one step pays
        for the batch once.
        """
        memo = self._desc_memo
        if memo is None or memo[0] != desc.step:
            rng = np.random.default_rng(0)
            rng.bit_generator.state = desc.rng_state
            tables = self._source.draw(rng, self.config.batch_size,
                                       desc.step)
            self._desc_memo = (desc.step, self._masked_batch_rng(tables, rng))
        masked = self._desc_memo[1]
        shard = _slice_masked(masked, slice(desc.rows[0], desc.rows[1]))
        return _ShardPayload(shard, desc.mlm_weight, desc.mer_weight)

    def _shard_compute(self, payload: "_ShardPayload | _ShardDescriptor"
                       ) -> dict:
        """Forward+backward one micro-shard (runs in-process or forked).

        Losses arrive pre-normalized (``payload.*_weight`` is this
        shard's share of the step's prediction targets), so the engine's
        unweighted fixed-order sum of shard losses/gradients equals the
        fused mean-over-targets objective.  Streamed runs ship
        :class:`_ShardDescriptor` references instead of batch slices;
        they are resolved (regenerated) here first.
        """
        if isinstance(payload, _ShardDescriptor):
            payload = self._resolve_descriptor(payload)
        masked = payload.masked
        stats = {"loss": 0.0, "mlm_loss": 0.0, "mer_loss": 0.0,
                 "mlm_correct": 0, "mlm_count": 0,
                 "mer_correct": 0, "mer_count": 0}
        if payload.mlm_weight == 0.0 and payload.mer_weight == 0.0:
            return stats
        hidden = self.model(masked.batch)
        losses = []
        if payload.mlm_weight > 0.0:
            logits = self.mlm_head(hidden)
            loss = mlm_loss(logits, masked) * payload.mlm_weight
            losses.append(loss)
            stats["mlm_loss"] = float(loss.data)
            keep = masked.mlm_targets != IGNORE_INDEX
            predicted = logits.data.argmax(axis=-1)
            stats["mlm_correct"] = int(
                (predicted[keep] == masked.mlm_targets[keep]).sum())
            stats["mlm_count"] = int(keep.sum())
        if payload.mer_weight > 0.0:
            logits = self.model.mer_head(hidden)
            loss = mer_loss(logits, masked) * payload.mer_weight
            losses.append(loss)
            stats["mer_loss"] = float(loss.data)
            keep = masked.mer_targets != IGNORE_INDEX
            predicted = logits.data.argmax(axis=-1)
            stats["mer_correct"] = int(
                (predicted[keep] == masked.mer_targets[keep]).sum())
            stats["mer_count"] = int(keep.sum())
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        stats["loss"] = float(total.data)
        total.backward()
        return stats

    def _parallel_backward(self, masked: MaskedBatch, *,
                           step: int | None = None,
                           rng_state: dict | None = None):
        """Shard the batch, run the engine, install combined gradients.

        Returns ``(loss, mlm_loss, mer_loss, mlm_acc, mer_acc)`` or
        ``None`` when the batch produced no prediction targets (the
        serial path's "no losses" case).  All RNG work already happened
        in the parent, so worker count cannot perturb the random stream.

        With ``rng_state`` set (streamed corpus, workers > 1) the engine
        is handed :class:`_ShardDescriptor` references instead of batch
        slices: workers regenerate their shards from the fork-inherited
        corpus source, which keeps step frames small and makes lost
        shards replayable bit-identically after a respawn.
        """
        use_mer = self.supports_mer and self.config.use_mer
        total_mlm = masked.num_mlm_targets if self.config.use_mlm else 0
        total_mer = masked.num_mer_targets if use_mer else 0
        if not (total_mlm or total_mer):
            return None
        payloads = []
        for rows in shard_slices(masked.batch.batch_size, self._shard_size):
            shard = _slice_masked(masked, rows)
            mlm_weight = (shard.num_mlm_targets / total_mlm
                          if total_mlm else 0.0)
            mer_weight = (shard.num_mer_targets / total_mer
                          if total_mer else 0.0)
            if rng_state is not None:
                payloads.append(_ShardDescriptor(
                    step=step, rng_state=rng_state,
                    rows=(rows.start, rows.stop),
                    mlm_weight=mlm_weight, mer_weight=mer_weight))
            else:
                payloads.append(_ShardPayload(
                    masked=shard, mlm_weight=mlm_weight,
                    mer_weight=mer_weight))
        if rng_state is not None:
            # Seed the descriptor memo with the batch the parent already
            # built, so the engine's degraded in-process fallback does
            # not regenerate it (and provably cannot touch self.rng).
            self._desc_memo = (step, masked)
        engine = self._ensure_engine()
        try:
            outcome = engine.step(payloads)
        except (BrokenPipeError, EOFError) as error:
            # The supervisor absorbs transport failures it can attribute
            # to a worker; anything that still escapes is surfaced as a
            # typed operator error instead of a raw pipe traceback.
            raise WorkerFailedError(
                -1, len(self.history),
                f"worker transport failed: {error!r}") from error
        engine.load_grads(outcome.grads)
        totals = {key: sum(s[key] for s in outcome.stats)
                  for key in outcome.stats[0]}
        mlm_acc = (totals["mlm_correct"] / totals["mlm_count"]
                   if totals["mlm_count"] else 0.0)
        mer_acc = (totals["mer_correct"] / totals["mer_count"]
                   if totals["mer_count"] else 0.0)
        return (totals["loss"], totals["mlm_loss"], totals["mer_loss"],
                mlm_acc, mer_acc)

    def train_step(self, corpus: "list[Table] | StreamingCorpus"
                   ) -> TrainRecord:
        """One optimization step over a sampled batch; returns the record.

        Steps the health monitor judges bad (NaN/Inf loss or gradient,
        divergence spike) skip the optimizer update; a streak of them
        rolls the trainer back to the last good checkpoint, in which case
        the returned record belongs to the discarded timeline and is not
        appended to :attr:`history`.
        """
        source = self._bind_source(corpus)
        step = len(self.history)
        started = self.clock()
        ship_descriptors = (source.streaming
                            and self.config.parallel is not None
                            and self.config.parallel.workers > 1)
        rng_state = (self.rng.bit_generator.state
                     if ship_descriptors else None)
        masked = self._masked_batch(
            source.draw(self.rng, self.config.batch_size, step))
        tokens = int(masked.batch.token_ids.size)

        self.optimizer.zero_grad()
        mlm_value = mer_value = 0.0
        mlm_acc = mer_acc = 0.0
        total_value = 0.0
        if self.config.parallel is not None:
            summary = self._parallel_backward(masked, step=step,
                                              rng_state=rng_state)
            has_grads = summary is not None
            if has_grads:
                total_value, mlm_value, mer_value, mlm_acc, mer_acc = summary
        else:
            use_mlm, use_mer = self._objectives(masked)
            has_grads = use_mlm or use_mer
            if has_grads:
                if self._programs is not None:
                    outs = self._compiled_step(masked, use_mlm, use_mer)
                else:
                    outputs = self._losses(self.model(masked.batch),
                                           masked, use_mlm, use_mer)
                    outputs["total"].backward()
                    outs = {name: t.data for name, t in outputs.items()}
                (total_value, mlm_value, mer_value,
                 mlm_acc, mer_acc) = self._summarize(outs, masked,
                                                     use_mlm, use_mer)

        skipped = False
        rolled_back = False
        if has_grads:
            grad_norm = clip_gradients(self.optimizer.parameters,
                                       self.config.grad_clip)
            verdict = self.health.check(step, total_value, grad_norm)
            if verdict.ok:
                self.optimizer.lr = self.schedule(step)
                self.optimizer.step()
            else:
                skipped = True
                self.optimizer.zero_grad()
                if verdict.rollback:
                    rolled_back = True
                    self._rollback()
        else:
            grad_norm = 0.0

        extras = {"mlm_loss": mlm_value, "mer_loss": mer_value,
                  "mlm_accuracy": mlm_acc, "mer_accuracy": mer_acc}
        if skipped:
            extras["skipped"] = 1.0
        record = TrainRecord(
            step=step, loss=total_value, lr=self.optimizer.lr,
            grad_norm=grad_norm, wall_time=self.clock() - started,
            tokens=tokens, extras=extras,
        )
        if not rolled_back:
            self.history.append(record)
        emit_train_record(record, source="pretrain")
        return record

    # ------------------------------------------------------------------
    def _write_snapshot(self, directory: Path) -> Path:
        path = directory / f"{_CHECKPOINT_PREFIX}{len(self.history):08d}.npz"
        written = self.save_checkpoint(path)
        self._prune_snapshots(directory)
        return written

    def _prune_snapshots(self, directory: Path) -> None:
        snapshots = sorted(directory.glob(f"{_CHECKPOINT_PREFIX}*.npz"))
        for stale in snapshots[:-self.config.keep_checkpoints]:
            stale.unlink(missing_ok=True)
            manifest = stale.with_name(stale.name + ".manifest.json")
            manifest.unlink(missing_ok=True)

    def train(self, corpus: "list[Table] | StreamingCorpus",
              checkpoint_dir: str | Path | None = None) -> list[TrainRecord]:
        """Run (or continue) the configured number of steps.

        ``corpus`` may be a ``list[Table]`` (legacy), a finite
        :class:`StreamingCorpus` (bounded-memory, bit-identical to
        training over its materialization) or an infinite stream
        (consumed in order behind a derivable cursor).  An empty corpus
        raises :class:`EmptyCorpusError` before any model work.

        A fresh trainer runs ``config.steps`` steps; a trainer restored
        via :meth:`resume` continues from its checkpoint until the same
        total.  Calling ``train`` again on a completed run raises —
        silent re-entry would continue the history with a stale LR
        schedule (resume is the supported continuation path).

        With ``config.checkpoint_every > 0`` a full snapshot is taken at
        that cadence (and written to ``checkpoint_dir`` when given, with
        the last ``config.keep_checkpoints`` retained on disk).
        """
        source = self._bind_source(corpus)
        self._check_stream_resume(source)
        if len(self.history) >= self.config.steps:
            raise RuntimeError(
                f"training already completed {len(self.history)} of "
                f"{self.config.steps} steps; build a fresh Pretrainer or "
                f"resume() a checkpoint to continue a run")
        directory: Path | None = None
        if checkpoint_dir is not None:
            directory = Path(checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
        self.model.train()
        if self._last_good is None:
            self._last_good = self.capture()
        try:
            while len(self.history) < self.config.steps:
                self.train_step(corpus)
                done = len(self.history)
                cadence = self.config.checkpoint_every
                if (cadence and done % cadence == 0
                        and not self.history[-1].extras.get("skipped")):
                    self._last_good = self.capture()
                    if directory is not None:
                        self._write_snapshot(directory)
        finally:
            self.close()
        if directory is not None:
            self._write_snapshot(directory)
        self.model.eval()
        get_registry().counter("pretrain.runs_completed").inc()
        return self.history
