"""repro.runtime — telemetry: metrics, training records, tape profiling.

The observability layer every training loop and benchmark reports
through:

- :class:`TrainRecord` — the unified step record returned by
  :meth:`~repro.pretrain.Pretrainer.train`, :func:`~repro.tasks.finetune`
  and carried on :class:`~repro.core.PipelineResult`;
- :class:`MetricsRegistry` (+ :func:`get_registry`) — named counters,
  timers and histograms with pluggable sinks (:class:`InMemorySink`,
  :class:`JsonlSink`, :class:`StdoutTableSink`);
- :func:`profile` — a context manager that hooks the autograd tape and
  accounts per-op forward/backward calls, wall time and array bytes,
  with a no-op fast path when inactive;
- :class:`HealthMonitor` — the numerical-health guard every training
  loop runs each step (NaN/Inf/spike detection, bad-step skipping,
  rollback requests), reporting ``health`` events through the registry.

Quick taste::

    from repro.runtime import JsonlSink, get_registry, profile

    with get_registry().sink_attached(JsonlSink("metrics.jsonl")):
        with profile() as prof:
            run_imputation_pipeline(corpus)
    print(prof.table())
"""

from .health import (
    HealthConfig,
    HealthMonitor,
    HealthVerdict,
    TrainingDivergedError,
)
from .records import TrainRecord
from .registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    emit_train_record,
    get_registry,
    set_registry,
    set_telemetry,
    telemetry_enabled,
    using_registry,
)
from .sinks import InMemorySink, JsonlSink, MetricSink, StdoutTableSink, render_table
from .profiler import OpStat, TapeProfile, profile

__all__ = [
    "TrainRecord",
    "HealthConfig", "HealthMonitor", "HealthVerdict",
    "TrainingDivergedError",
    "Counter", "Timer", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "using_registry",
    "telemetry_enabled", "set_telemetry", "emit_train_record",
    "MetricSink", "InMemorySink", "JsonlSink", "StdoutTableSink",
    "render_table",
    "OpStat", "TapeProfile", "profile",
]
