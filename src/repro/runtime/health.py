"""Numerical-health guards for training loops.

Long pretraining runs die numerically before they die mechanically: one
NaN loss poisons the Adam moments and every subsequent step.  The
:class:`HealthMonitor` sits between the backward pass and the optimizer
update in every training loop (:class:`~repro.pretrain.Pretrainer`,
:func:`~repro.tasks.finetune`) and classifies each step as healthy or
bad — non-finite loss, non-finite or exploding gradient norm, or a loss
spike far above the trailing window.  Bad steps are skipped (the update
never reaches the optimizer) and emitted as ``health`` events through
the :class:`~repro.runtime.MetricsRegistry`; after a configurable streak
of consecutive bad steps the monitor asks the caller to roll back to its
last good checkpoint with a reduced learning rate.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from .registry import get_registry, telemetry_enabled

__all__ = [
    "HealthConfig",
    "HealthVerdict",
    "HealthMonitor",
    "TrainingDivergedError",
]


class TrainingDivergedError(RuntimeError):
    """Training kept producing bad steps after every permitted rollback."""


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of a :class:`HealthMonitor`.

    Parameters
    ----------
    enabled:
        Master switch; a disabled monitor approves every step.
    max_consecutive_bad:
        Bad steps in a row before the monitor requests a rollback.
    max_rollbacks:
        Rollbacks permitted before the run is declared diverged.
    divergence_factor:
        A finite loss this many times the trailing-window mean counts as
        a spike (only once the window holds ``min_history`` values).
    window:
        Trailing healthy-loss window length for spike detection.
    min_history:
        Healthy losses required before spike detection activates.
    grad_norm_limit:
        Finite pre-clip gradient norms above this are bad steps.
    lr_backoff:
        Multiplier applied to the learning rate on rollback.
    """

    enabled: bool = True
    max_consecutive_bad: int = 3
    max_rollbacks: int = 3
    divergence_factor: float = 25.0
    window: int = 32
    min_history: int = 8
    grad_norm_limit: float = 1e6
    lr_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.max_consecutive_bad < 1:
            raise ValueError("max_consecutive_bad must be positive")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be non-negative")
        if not (0.0 < self.lr_backoff <= 1.0):
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.divergence_factor <= 1.0:
            raise ValueError("divergence_factor must exceed 1")


@dataclass(frozen=True)
class HealthVerdict:
    """Outcome of checking one step.

    ``ok`` means the optimizer update may proceed; otherwise ``reason``
    says why the step is bad and ``rollback`` whether the bad streak has
    exhausted the monitor's patience.
    """

    ok: bool
    reason: str = ""
    rollback: bool = False


_OK = HealthVerdict(True)


class HealthMonitor:
    """Classifies training steps and tracks bad-step streaks.

    One monitor guards one training loop; call :meth:`check` after the
    backward pass with the step's loss and pre-clip gradient norm, and
    only apply the optimizer update when the verdict is ``ok``.
    """

    def __init__(self, config: HealthConfig | None = None,
                 source: str = "train") -> None:
        self.config = config or HealthConfig()
        self.source = source
        self._window: deque[float] = deque(maxlen=self.config.window)
        self.consecutive_bad = 0
        self.bad_steps = 0
        self.rollbacks = 0
        self.worker_events = 0

    # ------------------------------------------------------------------
    def _classify(self, loss: float, grad_norm: float) -> str:
        if not math.isfinite(loss):
            return "non_finite_loss"
        if not math.isfinite(grad_norm):
            return "non_finite_grad_norm"
        if grad_norm > self.config.grad_norm_limit:
            return "grad_norm_limit"
        if len(self._window) >= self.config.min_history:
            mean = sum(self._window) / len(self._window)
            if mean > 0.0 and loss > self.config.divergence_factor * mean:
                return "loss_spike"
        return ""

    def check(self, step: int, loss: float,
              grad_norm: float = 0.0) -> HealthVerdict:
        """Judge one step; emits a ``health`` event when the step is bad."""
        if not self.config.enabled:
            return _OK
        reason = self._classify(float(loss), float(grad_norm))
        if not reason:
            self._window.append(float(loss))
            self.consecutive_bad = 0
            return _OK
        self.consecutive_bad += 1
        self.bad_steps += 1
        streak = self.consecutive_bad
        rollback = streak >= self.config.max_consecutive_bad
        if rollback:
            self.consecutive_bad = 0
            self.rollbacks += 1
        self._emit(step, loss, grad_norm, reason, rollback, streak)
        return HealthVerdict(False, reason, rollback)

    def rollback_exhausted(self) -> bool:
        """Whether another rollback would exceed ``max_rollbacks``."""
        return self.rollbacks > self.config.max_rollbacks

    def worker_event(self, step: int, worker: int, reason: str,
                     action: str) -> None:
        """Record a mechanical (not numerical) failure under this monitor.

        The elastic data-parallel supervisor reports worker deaths,
        respawns and pool degradation here so operators see one unified
        ``health`` event stream: numerical trouble (NaNs, spikes) and
        mechanical trouble (lost workers) land in the same JSONL
        artifact, attributed to the same training step.  Worker events
        never affect step verdicts — a recovered step is numerically
        identical to a healthy one, so there is nothing to skip.
        """
        self.worker_events += 1
        if not telemetry_enabled():
            return
        registry = get_registry()
        registry.counter(f"{self.source}.health.worker_events").inc()
        registry.emit({
            "kind": "health",
            "source": self.source,
            "step": int(step),
            "status": action,
            "reason": reason,
            "worker": int(worker),
            "worker_events": int(self.worker_events),
        })

    def reset_window(self) -> None:
        """Forget the trailing loss window (after a rollback the replayed
        steps re-populate it)."""
        self._window.clear()

    # ------------------------------------------------------------------
    def _emit(self, step: int, loss: float, grad_norm: float,
              reason: str, rollback: bool, streak: int) -> None:
        if not telemetry_enabled():
            return
        registry = get_registry()
        registry.counter(f"{self.source}.health.bad_steps").inc()
        if rollback:
            registry.counter(f"{self.source}.health.rollbacks").inc()
        registry.emit({
            "kind": "health",
            "source": self.source,
            "step": int(step),
            "status": "rollback" if rollback else "bad_step",
            "reason": reason,
            "loss": float(loss),
            "grad_norm": float(grad_norm),
            "consecutive_bad": int(streak),
            "bad_steps": int(self.bad_steps),
        })
