"""Autograd-tape profiler: per-op forward/backward cost accounting.

:func:`profile` instruments the :class:`~repro.nn.Tensor` tape for the
duration of a ``with`` block:

- every op creation is counted (name + output array bytes) through the
  tape hook in :mod:`repro.nn.tensor`;
- the tape-op methods are temporarily wrapped so each forward call is
  wall-timed;
- :meth:`Tensor.backward` times every node's vector-Jacobian product.

Outside a ``profile`` block the only residual cost is a single
module-level ``is None`` check per op — the no-op fast path the
``bench_runtime_overhead`` benchmark measures.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .registry import MetricsRegistry, get_registry
from .sinks import render_table
from ..nn import tensor as _tensor_mod
from ..nn.tensor import Tensor

__all__ = ["OpStat", "TapeProfile", "profile"]


@dataclass
class OpStat:
    """Aggregate cost of one tape op kind inside a profile region."""

    op: str
    calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    bytes: int = 0

    def to_event(self) -> dict[str, Any]:
        return {"kind": "profile_op", "op": self.op, "calls": self.calls,
                "forward_seconds": self.forward_seconds,
                "backward_calls": self.backward_calls,
                "backward_seconds": self.backward_seconds,
                "bytes": self.bytes}


@dataclass
class TapeProfile:
    """Collected per-op statistics; returned by :func:`profile`."""

    stats: dict[str, OpStat] = field(default_factory=dict)

    # -- tape hook protocol (called from repro.nn.tensor) ----------------
    def on_forward(self, op: str, nbytes: int) -> None:
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStat(op)
        stat.calls += 1
        stat.bytes += nbytes

    def on_backward(self, op: str, seconds: float) -> None:
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStat(op)
        stat.backward_calls += 1
        stat.backward_seconds += seconds

    def add_forward_time(self, op: str, seconds: float) -> None:
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStat(op)
        stat.forward_seconds += seconds

    # -- aggregate views -------------------------------------------------
    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.stats.values())

    @property
    def total_forward_seconds(self) -> float:
        return sum(s.forward_seconds for s in self.stats.values())

    @property
    def total_backward_seconds(self) -> float:
        return sum(s.backward_seconds for s in self.stats.values())

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.stats.values())

    def sorted_stats(self) -> list[OpStat]:
        """Ops ordered by combined forward+backward cost, heaviest first."""
        return sorted(
            self.stats.values(),
            key=lambda s: s.forward_seconds + s.backward_seconds,
            reverse=True)

    def table(self) -> str:
        """The human-readable per-op cost table."""
        rows = [[s.op, s.calls, f"{s.forward_seconds:.4f}",
                 s.backward_calls, f"{s.backward_seconds:.4f}",
                 f"{s.bytes / 1e6:.2f}"] for s in self.sorted_stats()]
        rows.append(["TOTAL", self.total_calls,
                     f"{self.total_forward_seconds:.4f}",
                     sum(s.backward_calls for s in self.stats.values()),
                     f"{self.total_backward_seconds:.4f}",
                     f"{self.total_bytes / 1e6:.2f}"])
        return render_table(
            "tape profile (per-op)",
            ["op", "calls", "fwd s", "bwd calls", "bwd s", "MB"], rows)

    def to_events(self) -> list[dict[str, Any]]:
        return [s.to_event() for s in self.sorted_stats()]


# ----------------------------------------------------------------------
# Forward-timing patches
# ----------------------------------------------------------------------
# Method name -> tape op name; each method creates exactly one tape node
# with that name, so timed seconds line up with on_forward call counts.
_TIMED_METHODS: dict[str, str] = {
    "__add__": "add", "__neg__": "neg", "__mul__": "mul",
    "__truediv__": "div", "__pow__": "pow",
    "exp": "exp", "log": "log", "tanh": "tanh", "relu": "relu",
    "gelu": "gelu", "sigmoid": "sigmoid",
    "matmul": "matmul", "sum": "sum", "max": "max",
    "reshape": "reshape", "transpose": "transpose",
    "__getitem__": "getitem", "take_rows": "take_rows",
    "softmax": "softmax", "log_softmax": "log_softmax",
    "masked_fill": "masked_fill",
}
_TIMED_STATIC_METHODS: dict[str, str] = {
    "concatenate": "concatenate", "stack": "stack",
}

_ACTIVE: TapeProfile | None = None


def _timed(profile_obj: TapeProfile, op: str,
           fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        profile_obj.add_forward_time(op, time.perf_counter() - start)
        return out
    wrapper.__name__ = getattr(fn, "__name__", op)
    return wrapper


def _install_patches(profile_obj: TapeProfile) -> dict[str, Any]:
    originals: dict[str, Any] = {}
    for method, op in _TIMED_METHODS.items():
        originals[method] = Tensor.__dict__[method]
        setattr(Tensor, method, _timed(profile_obj, op, originals[method]))
    for method, op in _TIMED_STATIC_METHODS.items():
        originals[method] = Tensor.__dict__[method]
        setattr(Tensor, method,
                staticmethod(_timed(profile_obj, op,
                                    originals[method].__func__)))
    return originals


def _remove_patches(originals: dict[str, Any]) -> None:
    for method, original in originals.items():
        setattr(Tensor, method, original)


@contextmanager
def profile(registry: MetricsRegistry | None = None,
            emit: bool = True) -> Iterator[TapeProfile]:
    """Profile every tape op executed inside the ``with`` block.

    Parameters
    ----------
    registry:
        Where ``profile_op`` events go on exit (default: the global
        registry; events only materialize if it has sinks attached).
    emit:
        Set ``False`` to skip event emission and just inspect the
        returned :class:`TapeProfile`.

    Does not nest: profiling an already-profiled region raises.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("profile() regions do not nest")
    profile_obj = TapeProfile()
    _ACTIVE = profile_obj
    previous_hook = _tensor_mod.set_tape_hook(profile_obj)
    originals = _install_patches(profile_obj)
    try:
        yield profile_obj
    finally:
        _remove_patches(originals)
        _tensor_mod.set_tape_hook(previous_hook)
        _ACTIVE = None
        if emit:
            target = registry or get_registry()
            for event in profile_obj.to_events():
                target.emit(event)
