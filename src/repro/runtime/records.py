"""The unified training record shared by every training loop.

Historically each layer logged its own shape: :class:`~repro.pretrain`
produced typed ``StepRecord`` entries while fine-tuning returned a bare
``list[float]`` of losses.  :class:`TrainRecord` replaces both — one
step-level record carrying the fields every loop can report (step, loss,
learning rate, gradient norm, wall time, token throughput) plus an
``extras`` mapping for loop-specific scalars (per-objective losses,
masked-recovery accuracies, epoch indices, ...).

Extras are reachable as attributes for backwards compatibility, so code
written against the old ``StepRecord`` fields (``record.mlm_loss``,
``record.mer_accuracy``) keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["TrainRecord"]


@dataclass
class TrainRecord:
    """One optimization step of any training loop.

    Parameters
    ----------
    step:
        Zero-based global step index within the run.
    loss:
        Total scalar loss the optimizer stepped on.
    lr:
        Learning rate in effect for this step.
    grad_norm:
        Global gradient norm before clipping.
    wall_time:
        Wall-clock seconds the step took (0 when not measured).
    tokens:
        Input tokens processed this step (0 when not applicable).
    extras:
        Loop-specific scalars, e.g. ``{"mlm_loss": 2.3, "epoch": 1}``.
        Readable as attributes: ``record.mlm_loss``.
    """

    step: int
    loss: float
    lr: float = 0.0
    grad_norm: float = 0.0
    wall_time: float = 0.0
    tokens: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Legacy-compatible access
    # ------------------------------------------------------------------
    @property
    def learning_rate(self) -> float:
        """Alias of :attr:`lr` (the old ``StepRecord`` field name)."""
        return self.lr

    @property
    def tokens_per_second(self) -> float:
        """Throughput of the step; 0 when wall time was not measured."""
        if self.wall_time <= 0.0 or self.tokens <= 0:
            return 0.0
        return self.tokens / self.wall_time

    def __getattr__(self, name: str) -> float:
        # Only reached for names that are not fields/properties: resolve
        # them against ``extras`` so legacy per-objective fields survive.
        if name.startswith("_") or name == "extras":
            raise AttributeError(name)
        extras = self.__dict__.get("extras")
        if extras is not None and name in extras:
            return extras[name]
        raise AttributeError(
            f"{type(self).__name__!r} has no field or extra {name!r}"
        )

    # ------------------------------------------------------------------
    # Serialization (the JSONL metrics schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready mapping; extras are inlined alongside fields."""
        out: dict[str, Any] = {
            "step": int(self.step),
            "loss": float(self.loss),
            "lr": float(self.lr),
            "grad_norm": float(self.grad_norm),
            "wall_time": float(self.wall_time),
            "tokens": int(self.tokens),
        }
        for key, value in self.extras.items():
            if key not in out:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrainRecord":
        """Rebuild a record from :meth:`to_dict` output (extras restored)."""
        fields = {"step", "loss", "lr", "grad_norm", "wall_time", "tokens"}
        extras = {k: v for k, v in payload.items()
                  if k not in fields and k not in ("kind", "source")}
        return cls(
            step=int(payload.get("step", 0)),
            loss=float(payload.get("loss", 0.0)),
            lr=float(payload.get("lr", 0.0)),
            grad_norm=float(payload.get("grad_norm", 0.0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            tokens=int(payload.get("tokens", 0)),
            extras=extras,
        )
