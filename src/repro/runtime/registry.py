"""A lightweight metrics registry: counters, timers, histograms, sinks.

One process-global :class:`MetricsRegistry` (reachable via
:func:`get_registry`) collects everything the training loops and the
profiler report.  With no sinks attached — the default — emitting an
event is a single empty-list iteration, so instrumented code pays
effectively nothing until someone asks for the data.

Telemetry can be switched off entirely with :func:`set_telemetry`; the
emit path then returns immediately.

Thread safety: instruments are written concurrently by HTTP handler
threads, the serve dispatcher and worker-heartbeat daemons, so the
registry owns a single internal :func:`threading.RLock` shared by
every instrument it creates (one lock, one hierarchy level — there is
nothing to order against, so no deadlock surface).  ``snapshot()``
holds that lock across the whole walk, making the result a *consistent
cut*: counters incremented together are never torn across the
snapshot.  The lock is an RLock so instruments can be read while the
registry-level snapshot holds it.  Standalone instruments (constructed
directly, as tests do) get a private lock and stay safe in isolation.
Sink ``emit``/``flush`` calls happen *outside* the lock — sinks do IO,
and blocking under a lock is exactly what lint rule REPRO009 polices —
so sinks guard their own buffers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .records import TrainRecord
from .sinks import MetricSink

__all__ = [
    "Counter", "Timer", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "using_registry",
    "telemetry_enabled", "set_telemetry",
    "emit_train_record",
]

_TELEMETRY_ENABLED = True


def telemetry_enabled() -> bool:
    """Whether step-level telemetry emission is currently on."""
    return _TELEMETRY_ENABLED


def set_telemetry(enabled: bool) -> bool:
    """Globally enable/disable telemetry emission; returns previous state."""
    global _TELEMETRY_ENABLED
    previous = _TELEMETRY_ENABLED
    _TELEMETRY_ENABLED = bool(enabled)
    return previous


class Counter:  # thread-shared
    """A monotonically increasing scalar (safe to ``inc`` from any thread)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Any = None) -> None:
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self.value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"kind": "metric", "metric": "counter", "name": self.name,
                    "value": self.value}


class _Reservoir:
    """Ring buffer of the most recent observations, for percentiles.

    Serving SLOs are stated in tail latency (p50/p99), which the O(1)
    count/mean/min/max summaries cannot answer.  A bounded ring of the
    last ``capacity`` samples keeps memory constant on long runs while
    the percentile reflects *recent* behaviour — exactly what a load
    gate or a ``/v1/metrics`` scrape wants.

    Not synchronized itself: the owning instrument's lock guards every
    ``add``/``percentile`` call (standalone use stays single-threaded).
    """

    __slots__ = ("capacity", "_samples", "_cursor")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = int(q / 100.0 * len(ordered) + 0.5)
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]


class Timer:  # thread-shared
    """Accumulates durations; use :meth:`time` as a context manager.

    The time source is injectable (same pattern as
    ``serve.DynamicBatcher``), so tests measure deterministic fake
    seconds instead of sleeping.  A bounded :class:`_Reservoir` of
    recent observations backs :meth:`percentile` (tail-latency SLOs).
    """

    __slots__ = ("name", "count", "total_seconds", "min_seconds",
                 "max_seconds", "clock", "_reservoir", "_lock")

    def __init__(self, name: str,
                 clock: Callable[[], float] = time.perf_counter,
                 lock: Any = None) -> None:
        self.name = name
        self.clock = clock
        self._lock = lock if lock is not None else threading.RLock()
        self.count = 0              # guarded-by: _lock
        self.total_seconds = 0.0    # guarded-by: _lock
        self.min_seconds = float("inf")   # guarded-by: _lock
        self.max_seconds = 0.0      # guarded-by: _lock
        self._reservoir = _Reservoir()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total_seconds += seconds
            self.min_seconds = min(self.min_seconds, seconds)
            self.max_seconds = max(self.max_seconds, seconds)
            self._reservoir.add(seconds)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of recent observations (seconds)."""
        with self._lock:
            return self._reservoir.percentile(q)

    @contextmanager
    def time(self) -> Iterator[None]:
        start = self.clock()
        try:
            yield
        finally:
            self.observe(self.clock() - start)

    @property
    def mean_seconds(self) -> float:
        with self._lock:
            return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"kind": "metric", "metric": "timer", "name": self.name,
                    "count": self.count, "total_seconds": self.total_seconds,
                    "mean_seconds": self.mean_seconds,
                    "min_seconds": (0.0 if self.count == 0
                                    else self.min_seconds),
                    "max_seconds": self.max_seconds,
                    "p50_seconds": self.percentile(50.0),
                    "p99_seconds": self.percentile(99.0)}


class Histogram:  # thread-shared
    """Streaming summary of observed values (count/mean/min/max/p50/p99).

    Totals stay O(1); percentiles come from a bounded ring of recent
    samples (:class:`_Reservoir`), so long runs stay cheap while tail
    behaviour — queue depth spikes, wave-size skew — remains visible.
    """

    __slots__ = ("name", "count", "total", "min_value", "max_value",
                 "_reservoir", "_lock")

    def __init__(self, name: str, lock: Any = None) -> None:
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self.count = 0              # guarded-by: _lock
        self.total = 0.0            # guarded-by: _lock
        self.min_value = float("inf")     # guarded-by: _lock
        self.max_value = float("-inf")    # guarded-by: _lock
        self._reservoir = _Reservoir()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
            self._reservoir.add(value)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of recent observations."""
        with self._lock:
            return self._reservoir.percentile(q)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            empty = self.count == 0
            return {"kind": "metric", "metric": "histogram",
                    "name": self.name,
                    "count": self.count, "mean": self.mean,
                    "min": 0.0 if empty else self.min_value,
                    "max": 0.0 if empty else self.max_value,
                    "p50": self.percentile(50.0),
                    "p99": self.percentile(99.0)}


class MetricsRegistry:  # thread-shared
    """Named counters/timers/histograms plus a fan-out list of sinks.

    One internal RLock guards the instrument tables, the sink list and
    — because instruments share it — every instrument's fields, so
    :meth:`snapshot` is a consistent cut across the whole registry.
    """

    def __init__(self, sinks: list[MetricSink] | None = None) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}      # guarded-by: _lock
        self._timers: dict[str, Timer] = {}          # guarded-by: _lock
        self._histograms: dict[str, Histogram] = {}  # guarded-by: _lock
        self._sinks: list[MetricSink] = list(sinks or [])  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(
                    name, lock=self._lock)
            return instrument

    def timer(self, name: str,
              clock: Callable[[], float] | None = None) -> Timer:
        """Get-or-create; ``clock`` (first caller wins) overrides the
        time source for deterministic tests."""
        with self._lock:
            instrument = self._timers.get(name)
            if instrument is None:
                instrument = self._timers[name] = (
                    Timer(name, lock=self._lock) if clock is None
                    else Timer(name, clock, lock=self._lock))
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, lock=self._lock)
            return instrument

    # ------------------------------------------------------------------
    # Sinks and events
    # ------------------------------------------------------------------
    @property
    def sinks(self) -> tuple[MetricSink, ...]:
        with self._lock:
            return tuple(self._sinks)

    def add_sink(self, sink: MetricSink) -> MetricSink:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: MetricSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    @contextmanager
    def sink_attached(self, sink: MetricSink) -> Iterator[MetricSink]:
        """Attach ``sink`` for the duration of a ``with`` block, then close."""
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)
            sink.close()

    def emit(self, event: dict[str, Any]) -> None:
        """Forward one event to every attached sink (no-op when disabled).

        The sink list is copied under the lock but ``sink.emit`` runs
        outside it: sinks do IO, and the instrumented hot paths must
        never wait on a JSONL flush.
        """
        # The unlocked emptiness probe is deliberate: a sink attached
        # mid-probe just catches the next event, exactly as if it had
        # been attached a moment later.
        if not _TELEMETRY_ENABLED or not self._sinks:  # race-ok: probe
            return
        with self._lock:
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink.emit(event)

    def flush(self) -> None:
        with self._lock:
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """One ``metric`` event per instrument — a consistent cut.

        The registry lock is held across the whole walk (instruments
        share it), so values incremented together under the shared
        lock never appear torn between snapshot entries.
        """
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._timers.values())
                           + list(self._histograms.values()))
            return [instrument.snapshot() for instrument in instruments]

    def emit_snapshot(self) -> None:
        """Push the current snapshot through the sinks."""
        for event in self.snapshot():
            self.emit(event)

    def reset(self) -> None:
        """Drop all instruments (sinks stay attached)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every training loop reports to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def using_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily swap in ``registry`` (tests, isolated runs)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def emit_train_record(record: TrainRecord, source: str,
                      registry: MetricsRegistry | None = None) -> None:
    """Emit one ``train_step`` event and roll it into standard instruments.

    Parameters
    ----------
    record:
        The step record produced by a training loop.
    source:
        Which loop: ``"pretrain"``, ``"finetune"``, ...
    registry:
        Defaults to the global registry.
    """
    if not _TELEMETRY_ENABLED:
        return
    registry = registry or _REGISTRY
    registry.counter(f"{source}.steps").inc()
    if record.tokens:
        registry.counter(f"{source}.tokens").inc(record.tokens)
    if record.wall_time > 0.0:
        registry.timer(f"{source}.step_seconds").observe(record.wall_time)
    registry.histogram(f"{source}.loss").observe(record.loss)
    if registry.sinks:
        event = {"kind": "train_step", "source": source}
        event.update(record.to_dict())
        registry.emit(event)
