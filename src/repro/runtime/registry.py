"""A lightweight metrics registry: counters, timers, histograms, sinks.

One process-global :class:`MetricsRegistry` (reachable via
:func:`get_registry`) collects everything the training loops and the
profiler report.  With no sinks attached — the default — emitting an
event is a single empty-list iteration, so instrumented code pays
effectively nothing until someone asks for the data.

Telemetry can be switched off entirely with :func:`set_telemetry`; the
emit path then returns immediately.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .records import TrainRecord
from .sinks import MetricSink

__all__ = [
    "Counter", "Timer", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "using_registry",
    "telemetry_enabled", "set_telemetry",
    "emit_train_record",
]

_TELEMETRY_ENABLED = True


def telemetry_enabled() -> bool:
    """Whether step-level telemetry emission is currently on."""
    return _TELEMETRY_ENABLED


def set_telemetry(enabled: bool) -> bool:
    """Globally enable/disable telemetry emission; returns previous state."""
    global _TELEMETRY_ENABLED
    previous = _TELEMETRY_ENABLED
    _TELEMETRY_ENABLED = bool(enabled)
    return previous


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "metric", "metric": "counter", "name": self.name,
                "value": self.value}


class _Reservoir:
    """Ring buffer of the most recent observations, for percentiles.

    Serving SLOs are stated in tail latency (p50/p99), which the O(1)
    count/mean/min/max summaries cannot answer.  A bounded ring of the
    last ``capacity`` samples keeps memory constant on long runs while
    the percentile reflects *recent* behaviour — exactly what a load
    gate or a ``/v1/metrics`` scrape wants.
    """

    __slots__ = ("capacity", "_samples", "_cursor")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = int(q / 100.0 * len(ordered) + 0.5)
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]


class Timer:
    """Accumulates durations; use :meth:`time` as a context manager.

    The time source is injectable (same pattern as
    ``serve.DynamicBatcher``), so tests measure deterministic fake
    seconds instead of sleeping.  A bounded :class:`_Reservoir` of
    recent observations backs :meth:`percentile` (tail-latency SLOs).
    """

    __slots__ = ("name", "count", "total_seconds", "min_seconds",
                 "max_seconds", "clock", "_reservoir")

    def __init__(self, name: str,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.name = name
        self.clock = clock
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        self._reservoir = _Reservoir()

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        self._reservoir.add(seconds)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of recent observations (seconds)."""
        return self._reservoir.percentile(q)

    @contextmanager
    def time(self) -> Iterator[None]:
        start = self.clock()
        try:
            yield
        finally:
            self.observe(self.clock() - start)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "metric", "metric": "timer", "name": self.name,
                "count": self.count, "total_seconds": self.total_seconds,
                "mean_seconds": self.mean_seconds,
                "min_seconds": 0.0 if self.count == 0 else self.min_seconds,
                "max_seconds": self.max_seconds,
                "p50_seconds": self.percentile(50.0),
                "p99_seconds": self.percentile(99.0)}


class Histogram:
    """Streaming summary of observed values (count/mean/min/max/p50/p99).

    Totals stay O(1); percentiles come from a bounded ring of recent
    samples (:class:`_Reservoir`), so long runs stay cheap while tail
    behaviour — queue depth spikes, wave-size skew — remains visible.
    """

    __slots__ = ("name", "count", "total", "min_value", "max_value",
                 "_reservoir")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")
        self._reservoir = _Reservoir()

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        self._reservoir.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of recent observations."""
        return self._reservoir.percentile(q)

    def snapshot(self) -> dict[str, Any]:
        empty = self.count == 0
        return {"kind": "metric", "metric": "histogram", "name": self.name,
                "count": self.count, "mean": self.mean,
                "min": 0.0 if empty else self.min_value,
                "max": 0.0 if empty else self.max_value,
                "p50": self.percentile(50.0),
                "p99": self.percentile(99.0)}


class MetricsRegistry:
    """Named counters/timers/histograms plus a fan-out list of sinks."""

    def __init__(self, sinks: list[MetricSink] | None = None) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sinks: list[MetricSink] = list(sinks or [])

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def timer(self, name: str,
              clock: Callable[[], float] | None = None) -> Timer:
        """Get-or-create; ``clock`` (first caller wins) overrides the
        time source for deterministic tests."""
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = (
                Timer(name) if clock is None else Timer(name, clock))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    # Sinks and events
    # ------------------------------------------------------------------
    @property
    def sinks(self) -> tuple[MetricSink, ...]:
        return tuple(self._sinks)

    def add_sink(self, sink: MetricSink) -> MetricSink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: MetricSink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @contextmanager
    def sink_attached(self, sink: MetricSink) -> Iterator[MetricSink]:
        """Attach ``sink`` for the duration of a ``with`` block, then close."""
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)
            sink.close()

    def emit(self, event: dict[str, Any]) -> None:
        """Forward one event to every attached sink (no-op when disabled)."""
        if not _TELEMETRY_ENABLED or not self._sinks:
            return
        for sink in self._sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self._sinks:
            sink.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """One ``metric`` event per instrument (JSONL-schema shaped)."""
        instruments = (list(self._counters.values())
                       + list(self._timers.values())
                       + list(self._histograms.values()))
        return [instrument.snapshot() for instrument in instruments]

    def emit_snapshot(self) -> None:
        """Push the current snapshot through the sinks."""
        for event in self.snapshot():
            self.emit(event)

    def reset(self) -> None:
        """Drop all instruments (sinks stay attached)."""
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every training loop reports to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def using_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily swap in ``registry`` (tests, isolated runs)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def emit_train_record(record: TrainRecord, source: str,
                      registry: MetricsRegistry | None = None) -> None:
    """Emit one ``train_step`` event and roll it into standard instruments.

    Parameters
    ----------
    record:
        The step record produced by a training loop.
    source:
        Which loop: ``"pretrain"``, ``"finetune"``, ...
    registry:
        Defaults to the global registry.
    """
    if not _TELEMETRY_ENABLED:
        return
    registry = registry or _REGISTRY
    registry.counter(f"{source}.steps").inc()
    if record.tokens:
        registry.counter(f"{source}.tokens").inc(record.tokens)
    if record.wall_time > 0.0:
        registry.timer(f"{source}.step_seconds").observe(record.wall_time)
    registry.histogram(f"{source}.loss").observe(record.loss)
    if registry.sinks:
        event = {"kind": "train_step", "source": source}
        event.update(record.to_dict())
        registry.emit(event)
