"""Pluggable metric sinks: where telemetry events go.

Every event is a flat JSON-serializable ``dict`` with at least a ``kind``
key.  The kinds the library emits (the JSONL metrics schema):

- ``train_step`` — one optimization step from any loop.  Fields:
  ``source`` (``"pretrain"`` | ``"finetune"``), plus the flattened
  :class:`~repro.runtime.TrainRecord` (``step``, ``loss``, ``lr``,
  ``grad_norm``, ``wall_time``, ``tokens`` and any extras).
- ``profile_op`` — one autograd-tape op from a :func:`~repro.runtime.profile`
  region: ``op``, ``calls``, ``forward_seconds``, ``backward_calls``,
  ``backward_seconds``, ``bytes``.
- ``metric`` — a registry snapshot entry: ``name``, ``value`` (counters),
  or ``name``, ``count``, ``total_seconds`` (timers), or ``name``,
  ``count``, ``mean``, ``min``, ``max`` (histograms).
- ``bench_table`` — one rendered benchmark result table: ``title``,
  ``headers``, ``rows``.
- ``health`` — a numerical-health incident from
  :class:`~repro.runtime.HealthMonitor`: ``source``, ``step``, ``status``
  (``"bad_step"`` | ``"rollback"``), ``reason``, ``loss``, ``grad_norm``,
  ``consecutive_bad``, ``bad_steps``.  Non-finite floats are written as
  ``null`` in the JSONL artifact (JSON has no NaN/Inf literals).

Sinks must tolerate any extra keys — the schema is additive.

Sinks are invoked concurrently (HTTP handler threads, the serve
dispatcher, heartbeat daemons) and the registry deliberately calls
``emit`` *outside* its own lock, so each sink guards its buffer with a
private lock of its own.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any, IO

__all__ = ["MetricSink", "InMemorySink", "JsonlSink", "StdoutTableSink"]


class MetricSink:
    """Base class; a sink receives events and may buffer until flush."""

    def emit(self, event: dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Write out any buffered state (default: nothing to do)."""

    def close(self) -> None:
        """Flush and release resources (default: just flush)."""
        self.flush()

    def __enter__(self) -> "MetricSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemorySink(MetricSink):  # thread-shared
    """Collect events in a list — the default for tests and notebooks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[dict[str, Any]] = []  # guarded-by: _lock

    def emit(self, event: dict[str, Any]) -> None:
        with self._lock:
            self.events.append(dict(event))

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """Events whose ``kind`` field matches."""
        with self._lock:
            return [e for e in self.events if e.get("kind") == kind]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


class JsonlSink(MetricSink):  # thread-shared
    """Append one JSON object per line to a file (the metrics artifact).

    The file is opened lazily on the first event so constructing the sink
    never touches the filesystem.  The internal lock keeps concurrent
    emitters from interleaving partial lines in the artifact.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file: IO[str] | None = None  # guarded-by: _lock
        self.events_written = 0            # guarded-by: _lock

    def emit(self, event: dict[str, Any]) -> None:
        # Health events can legitimately carry NaN/Inf losses; the JSON
        # spec has no literal for them, so map to null to keep the
        # artifact parseable outside Python.
        line = json.dumps(_finite(event), default=_jsonify) + "\n"
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(line)
            self.events_written += 1

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def _jsonify(value: Any) -> Any:
    """Fallback serializer: numpy scalars and anything float-like."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def _finite(value: Any) -> Any:
    """Replace non-finite floats with None, recursing into containers."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item"):
        return _finite(value.item())
    if isinstance(value, dict):
        return {key: _finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_finite(item) for item in value]
    return value


class StdoutTableSink(MetricSink):  # thread-shared
    """Buffer events and render them as aligned text tables on flush.

    ``train_step`` events are grouped by ``source`` and summarized;
    ``profile_op`` events render as the per-op profile table; other kinds
    print as one compact line each.
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be positive")
        self.every = every
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []  # guarded-by: _lock

    def emit(self, event: dict[str, Any]) -> None:
        with self._lock:
            self._events.append(dict(event))

    def flush(self) -> None:
        with self._lock:
            events = list(self._events)
            self._events.clear()
        if not events:
            return
        steps = [e for e in events if e.get("kind") == "train_step"]
        ops = [e for e in events if e.get("kind") == "profile_op"]
        rest = [e for e in events
                if e.get("kind") not in ("train_step", "profile_op")]
        if steps:
            self._print_steps(steps)
        if ops:
            self._print_ops(ops)
        for event in rest:
            kind = event.get("kind", "event")
            detail = " ".join(f"{k}={v}" for k, v in event.items()
                              if k != "kind")
            print(f"[{kind}] {detail}")

    # ------------------------------------------------------------------
    def _print_steps(self, steps: list[dict[str, Any]]) -> None:
        header = ["source", "step", "loss", "lr", "grad_norm",
                  "wall_time", "tokens/s"]
        rows = []
        for event in steps[:: self.every]:
            wall = float(event.get("wall_time", 0.0))
            tokens = float(event.get("tokens", 0))
            tps = tokens / wall if wall > 0 and tokens > 0 else 0.0
            rows.append([
                str(event.get("source", "?")), str(event.get("step", "?")),
                f"{float(event.get('loss', 0.0)):.4f}",
                f"{float(event.get('lr', 0.0)):.2e}",
                f"{float(event.get('grad_norm', 0.0)):.3f}",
                f"{wall:.4f}", f"{tps:.0f}",
            ])
        print(render_table("train steps", header, rows))

    def _print_ops(self, ops: list[dict[str, Any]]) -> None:
        header = ["op", "calls", "fwd s", "bwd calls", "bwd s", "MB"]
        rows = [[
            str(e.get("op", "?")), str(e.get("calls", 0)),
            f"{float(e.get('forward_seconds', 0.0)):.4f}",
            str(e.get("backward_calls", 0)),
            f"{float(e.get('backward_seconds', 0.0)):.4f}",
            f"{float(e.get('bytes', 0)) / 1e6:.2f}",
        ] for e in ops]
        print(render_table("profile", header, rows))


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Align ``rows`` under ``headers`` — shared by sinks and the profiler."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(str(h)), *(len(r[i]) for r in cells)) if cells
              else len(str(h)) for i, h in enumerate(headers)]
    lines = [f"=== {title} ===",
             "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in cells]
    return "\n".join(lines)
