"""Serialization substrate: linearizers, structural coordinates, batching."""

from .base import SequenceBuilder, SerializedTable, Serializer, TokenRole
from .linearize import (
    SERIALIZERS,
    ColumnMajorSerializer,
    MarkdownSerializer,
    RowMajorSerializer,
    TemplateSerializer,
)
from .positions import BatchedFeatures, TableFeatures, encode_features, pad_batch

__all__ = [
    "TokenRole", "SerializedTable", "SequenceBuilder", "Serializer",
    "RowMajorSerializer", "ColumnMajorSerializer", "TemplateSerializer",
    "MarkdownSerializer", "SERIALIZERS",
    "TableFeatures", "encode_features", "BatchedFeatures", "pad_batch",
]
