"""Serialization core: the 1-D token view of a 2-D table.

Every model in the survey first *linearizes* a table into a token sequence
(Fig. 1, "Input Processing").  What distinguishes the structure-aware models
is that the linearization keeps per-token coordinates — which row, which
column, which role — so embeddings and attention masks can reconstruct the
2-D layout.  :class:`SerializedTable` carries exactly that information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from ..tables import Table
from ..text import WordPieceTokenizer

__all__ = ["TokenRole", "SerializedTable", "SequenceBuilder", "Serializer"]


class TokenRole(IntEnum):
    """What a token stands for in the original table."""

    SPECIAL = 0
    CONTEXT = 1
    HEADER = 2
    CELL = 3


@dataclass
class SerializedTable:
    """A linearized table with per-token structural coordinates.

    Attributes
    ----------
    tokens:
        Subword token strings, specials included.
    token_ids:
        Vocabulary ids, parallel to ``tokens``.
    roles:
        Per-token :class:`TokenRole` values.
    row_ids:
        1-based data-row index per token; 0 for context, header and specials.
    column_ids:
        1-based column index per token (headers included); 0 elsewhere.
    cell_spans:
        ``(row, col) → (start, end)`` token ranges of data cells (end is
        exclusive).  Rows/cols are 0-based table coordinates.
    header_spans:
        ``col → (start, end)`` token ranges of header cells.
    context_span:
        ``(start, end)`` range of the context tokens (``(0, 0)`` if none).
    truncated_cells:
        Number of data cells dropped to respect the token budget.
    """

    tokens: list[str]
    token_ids: np.ndarray
    roles: np.ndarray
    row_ids: np.ndarray
    column_ids: np.ndarray
    cell_spans: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    header_spans: dict[int, tuple[int, int]] = field(default_factory=dict)
    context_span: tuple[int, int] = (0, 0)
    truncated_cells: int = 0

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def num_rows_serialized(self) -> int:
        """How many distinct data rows survived serialization."""
        return len({row for row, _ in self.cell_spans})

    def cell_token_indices(self, row: int, column: int) -> range:
        """Token positions belonging to data cell ``(row, column)``."""
        start, end = self.cell_spans[(row, column)]
        return range(start, end)

    def text(self) -> str:
        """Human-readable view of the serialized sequence."""
        return " ".join(self.tokens)


class SequenceBuilder:
    """Accumulates tokens with structural coordinates; shared by serializers."""

    def __init__(self, tokenizer: WordPieceTokenizer) -> None:
        self.tokenizer = tokenizer
        self.tokens: list[str] = []
        self.roles: list[int] = []
        self.row_ids: list[int] = []
        self.column_ids: list[int] = []
        self.cell_spans: dict[tuple[int, int], tuple[int, int]] = {}
        self.header_spans: dict[int, tuple[int, int]] = {}
        self.context_span: tuple[int, int] = (0, 0)
        self.truncated_cells = 0

    def __len__(self) -> int:
        return len(self.tokens)

    def add_special(self, token: str) -> None:
        self.tokens.append(token)
        self.roles.append(TokenRole.SPECIAL)
        self.row_ids.append(0)
        self.column_ids.append(0)

    def add_words(self, text: str, role: TokenRole, row: int = 0, column: int = 0,
                  empty_token: str | None = None) -> tuple[int, int]:
        """Tokenize ``text`` and append with coordinates; returns the span."""
        pieces = self.tokenizer.tokenize(text)
        if not pieces and empty_token is not None:
            pieces = [empty_token]
        start = len(self.tokens)
        for piece in pieces:
            self.tokens.append(piece)
            self.roles.append(role)
            self.row_ids.append(row)
            self.column_ids.append(column)
        return start, len(self.tokens)

    def add_context(self, text: str) -> None:
        if text.strip():
            self.context_span = self.add_words(text, TokenRole.CONTEXT)

    def add_header_cell(self, table: Table, column: int) -> None:
        span = self.add_words(
            table.header[column], TokenRole.HEADER, row=0, column=column + 1,
            empty_token=self.tokenizer.vocab.empty_token,
        )
        self.header_spans[column] = span

    def add_data_cell(self, table: Table, row: int, column: int) -> None:
        span = self.add_words(
            table.cell(row, column).text(), TokenRole.CELL,
            row=row + 1, column=column + 1,
            empty_token=self.tokenizer.vocab.empty_token,
        )
        self.cell_spans[(row, column)] = span

    def build(self) -> SerializedTable:
        token_ids = np.array([self.tokenizer.vocab.id(t) for t in self.tokens],
                             dtype=np.int64)
        return SerializedTable(
            tokens=list(self.tokens),
            token_ids=token_ids,
            roles=np.array(self.roles, dtype=np.int64),
            row_ids=np.array(self.row_ids, dtype=np.int64),
            column_ids=np.array(self.column_ids, dtype=np.int64),
            cell_spans=dict(self.cell_spans),
            header_spans=dict(self.header_spans),
            context_span=self.context_span,
            truncated_cells=self.truncated_cells,
        )


class Serializer:
    """Base class: turn (table, context) into a :class:`SerializedTable`.

    Subclasses implement :meth:`_emit_table`; context placement and the
    token budget are handled here so every variant treats them uniformly.
    """

    name = "base"

    def __init__(self, tokenizer: WordPieceTokenizer, max_tokens: int = 256,
                 context_first: bool = True) -> None:
        if max_tokens < 8:
            raise ValueError("max_tokens too small to hold specials and context")
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self.context_first = context_first

    # ------------------------------------------------------------------
    def serialize(self, table: Table, context: str | None = None) -> SerializedTable:
        """Linearize ``table`` (optionally overriding its own context text)."""
        context_text = context if context is not None else table.context.text()
        table = self._fit_to_budget(table, context_text)

        builder = SequenceBuilder(self.tokenizer)
        vocab = self.tokenizer.vocab
        builder.add_special(vocab.cls_token)
        if self.context_first:
            builder.add_context(context_text)
            builder.add_special(vocab.sep_token)
            self._emit_table(builder, table)
        else:
            self._emit_table(builder, table)
            builder.add_special(vocab.sep_token)
            builder.add_context(context_text)
        builder.add_special(vocab.sep_token)
        builder.truncated_cells = self._last_truncated
        return builder.build()

    # ------------------------------------------------------------------
    def _emit_table(self, builder: SequenceBuilder, table: Table) -> None:
        raise NotImplementedError

    def _sequence_cost(self, table: Table, context_text: str) -> int:
        """Upper bound on the token count if ``table`` were fully emitted."""
        probe = SequenceBuilder(self.tokenizer)
        probe.add_special(self.tokenizer.vocab.cls_token)
        probe.add_context(context_text)
        probe.add_special(self.tokenizer.vocab.sep_token)
        self._emit_table(probe, table)
        probe.add_special(self.tokenizer.vocab.sep_token)
        return len(probe)

    def _fit_to_budget(self, table: Table, context_text: str) -> Table:
        """Drop trailing rows until the serialized table fits ``max_tokens``.

        Keeps at least one data row (if any exist); records how many cells
        were dropped for reporting (E3 measures this truncation rate).
        """
        self._last_truncated = 0
        if self._sequence_cost(table, context_text) <= self.max_tokens:
            return table
        keep = table.num_rows
        while keep > 1:
            keep -= 1
            candidate = table.subtable(row_indices=range(keep))
            if self._sequence_cost(candidate, context_text) <= self.max_tokens:
                break
        self._last_truncated = (table.num_rows - keep) * table.num_columns
        return table.subtable(row_indices=range(keep))
