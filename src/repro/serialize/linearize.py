"""Concrete linearization strategies (Fig. 2b of the paper).

Four variants are implemented, covering the design space the survey part
discusses (row vs. column serialization; separator-based vs. templated):

- :class:`RowMajorSerializer` — ``[SEP] Country | Capital [SEP] Australia |
  Sydney [SEP] …`` (Fig. 2b, technique 1);
- :class:`ColumnMajorSerializer` — one column at a time, header leading its
  values;
- :class:`TemplateSerializer` — ``row one Country is Australia ; Capital is
  Sydney …`` (Fig. 2b, technique 2);
- :class:`MarkdownSerializer` — GitHub-style pipes, the format generative
  models consume.
"""

from __future__ import annotations

from .base import SequenceBuilder, Serializer, TokenRole
from ..tables import Table

__all__ = [
    "RowMajorSerializer",
    "ColumnMajorSerializer",
    "TemplateSerializer",
    "MarkdownSerializer",
    "SERIALIZERS",
]

_ORDINALS = ("one", "two", "three", "four", "five", "six", "seven", "eight",
             "nine", "ten", "eleven", "twelve", "thirteen", "fourteen", "fifteen")


def _ordinal(index: int) -> str:
    return _ORDINALS[index] if index < len(_ORDINALS) else str(index + 1)


class RowMajorSerializer(Serializer):
    """Header row then each data row, cells separated by ``|``."""

    name = "row_major"

    def _emit_table(self, builder: SequenceBuilder, table: Table) -> None:
        vocab = self.tokenizer.vocab
        for column in range(table.num_columns):
            if column:
                builder.add_words("|", TokenRole.SPECIAL)
            builder.add_header_cell(table, column)
        for row in range(table.num_rows):
            builder.add_special(vocab.sep_token)
            for column in range(table.num_columns):
                if column:
                    builder.add_words("|", TokenRole.SPECIAL)
                builder.add_data_cell(table, row, column)


class ColumnMajorSerializer(Serializer):
    """Each column emitted as header followed by its values."""

    name = "column_major"

    def _emit_table(self, builder: SequenceBuilder, table: Table) -> None:
        vocab = self.tokenizer.vocab
        for column in range(table.num_columns):
            if column:
                builder.add_special(vocab.sep_token)
            builder.add_header_cell(table, column)
            for row in range(table.num_rows):
                builder.add_words("|", TokenRole.SPECIAL)
                builder.add_data_cell(table, row, column)


class TemplateSerializer(Serializer):
    """Natural-language template: ``row one <header> is <value> ; …``."""

    name = "template"

    def _emit_table(self, builder: SequenceBuilder, table: Table) -> None:
        for row in range(table.num_rows):
            builder.add_words(f"row {_ordinal(row)}", TokenRole.SPECIAL)
            for column in range(table.num_columns):
                header = table.header[column].strip() or "column " + _ordinal(column)
                span = builder.add_words(header, TokenRole.HEADER, row=0, column=column + 1)
                # Headers repeat per row in template mode; keep the first
                # occurrence as the canonical span.
                builder.header_spans.setdefault(column, span)
                builder.add_words("is", TokenRole.SPECIAL)
                builder.add_data_cell(table, row, column)
                builder.add_words(";", TokenRole.SPECIAL)


class MarkdownSerializer(Serializer):
    """GitHub-flavoured markdown rows: ``| a | b |`` with a rule line."""

    name = "markdown"

    def _emit_table(self, builder: SequenceBuilder, table: Table) -> None:
        builder.add_words("|", TokenRole.SPECIAL)
        for column in range(table.num_columns):
            builder.add_header_cell(table, column)
            builder.add_words("|", TokenRole.SPECIAL)
        builder.add_words("| - |", TokenRole.SPECIAL)
        for row in range(table.num_rows):
            builder.add_words("|", TokenRole.SPECIAL)
            for column in range(table.num_columns):
                builder.add_data_cell(table, row, column)
                builder.add_words("|", TokenRole.SPECIAL)


SERIALIZERS: dict[str, type[Serializer]] = {
    cls.name: cls
    for cls in (RowMajorSerializer, ColumnMajorSerializer, TemplateSerializer,
                MarkdownSerializer)
}
