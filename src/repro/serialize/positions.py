"""Model-input feature extraction from a serialized table.

The structure-aware models consume, per token: vocabulary id, flat position,
row id, column id and role (segment).  :func:`encode_features` packs these
into aligned arrays, and :func:`pad_batch` collates variable-length
sequences into a padded batch with an attention padding mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SerializedTable
from ..tables import Table

__all__ = ["TableFeatures", "encode_features", "pad_batch", "BatchedFeatures"]


@dataclass
class TableFeatures:
    """Aligned per-token input arrays for one serialized table.

    ``entity_ids`` holds ``kb_entity_id + 1`` for tokens inside
    entity-linked cells and 0 elsewhere (TURL's entity channel).
    """

    token_ids: np.ndarray
    positions: np.ndarray
    row_ids: np.ndarray
    column_ids: np.ndarray
    roles: np.ndarray
    entity_ids: np.ndarray
    numeric_features: np.ndarray  # (seq, 3): [is_number, sign, log1p|value|]

    def __len__(self) -> int:
        return len(self.token_ids)


def encode_features(serialized: SerializedTable,
                    max_row_id: int | None = None,
                    max_column_id: int | None = None,
                    table: Table | None = None) -> TableFeatures:
    """Extract model input arrays, optionally clamping row/col ids.

    Clamping caps rare deep rows into the last embedding bucket rather than
    indexing out of range — the standard trick for unbounded tables.  If
    ``table`` is given, tokens of entity-linked cells are annotated with
    the cell's entity id (offset by one; 0 means no entity).
    """
    row_ids = serialized.row_ids.copy()
    column_ids = serialized.column_ids.copy()
    if max_row_id is not None:
        row_ids = np.minimum(row_ids, max_row_id)
    if max_column_id is not None:
        column_ids = np.minimum(column_ids, max_column_id)
    entity_ids = np.zeros(len(serialized), dtype=np.int64)
    numeric = np.zeros((len(serialized), 3), dtype=np.float64)
    if table is not None:
        for (row, column), (start, end) in serialized.cell_spans.items():
            cell = table.cell(row, column)
            if cell.entity_id is not None:
                entity_ids[start:end] = cell.entity_id + 1
            if cell.is_numeric:
                value = float(str(cell.text()).replace(",", ""))
                numeric[start:end] = [1.0, np.sign(value),
                                      np.log1p(abs(value))]
    return TableFeatures(
        token_ids=serialized.token_ids.copy(),
        positions=np.arange(len(serialized), dtype=np.int64),
        row_ids=row_ids,
        column_ids=column_ids,
        roles=serialized.roles.copy(),
        entity_ids=entity_ids,
        numeric_features=numeric,
    )


@dataclass
class BatchedFeatures:
    """Padded batch of :class:`TableFeatures` plus validity information."""

    token_ids: np.ndarray         # (batch, seq)
    positions: np.ndarray         # (batch, seq)
    row_ids: np.ndarray           # (batch, seq)
    column_ids: np.ndarray        # (batch, seq)
    roles: np.ndarray             # (batch, seq)
    entity_ids: np.ndarray        # (batch, seq)
    numeric_features: np.ndarray  # (batch, seq, 3)
    lengths: np.ndarray           # (batch,)

    @property
    def batch_size(self) -> int:
        return self.token_ids.shape[0]

    @property
    def seq_len(self) -> int:
        return self.token_ids.shape[1]

    def key_padding_mask(self) -> np.ndarray:
        """Attention block mask of shape ``(batch, 1, 1, seq)``; True = pad."""
        positions = np.arange(self.seq_len)
        blocked = positions[np.newaxis, :] >= self.lengths[:, np.newaxis]
        return blocked[:, np.newaxis, np.newaxis, :]

    def token_validity(self) -> np.ndarray:
        """Boolean ``(batch, seq)`` marking real (non-pad) tokens."""
        positions = np.arange(self.seq_len)
        return positions[np.newaxis, :] < self.lengths[:, np.newaxis]


def pad_batch(features: list[TableFeatures], pad_id: int) -> BatchedFeatures:
    """Right-pad a list of feature sets to a common length."""
    if not features:
        raise ValueError("cannot pad an empty batch")
    lengths = np.array([len(f) for f in features], dtype=np.int64)
    seq_len = int(lengths.max())

    def padded(attr: str, fill: int) -> np.ndarray:
        out = np.full((len(features), seq_len), fill, dtype=np.int64)
        for i, f in enumerate(features):
            arr = getattr(f, attr)
            out[i, : len(arr)] = arr
        return out

    numeric = np.zeros((len(features), seq_len, 3), dtype=np.float64)
    for i, f in enumerate(features):
        numeric[i, : len(f)] = f.numeric_features

    return BatchedFeatures(
        token_ids=padded("token_ids", pad_id),
        positions=padded("positions", 0),
        row_ids=padded("row_ids", 0),
        column_ids=padded("column_ids", 0),
        roles=padded("roles", 0),
        entity_ids=padded("entity_ids", 0),
        numeric_features=numeric,
        lengths=lengths,
    )
