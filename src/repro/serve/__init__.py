"""repro.serve — the request-oriented inference engine.

Training amortizes the transformer across epochs; serving answers one
request at a time, so the engine wins its throughput back with three
mechanisms (each usable on its own):

- :class:`~repro.nn.inference_mode` forwards that allocate no autograd
  tape (see ``repro.nn``);
- :class:`DynamicBatcher` — requests accumulate and flush as one padded
  forward on a size or deadline trigger;
- :class:`EncodingCache` — a content-addressed LRU of encoder hidden
  states, so repeated tables skip the transformer entirely.

:class:`InferenceEngine` composes all three behind ``submit``/``poll``.
At scale, :class:`ReplicatedFrontend` puts N forked replicas of the
engine behind a bounded admission queue with per-request deadlines and
load shedding, and :func:`run_server` (driven by :class:`ServerConfig`)
exposes the versioned ``/v1`` HTTP surface on top — ``repro serve`` and
``repro predict`` are thin shells around these.  Throughput, hit-rate
and shed/deadline telemetry flow through the global
:class:`~repro.runtime.MetricsRegistry` under ``serve.*``.
"""

from .batching import BatchPolicy, DynamicBatcher
from .cache import (EncodingCache, feature_fingerprint,
                    model_fingerprint, table_fingerprint)
from .engine import InferenceEngine, PredictRequest, PredictResponse, ServeConfig
from .frontend import (
    AdmissionQueue,
    FrontendConfig,
    ReplicatedFrontend,
    ServeTicket,
)
from .requests import (
    SERVED_TASKS,
    RequestError,
    affinity_key,
    build_example,
    build_predictor,
    json_safe_label,
    parse_table,
)
from .server import (
    ServerConfig,
    make_http_server,
    make_server,
    run_server,
    serve_forever,
)

__all__ = [
    "BatchPolicy", "DynamicBatcher",
    "EncodingCache", "feature_fingerprint", "model_fingerprint",
    "table_fingerprint",
    "InferenceEngine", "PredictRequest", "PredictResponse", "ServeConfig",
    "AdmissionQueue", "FrontendConfig", "ReplicatedFrontend", "ServeTicket",
    "SERVED_TASKS", "RequestError", "affinity_key", "build_example",
    "build_predictor", "json_safe_label", "parse_table",
    "ServerConfig", "make_http_server", "run_server",
    "make_server", "serve_forever",
]
