"""repro.serve — the request-oriented inference engine.

Training amortizes the transformer across epochs; serving answers one
request at a time, so the engine wins its throughput back with three
mechanisms (each usable on its own):

- :class:`~repro.nn.inference_mode` forwards that allocate no autograd
  tape (see ``repro.nn``);
- :class:`DynamicBatcher` — requests accumulate and flush as one padded
  forward on a size or deadline trigger;
- :class:`EncodingCache` — a content-addressed LRU of encoder hidden
  states, so repeated tables skip the transformer entirely.

:class:`InferenceEngine` composes all three behind ``submit``/``poll``;
``repro serve`` (HTTP) and ``repro predict`` (batch files) are thin
shells around it.  Throughput and hit-rate telemetry flow through the
global :class:`~repro.runtime.MetricsRegistry` under ``serve.*``.
"""

from .batching import BatchPolicy, DynamicBatcher
from .cache import (EncodingCache, feature_fingerprint,
                    model_fingerprint, table_fingerprint)
from .engine import InferenceEngine, PredictRequest, PredictResponse, ServeConfig
from .requests import (
    SERVED_TASKS,
    RequestError,
    build_example,
    build_predictor,
    json_safe_label,
    parse_table,
)
from .server import make_server, serve_forever

__all__ = [
    "BatchPolicy", "DynamicBatcher",
    "EncodingCache", "feature_fingerprint", "model_fingerprint",
    "table_fingerprint",
    "InferenceEngine", "PredictRequest", "PredictResponse", "ServeConfig",
    "SERVED_TASKS", "RequestError", "build_example", "build_predictor",
    "json_safe_label", "parse_table",
    "make_server", "serve_forever",
]
