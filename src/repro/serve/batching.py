"""Dynamic micro-batching: flush on size or deadline.

Requests accumulate in a per-task queue; a batch is released as soon as
either ``max_batch`` requests are waiting (size flush) or the oldest
request has waited ``max_wait_seconds`` (deadline flush).  The clock is
injectable so the deadline path is deterministic under test.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["BatchPolicy", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """When to release a micro-batch.

    ``max_batch`` bounds the padded forward; ``max_wait_seconds`` bounds
    the queueing latency a lone request can be charged.
    """

    max_batch: int = 8
    max_wait_seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")


class DynamicBatcher:
    """A FIFO of pending items with size/deadline flush semantics."""

    def __init__(self, policy: BatchPolicy | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or BatchPolicy()
        self.clock = clock
        self._queue: "deque[tuple[Any, float]]" = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, item: Any) -> float:
        """Enqueue one item; returns its arrival timestamp."""
        arrived = self.clock()
        self._queue.append((item, arrived))
        return arrived

    def oldest_wait(self) -> float:
        """Seconds the head of the queue has been waiting (0 if empty)."""
        if not self._queue:
            return 0.0
        return self.clock() - self._queue[0][1]

    def due(self) -> bool:
        """Whether a batch should be released right now."""
        if not self._queue:
            return False
        if len(self._queue) >= self.policy.max_batch:
            return True
        return self.oldest_wait() >= self.policy.max_wait_seconds

    def next_deadline(self) -> float | None:
        """Absolute clock time of the pending deadline flush, if any."""
        if not self._queue:
            return None
        return self._queue[0][1] + self.policy.max_wait_seconds

    def pop_batch(self, force: bool = False) -> list[tuple[Any, float]]:
        """Release up to ``max_batch`` ``(item, arrival)`` pairs.

        Returns an empty list unless the batch is :meth:`due` (or
        ``force`` is set, which drains regardless — used for shutdown
        and batch-file processing).
        """
        if not (force or self.due()):
            return []
        batch: list[tuple[Any, float]] = []
        while self._queue and len(batch) < self.policy.max_batch:
            batch.append(self._queue.popleft())
        return batch
