"""Content-addressed LRU cache for table-encoder outputs.

TAPAS/TaBERT-style deployments answer many queries against the *same*
table, so the transformer forward — by far the dominant cost — is pure
waste after the first request.  :class:`EncodingCache` memoizes the
per-table hidden states keyed by a content hash of the exact serialized
input features together with a fingerprint of the model's identity and
weights:

- hashing the *feature arrays* (token ids, positions, structural ids,
  numeric channel) rather than the raw table means context strings,
  serializer choice and per-task input mutations (e.g. the imputer's
  ``[MASK]`` span) all participate in the key for free;
- hashing the *model fingerprint* (name + config + every parameter)
  means fine-tuning or loading different weights invalidates every
  stale entry without explicit bookkeeping.

Hit/miss/eviction counts report through the
:class:`~repro.runtime.MetricsRegistry` under ``serve.cache.*``.

The cache is thread-safe: one reentrant lock guards every entry map and
counter, so the threaded HTTP front-end (``ThreadingHTTPServer`` handler
threads sharing one in-process engine) can hammer it concurrently
without corrupting the LRU order or drifting the hit/miss counters.
The lock is coarse — it is held across the miss forward in
:meth:`EncodingCache.hidden_for` — which is the right trade here:
replicated serving gives each forked worker a private cache (no
contention), and the single-process paths have exactly one dispatching
thread doing forwards anyway.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from ..nn import Module
from ..runtime import get_registry
from ..serialize import SerializedTable, TableFeatures, pad_batch
from ..tables import Table

__all__ = ["EncodingCache", "feature_fingerprint", "model_fingerprint",
           "table_fingerprint"]

_FEATURE_FIELDS = ("token_ids", "positions", "row_ids", "column_ids",
                   "roles", "entity_ids", "numeric_features")


def table_fingerprint(table: Table, context: str | None = None) -> str:
    """Content hash of one table plus its serialization context string.

    Covers everything serialization can see: header, every cell's text
    and entity link, the table's own context fields, and the per-request
    context (e.g. a QA question).  ``table_id`` is deliberately ignored —
    two structurally identical tables serialize identically.
    """
    digest = hashlib.sha256()
    digest.update(("" if context is None else context).encode())
    digest.update(b"\x1e")
    for part in (table.context.title, table.context.section,
                 table.context.caption):
        digest.update(part.encode())
        digest.update(b"\x1f")
    digest.update("\x1f".join(table.header).encode())
    for row in table.rows:
        digest.update(b"\x1e")
        for cell in row:
            digest.update(cell.text().encode())
            digest.update(str(cell.entity_id).encode())
            digest.update(b"\x1f")
    return digest.hexdigest()


def _copy_features(features: TableFeatures) -> TableFeatures:
    """Fresh-array copy, so feature hooks can mutate without corrupting
    the pristine memo entry."""
    return replace(features, **{name: getattr(features, name).copy()
                                for name in _FEATURE_FIELDS})


def feature_fingerprint(features: TableFeatures) -> str:
    """Content hash of one example's exact per-token input arrays."""
    digest = hashlib.sha256()
    for name in _FEATURE_FIELDS:
        array = np.ascontiguousarray(getattr(features, name))
        digest.update(name.encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def model_fingerprint(model: Module) -> str:
    """Hash of a model's identity: name, config, and every parameter.

    Any weight update (fine-tuning, loading a different bundle) changes
    the fingerprint, so cache entries written under the old weights can
    never be served again.
    """
    digest = hashlib.sha256()
    digest.update(getattr(model, "model_name", type(model).__name__).encode())
    config = getattr(model, "config", None)
    if config is not None and hasattr(config, "to_dict"):
        digest.update(json.dumps(config.to_dict(), sort_keys=True).encode())
    for name, param in model.named_parameters():
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()


class EncodingCache:  # thread-shared
    """Size-bounded LRU of per-table hidden states.

    Parameters
    ----------
    max_entries:
        Entry budget; the least recently used entry is evicted past it.
    metrics_prefix:
        Instrument namespace in the global registry.
    """

    _encoder_tokens = itertools.count()

    def __init__(self, max_entries: int = 128,
                 metrics_prefix: str = "serve.cache") -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics_prefix = metrics_prefix
        self._entries: "OrderedDict[tuple[str, str], np.ndarray]" = OrderedDict()  # guarded-by: _lock
        self._feature_entries: "OrderedDict[tuple[int, str], tuple]" = \
            OrderedDict()  # guarded-by: _lock
        self._lock = threading.RLock()
        self.hits = 0       # guarded-by: _lock
        self.misses = 0     # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total payload bytes currently held."""
        with self._lock:
            return sum(array.nbytes for array in self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._feature_entries.clear()

    def stats(self) -> dict[str, int]:
        """A consistent snapshot of size and hit-rate counters."""
        with self._lock:
            return {"entries": len(self._entries),
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}

    # ------------------------------------------------------------------
    def _count(self, what: str, amount: int = 1) -> None:
        if amount:
            get_registry().counter(f"{self.metrics_prefix}.{what}").inc(amount)

    def lookup(self, key: tuple[str, str]) -> np.ndarray | None:
        """Fetch an entry and mark it most recently used (no counters)."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def store(self, key: tuple[str, str], value: np.ndarray) -> None:
        """Insert an entry, evicting the LRU tail past ``max_entries``."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")

    # ------------------------------------------------------------------
    def features_for(self, encoder: Module, tables: list[Table],
                     contexts: list[str | None]
                     ) -> tuple[list[SerializedTable], list[TableFeatures]]:
        """Serialized tables + input features, memoized by table content.

        Serialization re-tokenizes the whole table on every request, and
        on a repeated-table workload that overhead rivals the encoder
        forward itself — so the cache memoizes this stage too, keyed by
        an encoder identity token plus :func:`table_fingerprint`.  The
        stored features stay pristine; callers receive array copies so
        per-task feature hooks (e.g. the imputer's ``[MASK]``) can
        mutate them freely.  Weights don't enter this key: features
        depend only on the encoder's tokenizer and serializer, which the
        per-instance token pins.
        """
        with self._lock:
            token = getattr(encoder, "_encoding_cache_token", None)
            if token is None:
                token = next(EncodingCache._encoder_tokens)
                encoder._encoding_cache_token = token
            serialized, features = [], []
            for table, context in zip(tables, contexts):
                key = (token, table_fingerprint(table, context))
                entry = self._feature_entries.get(key)
                if entry is None:
                    one_serialized = encoder.serialize(table, context)
                    entry = (one_serialized,
                             encoder.features(one_serialized, table=table))
                    self._feature_entries[key] = entry
                    while len(self._feature_entries) > self.max_entries:
                        self._feature_entries.popitem(last=False)
                else:
                    self._feature_entries.move_to_end(key)
                serialized.append(entry[0])
                features.append(_copy_features(entry[1]))
            return serialized, features

    def hidden_for(self, encoder: Module, features: list[TableFeatures]
                   ) -> list[np.ndarray]:
        """Per-example hidden states ``(seq_i, dim)``, cached where possible.

        Misses are deduplicated within the call — a batch repeating one
        table costs one forward — and each distinct miss runs through
        ``encoder.forward`` as its own batch of one, so the stored hidden
        states are *canonical*: bitwise independent of batch composition
        (padded-batch forwards are not padding-invariant; see
        ``repro.serve.engine``).  Repeats of an in-flight key count as
        hits: they skip encoder work exactly like a cache hit does.
        """
        with self._lock:
            fingerprint = model_fingerprint(encoder)
            keys = [(fingerprint, feature_fingerprint(f)) for f in features]
            out: list[np.ndarray | None] = [None] * len(features)
            pending: "OrderedDict[tuple[str, str], list[int]]" = OrderedDict()
            hits = misses = 0
            for i, key in enumerate(keys):
                cached = self.lookup(key)
                if cached is not None:
                    out[i] = cached
                    hits += 1
                elif key in pending:
                    pending[key].append(i)
                    hits += 1
                else:
                    pending[key] = [i]
                    misses += 1
            for key, indices in pending.items():
                # Canonical per-example forward: each miss is encoded
                # under its own padding only, so the stored bytes are
                # independent of which other requests shared the wave
                # (the determinism contract in ``repro.serve.engine``).
                first = features[indices[0]]
                batch = pad_batch([first],
                                  pad_id=encoder.tokenizer.vocab.pad_id)
                with encoder.inference():
                    data = encoder.forward(batch).data
                hidden = data[0, : len(first)].copy()
                self.store(key, hidden)
                for i in indices:
                    out[i] = hidden
            self.hits += hits
            self.misses += misses
            self._count("hits", hits)
            self._count("misses", misses)
            return out  # type: ignore[return-value]
