"""The inference engine: per-task micro-batching over cached encoders.

:class:`InferenceEngine` is the request-oriented core every entry point
(``repro serve``, ``repro predict`` and the replicated
:class:`~repro.serve.frontend.ReplicatedFrontend`) shares.  Requests are
submitted per task, accumulate in a
:class:`~repro.serve.batching.DynamicBatcher`, and are answered through
the task's :class:`~repro.tasks.TaskPredictor` ``predict`` when a flush
is due.  A single :class:`~repro.serve.cache.EncodingCache` is installed
on every predictor's encoder, so repeated tables skip the transformer
entirely.

**Determinism contract.**  Predictions are a pure function of the model
weights and the request — *never* of batch composition, arrival order,
or which process answered.  Padded-batch forwards are not bitwise
padding-invariant (numpy's reductions associate differently as the
padded length changes), so the engine executes each request's numerics
individually inside a flushed batch: micro-batching amortizes dispatch
and keeps the cache's within-wave dedup, while every answer stays
byte-identical whether the request was served alone, inside a full
batch, or by any replica of :class:`~repro.serve.frontend` at any fleet
size.  The padded-batch throughput this trades away is empirically a
wash on this stack (``bench_serve``: BLAS already saturates one matmul
and padding wastes flops); the caching + replication wins remain.

Telemetry (all through the global :class:`~repro.runtime.MetricsRegistry`):

- ``serve.requests`` / ``serve.batches`` counters;
- ``serve.batch_size`` and ``serve.queue_depth`` histograms;
- ``serve.latency_seconds`` timer (submit → response, per request);
- one ``kind="serve_request"`` trace event per answered request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Any, Callable

from .batching import BatchPolicy, DynamicBatcher
from .cache import EncodingCache
from ..runtime import get_registry
from ..tasks import Prediction

__all__ = ["ServeConfig", "PredictRequest", "PredictResponse",
           "InferenceEngine"]


@dataclass(frozen=True)
class ServeConfig:
    """Engine knobs shared by the HTTP server and the batch CLI."""

    max_batch: int = 8
    max_wait_seconds: float = 0.02
    cache_entries: int = 128
    metrics_prefix: str = "serve"
    compile: bool = False      # tape-replay encoders (bit-identical)

    def __post_init__(self) -> None:
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be positive")
        BatchPolicy(self.max_batch, self.max_wait_seconds)  # validates


@dataclass(frozen=True)
class PredictRequest:
    """One submitted unit of work."""

    request_id: int
    task: str
    example: Any


@dataclass(frozen=True)
class PredictResponse:
    """One answered request."""

    request_id: int
    task: str
    prediction: Prediction
    latency_seconds: float
    batch_size: int

    def to_dict(self) -> dict[str, Any]:
        from .requests import json_safe_label

        return {
            "id": self.request_id,
            "task": self.task,
            "label": json_safe_label(self.prediction.label),
            "score": self.prediction.score,
            "latency_seconds": self.latency_seconds,
            "batch_size": self.batch_size,
        }


class InferenceEngine:
    """Micro-batching dispatcher over a set of task predictors.

    Parameters
    ----------
    predictors:
        ``task_name -> TaskPredictor``.  Each predictor's encoder gets
        the engine's shared :class:`EncodingCache` installed.
    config:
        Batching and cache limits.
    clock:
        Injectable monotonic clock (tests drive deadlines with a fake).
    compile:
        Overrides ``config.compile`` when given; enables compiled
        tape-replay (:meth:`TableEncoder.enable_compiled_inference`) on
        every predictor's encoder — bit-identical outputs, no per-op
        Python dispatch on cache-warm signatures.
    """

    def __init__(self, predictors: dict[str, Any],
                 config: ServeConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 compile: bool | None = None) -> None:
        if not predictors:
            raise ValueError("at least one task predictor is required")
        self.config = config or ServeConfig()
        if compile is not None:
            self.config = dataclass_replace(self.config, compile=compile)
        self.clock = clock
        self.predictors = dict(predictors)
        self.cache = EncodingCache(
            max_entries=self.config.cache_entries,
            metrics_prefix=f"{self.config.metrics_prefix}.cache")
        policy = BatchPolicy(self.config.max_batch,
                             self.config.max_wait_seconds)
        self._batchers = {task: DynamicBatcher(policy, clock=clock)
                          for task in self.predictors}
        self._next_id = 0
        for predictor in self.predictors.values():
            encoder = getattr(predictor, "encoder", None)
            if encoder is not None and hasattr(encoder, "set_encoding_cache"):
                encoder.set_encoding_cache(self.cache)
            if self.config.compile and encoder is not None and hasattr(
                    encoder, "enable_compiled_inference"):
                encoder.enable_compiled_inference()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting across every task queue."""
        return sum(len(b) for b in self._batchers.values())

    def submit(self, task: str, example: Any) -> PredictRequest:
        """Enqueue one example; the answer arrives from :meth:`poll`."""
        if task not in self.predictors:
            raise KeyError(f"no predictor for task {task!r}; serving "
                           f"{sorted(self.predictors)}")
        request = PredictRequest(self._next_id, task, example)
        self._next_id += 1
        self._batchers[task].push(request)
        registry = get_registry()
        prefix = self.config.metrics_prefix
        registry.counter(f"{prefix}.requests").inc()
        registry.histogram(f"{prefix}.queue_depth").observe(self.queue_depth)
        return request

    def poll(self) -> list[PredictResponse]:
        """Answer every batch that is due (size or deadline)."""
        responses: list[PredictResponse] = []
        for task, batcher in self._batchers.items():
            while batcher.due():
                responses.extend(self._run_batch(task,
                                                 batcher.pop_batch()))
        return responses

    def drain(self) -> list[PredictResponse]:
        """Flush every queue regardless of deadlines (shutdown / batch IO)."""
        responses: list[PredictResponse] = []
        for task, batcher in self._batchers.items():
            while len(batcher):
                responses.extend(self._run_batch(
                    task, batcher.pop_batch(force=True)))
        return responses

    def next_deadline(self) -> float | None:
        """Earliest pending deadline across the task queues, if any."""
        deadlines = [d for b in self._batchers.values()
                     if (d := b.next_deadline()) is not None]
        return min(deadlines) if deadlines else None

    def process(self, submissions: list[tuple[str, Any]]
                ) -> list[PredictResponse]:
        """Submit-and-drain convenience for batch-file workloads.

        Responses come back sorted by request id (= submission order).
        """
        for task, example in submissions:
            self.submit(task, example)
        responses = self.drain()
        return sorted(responses, key=lambda r: r.request_id)

    # ------------------------------------------------------------------
    def _run_batch(self, task: str,
                   batch: list[tuple[PredictRequest, float]]
                   ) -> list[PredictResponse]:
        if not batch:
            return []
        registry = get_registry()
        prefix = self.config.metrics_prefix
        requests = [request for request, _ in batch]
        # One predict call per request: canonical per-example numerics
        # (see the module docstring's determinism contract).  Repeats
        # inside the wave still dedup through the encoding cache — the
        # first occurrence misses and stores, the rest hit.
        predictor = self.predictors[task]
        predictions = [predictor.predict([r.example], batch_size=1)[0]
                       for r in requests]
        finished = self.clock()
        registry.counter(f"{prefix}.batches").inc()
        registry.histogram(f"{prefix}.batch_size").observe(len(batch))
        responses = []
        for (request, arrived), prediction in zip(batch, predictions):
            latency = max(0.0, finished - arrived)
            registry.timer(f"{prefix}.latency_seconds").observe(latency)
            response = PredictResponse(request.request_id, task, prediction,
                                       latency, len(batch))
            registry.emit({
                "kind": "serve_request",
                "id": request.request_id,
                "task": task,
                "latency_seconds": latency,
                "batch_size": len(batch),
                "score": prediction.score,
            })
            responses.append(response)
        return responses
