"""The replicated serving tier: admission control over N model replicas.

``repro serve`` outgrew its single synchronous process here.  The
front-end owns the *request lifecycle* — admit → enqueue → dispatch →
complete, with deadline and shed exits at every stage — while the model
forwards run on N **replica workers**: persistent forked processes
reusing :class:`~repro.parallel.workers.WorkerPool`'s request/response
pipe protocol, heartbeats, SIGKILL reaping and backoff respawn.  Each
replica inherits the parent's :class:`~repro.serve.engine.InferenceEngine`
by fork (no model pickling) and answers whole waves of decoded requests.

The lifecycle stages and their exits:

- **admit** — the bounded :class:`AdmissionQueue` is the backpressure
  valve: a full queue *sheds* the request immediately with a structured
  retryable ``overloaded`` error instead of queueing unboundedly and
  hanging every client behind a growing backlog.
- **enqueue** — each ticket carries an optional absolute deadline.  A
  ticket that expires while queued is failed as ``deadline_exceeded``
  and is **never dispatched** — a worker's time is only spent on
  requests someone still wants.
- **dispatch** — a single dispatcher thread forms waves of up to
  ``max_batch`` tickets per free replica.  Routing prefers the ticket's
  :func:`~repro.serve.requests.affinity_key` slot (tables hash to
  replicas, so the fleet caches each table once — replica-aware cache
  dedup), but steals work for idle replicas: affinity is a locality
  hint, never a correctness requirement, because predictions are
  byte-identical on every replica (see ``repro.serve.engine``'s
  determinism contract).
- **complete / recover** — replies resolve tickets; a replica that
  dies, goes silent past ``heartbeat_timeout`` or blows the dispatch
  deadline is reaped and respawned (exponential backoff, bounded per
  slot), its wave re-enqueued at the front; past the respawn budget the
  slot retires and the pool *degrades*.  With no replicas left, waves
  run inline in the parent — same canonical numerics, same bytes.

Telemetry lands under ``serve.frontend.*`` (queue depth, sheds,
deadline expiries, dispatches, worker deaths/respawns/degradations)
with ``kind="frontend"`` trace events.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as _mp_connection
from typing import Any, Callable

from .engine import InferenceEngine
from .requests import affinity_key, json_safe_label
from ..parallel.workers import WorkerPool
from ..runtime import MetricsRegistry, get_registry, set_registry

__all__ = ["FrontendConfig", "ServeTicket", "AdmissionQueue",
           "ReplicatedFrontend"]

#: Dispatcher wake granularity (seconds) — bounds shed/deadline/failure
#: detection latency, never correctness.
_POLL_GRANULARITY = 0.02


@dataclass(frozen=True)
class FrontendConfig:
    """Admission, deadline and replication knobs for the serving tier.

    ``replicas=0`` serves in-process (no forks) behind the same
    admission queue and deadline machinery; ``replicas=N`` forks N
    persistent replica workers.  ``deadline_seconds=0`` disables
    per-request deadlines; ``dispatch_deadline=0`` disables the
    per-wave wall bound (heartbeat silence still catches wedged
    replicas).
    """

    replicas: int = 0
    max_queue: int = 64
    deadline_seconds: float = 0.0
    max_batch: int = 8
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 10.0
    dispatch_deadline: float = 0.0
    max_respawns: int = 2
    respawn_backoff: float = 0.05
    metrics_prefix: str = "serve.frontend"

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be positive")
        if self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")


class ServeTicket:
    """One admitted (or immediately shed) request and its eventual answer.

    Handler threads block on :meth:`wait`; the dispatcher resolves the
    ticket exactly once with either a response dict or a structured
    error dict ``{"code", "message", "retryable"}``.
    """

    __slots__ = ("request_id", "task", "example", "affinity", "arrived",
                 "deadline_at", "response", "error", "_event")

    def __init__(self, request_id: int, task: str, example: Any,
                 affinity: str, arrived: float,
                 deadline_at: float | None) -> None:
        self.request_id = request_id
        self.task = task
        self.example = example
        self.affinity = affinity
        self.arrived = arrived
        self.deadline_at = deadline_at
        self.response: dict[str, Any] | None = None
        self.error: dict[str, Any] | None = None
        self._event = threading.Event()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved; ``False`` on timeout."""
        return self._event.wait(timeout)

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now > self.deadline_at

    # -- resolution (dispatcher side; first resolution wins) -----------
    def complete(self, response: dict[str, Any]) -> None:
        if not self._event.is_set():
            self.response = response
            self._event.set()

    def fail(self, code: str, message: str, retryable: bool) -> None:
        if not self._event.is_set():
            self.error = {"code": code, "message": message,
                          "retryable": retryable}
            self._event.set()


class AdmissionQueue:  # thread-shared
    """The bounded FIFO between admission and dispatch (thread-safe).

    ``admit`` is the only entry point under caller threads; everything
    else runs on the dispatcher.  ``max_queue`` counts *waiting*
    tickets only — in-flight waves have already left the queue.

    ``close`` wakes every waiter and makes both future waits return
    immediately and future admissions shed — a ticket admitted after
    shutdown's final drain would otherwise hang its client forever.
    """

    def __init__(self, max_queue: int) -> None:
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self.not_empty = threading.Condition(self._lock)
        self._queue: "deque[ServeTicket]" = deque()  # guarded-by: _lock
        self._stopping = False                       # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        """Stop admissions and wake every ``wait_for_work`` caller.

        The flag flips under the same lock the waiters' predicate reads,
        so a waiter is either already past its predicate check (the
        ``notify_all`` lands) or has not reached it yet (it sees the
        flag) — there is no window where a close can be missed.
        """
        with self.not_empty:
            self._stopping = True
            self.not_empty.notify_all()

    def reopen(self) -> None:
        """Accept admissions again (frontend restart after ``close``)."""
        with self._lock:
            self._stopping = False

    def admit(self, ticket: ServeTicket) -> bool:
        """Append unless full; ``False`` means the caller must shed."""
        return self.admit_many([ticket])[0]

    def admit_many(self, tickets: list[ServeTicket]) -> list[bool]:
        """Admit a client-side batch atomically (one lock acquisition).

        The admitted prefix lands adjacent in the queue, so the
        dispatcher sees the whole batch as one candidate wave — a
        client batch is never split by a racing wave pop.  Tickets past
        the admission bound get ``False`` (the caller sheds them);
        admission is first-come within the batch, like the queue itself.
        A closed queue sheds everything.
        """
        with self._lock:
            verdicts = []
            for ticket in tickets:
                if self._stopping or len(self._queue) >= self.max_queue:
                    verdicts.append(False)
                    continue
                self._queue.append(ticket)
                verdicts.append(True)
            if any(verdicts):
                self.not_empty.notify()
            return verdicts

    def requeue(self, tickets: list[ServeTicket]) -> None:
        """Put recovered tickets back at the *front* (they waited longest).

        Recovery re-entry is exempt from the admission bound: the
        tickets were already admitted once and shedding them now would
        turn a replica failure into client-visible errors.
        """
        with self._lock:
            for ticket in reversed(tickets):
                self._queue.appendleft(ticket)
            if tickets:
                self.not_empty.notify()

    def pop_expired(self, now: float) -> list[ServeTicket]:
        """Remove every ticket whose deadline has passed."""
        with self._lock:
            keep: "deque[ServeTicket]" = deque()
            expired = []
            for ticket in self._queue:
                (expired if ticket.expired(now) else keep).append(ticket)
            self._queue = keep
            return expired

    def pop_for(self, slot_of: Callable[[ServeTicket], int], slot: int,
                limit: int) -> list[ServeTicket]:
        """Pop up to ``limit`` tickets routed to ``slot`` (FIFO among them)."""
        with self._lock:
            keep: "deque[ServeTicket]" = deque()
            taken: list[ServeTicket] = []
            for ticket in self._queue:
                if len(taken) < limit and slot_of(ticket) == slot:
                    taken.append(ticket)
                else:
                    keep.append(ticket)
            self._queue = keep
            return taken

    def pop_any(self, limit: int) -> list[ServeTicket]:
        """Pop the oldest ``limit`` tickets regardless of routing."""
        with self._lock:
            taken = []
            while self._queue and len(taken) < limit:
                taken.append(self._queue.popleft())
            return taken

    def wait_for_work(self, timeout: float) -> bool:
        """Block until work arrives, the queue closes, or ``timeout``.

        ``True`` means "something to do" (work queued or shutting
        down); ``False`` is a plain timeout.  The predicate runs under
        the same lock ``close``/``admit_many`` hold while mutating and
        notifying, so a close or admission landing between a caller's
        earlier emptiness probe and this wait cannot be lost; the
        bounded timeout caps the cost of any wakeup the OS still drops.
        """
        with self.not_empty:
            if self._queue or self._stopping:
                return True
            return self.not_empty.wait(timeout)


class ReplicatedFrontend:  # thread-shared
    """N byte-identical model replicas behind one admission queue.

    Parameters
    ----------
    engine:
        The fully-built inference engine.  With ``replicas > 0`` every
        worker inherits it by fork (warm caches ride along); the parent
        copy only runs when the pool has fully degraded.
    config:
        Admission/deadline/replication policy.
    clock:
        Injectable monotonic clock — tests drive deadlines and shed
        paths deterministically with a fake.  Worker liveness always
        uses real ``time.monotonic`` (a fake clock cannot see a real
        process die).
    """

    def __init__(self, engine: InferenceEngine,
                 config: FrontendConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.engine = engine
        self.config = config or FrontendConfig()
        self.clock = clock
        self.queue = AdmissionQueue(self.config.max_queue)
        self._pool: WorkerPool | None = None
        if self.config.replicas > 0:
            self._pool = WorkerPool(
                self.config.replicas, self._serve_shard,
                self._sync_noop,
                heartbeat_interval=self.config.heartbeat_interval)
        self._parent_pid = os.getpid()
        self._ids_lock = threading.Lock()
        self._next_id = 0  # guarded-by: _ids_lock
        # Lock order (outermost first): _lifecycle_lock -> _state_lock
        # -> queue._lock.  Pipe sends, ticket resolution, sleeps and
        # pool calls all happen *outside* these locks — a wedged
        # replica must never wedge healthz or admission bookkeeping.
        self._state_lock = threading.Lock()
        self._inflight: dict[int, tuple[int, list[ServeTicket], float]] = {}  # guarded-by: _state_lock
        self._wave_ids = 0  # guarded-by: _state_lock
        self._replica_cache: dict[int, dict[str, int]] = {}  # guarded-by: _state_lock
        self._respawn_attempts: dict[int, int] = {}
        self._lifecycle_lock = threading.Lock()
        self._dispatcher: threading.Thread | None = None  # guarded-by: _lifecycle_lock
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicatedFrontend":
        """Fork the replica fleet (if any) and start the dispatcher.

        Idempotent.  Forking happens *here*, before traffic, so every
        replica inherits the same model bytes and any pre-warmed cache,
        and no handler thread holds a lock mid-fork.
        """
        with self._lifecycle_lock:
            if self._dispatcher is not None:
                return self
            if self._pool is not None:
                self._pool.start()
            self._stopping.clear()
            self.queue.reopen()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatcher",
                daemon=True)
            self._dispatcher.start()
        return self

    def close(self) -> None:
        """Stop dispatching, fail whatever is still pending, reap workers."""
        self._stopping.set()
        self.queue.close()
        with self._lifecycle_lock:
            dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.join(timeout=10.0)
        with self._state_lock:
            pending = list(self._inflight.values())
            self._inflight.clear()
        for _, tickets, _ in pending:
            for ticket in tickets:
                ticket.fail("shutdown", "server shutting down", True)
        for ticket in self.queue.pop_any(self.config.max_queue):
            ticket.fail("shutdown", "server shutting down", True)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ReplicatedFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admission (handler threads)
    # ------------------------------------------------------------------
    def submit(self, task: str, example: Any) -> ServeTicket:
        """Admit one decoded request; the ticket resolves asynchronously.

        A full queue resolves the ticket *immediately* with the
        retryable ``overloaded`` error — admission control never
        blocks the caller behind a backlog it cannot join.
        """
        return self.submit_many([(task, example)])[0]

    def submit_many(self, submissions: list[tuple[str, Any]]
                    ) -> list[ServeTicket]:
        """Admit a client-side batch atomically.

        The batch enters the queue adjacent and unsplit, so it
        dispatches as one wave (up to ``max_batch``).  Tickets the
        bound rejects resolve immediately as retryable ``overloaded``
        sheds; the rest proceed — one shed never fails its batch-mates.
        """
        for task, _ in submissions:
            if task not in self.engine.predictors:
                raise KeyError(f"no predictor for task {task!r}; serving "
                               f"{sorted(self.engine.predictors)}")
        now = self.clock()
        deadline_at = (now + self.config.deadline_seconds
                       if self.config.deadline_seconds > 0 else None)
        tickets = []
        with self._ids_lock:
            for task, example in submissions:
                tickets.append(ServeTicket(
                    self._next_id, task, example,
                    affinity_key(task, example), now, deadline_at))
                self._next_id += 1
        registry = get_registry()
        prefix = self.config.metrics_prefix
        registry.counter(f"{prefix}.requests").inc(len(tickets))
        verdicts = self.queue.admit_many(tickets)
        for ticket, admitted in zip(tickets, verdicts):
            if admitted:
                continue
            registry.counter(f"{prefix}.shed").inc()
            registry.emit({"kind": "frontend", "action": "shed",
                           "id": ticket.request_id, "task": ticket.task,
                           "queue_depth": len(self.queue)})
            ticket.fail("overloaded",
                        f"admission queue full ({self.config.max_queue}); "
                        "retry with backoff", True)
        registry.histogram(f"{prefix}.queue_depth").observe(len(self.queue))
        return tickets

    def process(self, submissions: list[tuple[str, Any]],
                timeout: float | None = None) -> list[dict[str, Any]]:
        """Submit-and-wait convenience (batch files, benches, tests).

        Returns one dict per submission, in submission order: either a
        response dict or ``{"error": {...}}`` for shed/expired/failed
        tickets.
        """
        self.start()
        tickets = self.submit_many(submissions)
        results = []
        for ticket in tickets:
            if not ticket.wait(timeout):
                ticket.fail("timeout", "client wait timed out", True)
            results.append(self.result_payload(ticket))
        return results

    @staticmethod
    def result_payload(ticket: ServeTicket) -> dict[str, Any]:
        if ticket.response is not None:
            return ticket.response
        return {"error": dict(ticket.error or
                              {"code": "internal", "message": "unresolved",
                               "retryable": False})}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def live_replicas(self) -> int:
        if self._pool is None:
            return 0
        return len(self._pool.live_slots())

    def healthz(self) -> dict[str, Any]:
        """Liveness plus the gauges an operator pages on."""
        registry = get_registry()
        prefix = self.config.metrics_prefix
        live = self.live_replicas()
        configured = self.config.replicas
        fleet: dict[str, int] = {"entries": 0, "hits": 0, "misses": 0,
                                 "evictions": 0}
        with self._state_lock:
            replica_stats = [dict(stats)
                             for stats in self._replica_cache.values()]
            inflight_waves = len(self._inflight)
        for stats in replica_stats:
            for key in fleet:
                fleet[key] += int(stats.get(key, 0))
        parent = self.engine.cache.stats()
        if configured == 0:
            fleet = parent
        return {
            "status": ("ok" if configured == 0 or live == configured
                       else "degraded"),
            "tasks": sorted(self.engine.predictors),
            "replicas": configured,
            "live_replicas": live,
            "queue_depth": self.queue_depth,
            "max_queue": self.config.max_queue,
            "inflight_waves": inflight_waves,
            "shed": int(registry.counter(f"{prefix}.shed").value),
            "deadline_expired":
                int(registry.counter(f"{prefix}.deadline_expired").value),
            "cache": fleet,
        }

    # ------------------------------------------------------------------
    # Replica-side execution (runs in forked workers; also the inline
    # fallback in the parent)
    # ------------------------------------------------------------------
    def _sync_noop(self, arrays: list) -> None:
        """Serving never syncs parameters — weights are fork-frozen."""

    def _serve_shard(self, payload: list[tuple[int, str, Any]]
                     ) -> tuple[dict, dict]:
        """Answer one wave of decoded requests through the local engine.

        Shaped as a :class:`WorkerPool` ``run_shard`` callable: returns
        ``(results, stats)``.  Failures are caught per *request*, so one
        poisoned example never takes down its wave-mates or the replica.
        """
        if os.getpid() != self._parent_pid and get_registry().sinks:
            # First wave in a fresh fork: drop inherited sinks so N
            # replicas never interleave writes into the parent's JSONL
            # artifact through inherited file descriptors.
            set_registry(MetricsRegistry())
        responses = []
        for request_id, task, example in payload:
            try:
                answered = self.engine.process([(task, example)])[0]
                responses.append({
                    "id": request_id, "task": task, "ok": True,
                    "label": json_safe_label(answered.prediction.label),
                    "score": answered.prediction.score,
                })
            except Exception as error:
                responses.append({
                    "id": request_id, "task": task, "ok": False,
                    "message": f"{type(error).__name__}: {error}",
                })
        return ({"responses": responses,
                 "cache": self.engine.cache.stats()},
                {"served": len(responses)})

    # ------------------------------------------------------------------
    # Dispatcher (single thread)
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            now = self.clock()
            self._fail_expired(self.queue.pop_expired(now), "queued")
            if self._pool is not None:
                self._drain_replies()
                self._supervise()
            self._dispatch_free()
            self._idle_wait()

    def _idle_wait(self) -> None:
        if self._stopping.is_set():
            return
        if self._pool is not None:
            with self._state_lock:
                busy = list(self._inflight)
            connections = [self._pool.handle(slot).connection
                           for slot in busy
                           if slot in self._pool.live_slots()]
            if connections:
                _mp_connection.wait(connections, timeout=_POLL_GRANULARITY)
                return
        if len(self.queue) == 0:
            self.queue.wait_for_work(_POLL_GRANULARITY)

    def _fail_expired(self, tickets: list[ServeTicket], where: str) -> None:
        if not tickets:
            return
        registry = get_registry()
        prefix = self.config.metrics_prefix
        for ticket in tickets:
            registry.counter(f"{prefix}.deadline_expired").inc()
            registry.emit({"kind": "frontend", "action": "deadline_expired",
                           "id": ticket.request_id, "task": ticket.task,
                           "where": where})
            ticket.fail("deadline_exceeded",
                        f"deadline ({self.config.deadline_seconds:g}s) "
                        f"exceeded while {where}", True)

    def _slot_of(self, ticket: ServeTicket, live: list[int]) -> int:
        """Stable affinity routing over the currently-live replicas."""
        digest = zlib.crc32(ticket.affinity.encode())
        return live[digest % len(live)]

    def _dispatch_free(self) -> None:
        if self._pool is None:
            batch = self.queue.pop_any(self.config.max_batch)
            if batch:
                self._execute_inline(batch)
            return
        live = self._pool.live_slots()
        if not live:
            batch = self.queue.pop_any(self.config.max_batch)
            if batch:
                self._execute_inline(batch)
            return
        with self._state_lock:
            busy = set(self._inflight)
        free = [slot for slot in live if slot not in busy]
        for slot in free:
            batch = self.queue.pop_for(
                lambda t: self._slot_of(t, live), slot, self.config.max_batch)
            if not batch:
                # Work conservation beats affinity: an idle replica
                # steals the head of the queue rather than sit out.
                batch = self.queue.pop_any(self.config.max_batch)
            if not batch:
                continue
            self._send_wave(slot, batch)

    def _send_wave(self, slot: int, batch: list[ServeTicket]) -> None:
        payload = [(t.request_id, t.task, t.example) for t in batch]
        with self._state_lock:
            wave_id = self._wave_ids
            self._wave_ids += 1
        registry = get_registry()
        prefix = self.config.metrics_prefix
        try:
            # Pipe send stays outside _state_lock; only the dispatcher
            # sends, so registering the wave after the send is safe.
            self._pool.send(slot, wave_id, None, [(wave_id, payload)],
                            deadline=self.config.dispatch_deadline)
        except (BrokenPipeError, EOFError, OSError):
            self._handle_loss(slot, "replica pipe closed at dispatch")
            self.queue.requeue(batch)
            return
        with self._state_lock:
            self._inflight[slot] = (wave_id, batch, time.monotonic())
        registry.counter(f"{prefix}.dispatches").inc()
        registry.histogram(f"{prefix}.wave_size").observe(len(batch))

    def _execute_inline(self, batch: list[ServeTicket]) -> None:
        """Serve a wave in the parent process (replicas=0 or fully degraded).

        Byte-identical to a replica serving it: same engine, same
        canonical per-example numerics.
        """
        prefix = self.config.metrics_prefix
        registry = get_registry()
        if self._pool is not None:
            registry.counter(f"{prefix}.fallbacks").inc()
        registry.counter(f"{prefix}.dispatches").inc()
        registry.histogram(f"{prefix}.wave_size").observe(len(batch))
        payload = [(t.request_id, t.task, t.example) for t in batch]
        result, _stats = self._serve_shard(payload)
        self._complete_wave(batch, result, replica=-1)

    def _drain_replies(self) -> None:
        with self._state_lock:
            slots = list(self._inflight)
        for slot in slots:
            if slot not in self._pool.live_slots():
                continue
            while True:
                status, payload = self._pool.poll(slot, timeout=0)
                if status == "hb":
                    continue
                if status == "ok":
                    with self._state_lock:
                        wave_id, batch, _sent = self._inflight.pop(slot)
                    for shard_index, result, _stats, _secs in payload:
                        self._complete_wave(batch, result, replica=slot)
                    break
                if status == "error":
                    # run_shard catches per request; this frame means the
                    # replica loop itself blew up — deterministic, so
                    # re-execution would fail again.  Fail the wave.
                    with self._state_lock:
                        _wave_id, batch, _sent = self._inflight.pop(slot)
                    for ticket in batch:
                        ticket.fail("internal",
                                    f"replica {slot} failed: {payload}",
                                    False)
                    break
                if status == "dead":
                    self._recover_slot(slot, "replica process died")
                    break
                break  # (None, None): nothing more buffered

    def _supervise(self) -> None:
        """Death / heartbeat-silence / dispatch-deadline detection."""
        config = self.config
        now = time.monotonic()
        with self._state_lock:
            slots = list(self._inflight)
        for slot in slots:
            if slot not in self._pool.live_slots():
                continue
            handle = self._pool.handle(slot)
            reason = None
            if not handle.alive():
                reason = (f"replica process died (exitcode="
                          f"{handle.process.exitcode})")
            elif handle.deadline_at is not None and now > handle.deadline_at:
                reason = (f"dispatch deadline ({config.dispatch_deadline:g}s)"
                          " exceeded")
            elif (config.heartbeat_interval > 0
                    and now - handle.last_seen > config.heartbeat_timeout):
                reason = f"no heartbeat for {config.heartbeat_timeout:g}s"
            if reason is not None:
                self._recover_slot(slot, reason)

    def _recover_slot(self, slot: int, reason: str) -> None:
        """Reap a failed replica, requeue its wave, respawn or degrade."""
        with self._state_lock:
            _wave_id, batch, _sent = self._inflight.pop(
                slot, (None, [], 0.0))
        self._handle_loss(slot, reason)
        now = self.clock()
        expired = [t for t in batch if t.expired(now)]
        self._fail_expired(expired, "recovering")
        survivors = [t for t in batch if not t.expired(now)]
        if survivors:
            get_registry().counter(
                f"{self.config.metrics_prefix}.redispatched").inc(
                    len(survivors))
            self.queue.requeue(survivors)

    def _handle_loss(self, slot: int, reason: str) -> None:
        registry = get_registry()
        prefix = self.config.metrics_prefix
        self._pool.reap(slot)
        with self._state_lock:
            self._replica_cache.pop(slot, None)
        registry.counter(f"{prefix}.worker_deaths").inc()
        registry.emit({"kind": "frontend", "action": "worker_death",
                       "worker": slot, "reason": reason})
        attempts = self._respawn_attempts.get(slot, 0)
        if attempts < self.config.max_respawns:
            self._respawn_attempts[slot] = attempts + 1
            backoff = self.config.respawn_backoff * (2 ** attempts)
            if backoff > 0:
                time.sleep(backoff)
            self._pool.respawn(slot)
            registry.counter(f"{prefix}.respawns").inc()
            registry.emit({"kind": "frontend", "action": "worker_respawn",
                           "worker": slot,
                           "reason": f"respawn {attempts + 1}/"
                                     f"{self.config.max_respawns} after "
                                     f"{backoff:g}s backoff"})
            return
        registry.counter(f"{prefix}.degraded").inc()
        registry.emit({"kind": "frontend", "action": "pool_degraded",
                       "worker": slot,
                       "reason": f"slot retired after {attempts} respawns; "
                                 f"{len(self._pool.live_slots())} remain"})

    def _complete_wave(self, batch: list[ServeTicket], result: dict,
                       replica: int) -> None:
        by_id = {ticket.request_id: ticket for ticket in batch}
        if replica >= 0 and "cache" in result:
            with self._state_lock:
                self._replica_cache[replica] = result["cache"]
        now = self.clock()
        registry = get_registry()
        prefix = self.config.metrics_prefix
        late = [ticket for ticket in batch if ticket.expired(now)]
        self._fail_expired(late, "in flight")
        for entry in result.get("responses", []):
            ticket = by_id.get(entry["id"])
            if ticket is None or ticket.done():
                continue
            if not entry.get("ok"):
                ticket.fail("internal", entry.get("message", "replica error"),
                            False)
                continue
            latency = max(0.0, now - ticket.arrived)
            registry.timer(f"{prefix}.latency_seconds").observe(latency)
            registry.emit({
                "kind": "frontend", "action": "answered",
                "id": ticket.request_id, "task": ticket.task,
                "replica": replica, "latency_seconds": latency,
                "batch_size": len(batch),
            })
            ticket.complete({
                "id": ticket.request_id,
                "task": ticket.task,
                "label": entry["label"],
                "score": entry["score"],
                "latency_seconds": latency,
                "batch_size": len(batch),
                "replica": replica,
            })
