"""Request decoding: JSON payloads → tables, examples, predictors.

The serving surface (``repro predict`` / ``repro serve``) speaks plain
JSON.  Each request names a ``task`` and carries the task's inputs; the
table rides along either inline (``{"header": [...], "rows": [[...]]}``)
or as a CSV path (``{"csv": "path/to/table.csv"}``).  This module turns
those payloads into the typed example dataclasses the task predictors
consume, and renders :class:`~repro.tasks.Prediction` labels back into
JSON-safe values.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from ..nn import Module
from ..corpus import (
    ColumnTypeExample,
    ImputationExample,
    NLIExample,
    QAExample,
    RetrievalExample,
    Text2SqlExample,
)
from ..sql import SelectQuery
from ..tables import Table, TableContext, load_table
from ..tasks import (
    BiEncoderRetriever,
    CellSelectionQA,
    ColumnTypePredictor,
    NliClassifier,
    SketchParser,
    ValueImputer,
    build_label_set,
    build_value_vocabulary_from_tables,
)

__all__ = ["SERVED_TASKS", "RequestError", "affinity_key", "parse_table",
           "build_example", "build_predictor", "json_safe_label"]

SERVED_TASKS = ("qa", "nli", "imputation", "coltype", "retrieval", "text2sql")


class RequestError(ValueError):
    """A malformed request payload (client error, not a server bug)."""


def _require(payload: dict[str, Any], field: str) -> Any:
    if field not in payload:
        raise RequestError(f"request is missing required field {field!r}")
    return payload[field]


def parse_table(spec: Any) -> Table:
    """Decode a request's table: inline header/rows dict or a CSV path."""
    if isinstance(spec, Table):
        return spec
    if isinstance(spec, str):
        spec = {"csv": spec}
    if not isinstance(spec, dict):
        raise RequestError("table must be an object or a CSV path string")
    if "csv" in spec:
        path = Path(spec["csv"])
        if not path.is_file():
            raise RequestError(f"table file not found: {path}")
        return load_table(path, title=spec.get("title", ""))
    header = _require(spec, "header")
    rows = _require(spec, "rows")
    if not isinstance(header, (list, tuple)):
        raise RequestError("table header must be a list of column names")
    if not isinstance(rows, (list, tuple)):
        raise RequestError("table rows must be a list of rows")
    context = TableContext(title=str(spec.get("title", "")),
                           caption=str(spec.get("caption", "")))
    try:
        return Table(header, rows, context=context,
                     table_id=str(spec.get("table_id", "")))
    except ValueError as error:
        raise RequestError(str(error)) from error


def build_example(task: str, payload: dict[str, Any]) -> Any:
    """The typed example one request decodes to.

    ``retrieval`` needs no table (the corpus is engine state); every
    other task requires ``payload["table"]``.
    """
    if task == "retrieval":
        return RetrievalExample(query=str(_require(payload, "query")),
                                positive_table_id="")
    table = parse_table(_require(payload, "table"))
    if task == "qa":
        return QAExample(table, str(_require(payload, "question")), None, ())
    if task == "nli":
        return NLIExample(table, str(_require(payload, "statement")), 0)
    if task == "imputation":
        row, column = int(_require(payload, "row")), int(_require(payload, "column"))
        if not (0 <= row < table.num_rows and 0 <= column < table.num_columns):
            raise RequestError(f"cell ({row}, {column}) outside table "
                               f"shape {table.shape}")
        return ImputationExample(table, row, column, "")
    if task == "coltype":
        column = int(_require(payload, "column"))
        if not 0 <= column < table.num_columns:
            raise RequestError(f"column {column} outside table "
                               f"shape {table.shape}")
        return ColumnTypeExample(table, column, "")
    if task == "text2sql":
        return Text2SqlExample(table, str(_require(payload, "question")), None)
    raise RequestError(f"unknown task {task!r}; served tasks: "
                       f"{', '.join(SERVED_TASKS)}")


def affinity_key(task: str, example: Any) -> str:
    """The replica-routing key for one decoded request.

    Table-bearing requests key on the *table's* content hash (context
    excluded), so every request touching one table — whatever its task
    or question — prefers the same replica and the fleet caches each
    table's serialization and hidden states exactly once instead of
    N times.  Table-free requests (retrieval) key on the query text.
    Routing by this key is a cache-locality *hint*, never a correctness
    requirement: predictions are byte-identical on every replica.
    """
    from .cache import table_fingerprint

    table = getattr(example, "table", None)
    if isinstance(table, Table):
        return table_fingerprint(table, None)
    return f"{task}:{getattr(example, 'query', '')}"


def build_predictor(task: str, encoder: Module, tables: list[Table],
                    rng: np.random.Generator) -> Module:
    """An untrained-or-bundle predictor head for one served task.

    ``tables`` seeds the data-dependent pieces: the imputer's value
    vocabulary, the column-type label set, and the retriever's corpus.
    """
    if task == "qa":
        return CellSelectionQA(encoder, rng)
    if task == "nli":
        return NliClassifier(encoder, rng)
    if task == "imputation":
        vocabulary = build_value_vocabulary_from_tables(tables)
        if not vocabulary:
            raise RequestError("imputation needs a corpus with non-empty cells")
        return ValueImputer(encoder, vocabulary, rng)
    if task == "coltype":
        labels = build_label_set(
            [ColumnTypeExample(t, c, t.header[c])
             for t in tables for c in range(t.num_columns) if t.header[c]])
        if not labels:
            raise RequestError("coltype needs a corpus with named columns")
        return ColumnTypePredictor(encoder, labels, rng)
    if task == "retrieval":
        if not tables:
            raise RequestError("retrieval needs a corpus to rank against")
        corpus = [t if t.table_id else _with_id(t, f"table-{i}")
                  for i, t in enumerate(tables)]
        return BiEncoderRetriever(encoder, corpus=corpus)
    if task == "text2sql":
        return SketchParser(encoder, rng)
    raise RequestError(f"unknown task {task!r}; served tasks: "
                       f"{', '.join(SERVED_TASKS)}")


def _with_id(table: Table, table_id: str) -> Table:
    clone = Table(table.header, table.rows, context=table.context,
                  table_id=table_id)
    return clone


def json_safe_label(label: Any) -> Any:
    """A Prediction label as a JSON-encodable value."""
    if isinstance(label, SelectQuery):
        return label.render()
    if isinstance(label, tuple):
        return [json_safe_label(part) for part in label]
    if isinstance(label, (np.integer,)):
        return int(label)
    if isinstance(label, (np.floating,)):
        return float(label)
    return label
