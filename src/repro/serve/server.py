"""A minimal stdlib HTTP front-end for the inference engine.

Endpoints:

- ``POST /predict`` — JSON body ``{"task": ..., <task inputs>}`` (or a
  JSON list of such objects for a client-side batch); answers with the
  prediction(s) as JSON.
- ``GET /healthz`` — liveness + queue/cache gauges.
- ``GET /metrics`` — the registry's full instrument snapshot.

The handler is synchronous: a POST submits its request(s) and drains the
engine, so micro-batching shows up across the objects of one body (and
across the encoding cache between bodies).  That keeps the server
dependency-free and deterministic — the concurrency story of a real
deployment (worker pools, streaming) is out of scope for the repro.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any

from .engine import InferenceEngine
from .requests import RequestError, build_example
from ..runtime import get_registry

__all__ = ["make_server", "serve_forever"]


def _handle_predict(engine: InferenceEngine, body: Any) -> Any:
    """Decode one POST body and answer it through the engine."""
    single = isinstance(body, dict)
    items = [body] if single else body
    if not isinstance(items, list) or not items:
        raise RequestError("body must be a request object or non-empty list")
    submissions = []
    for item in items:
        if not isinstance(item, dict):
            raise RequestError("each request must be a JSON object")
        task = item.get("task")
        if not isinstance(task, str):
            raise RequestError("request is missing required field 'task'")
        submissions.append((task, build_example(task, item)))
    try:
        responses = engine.process(submissions)
    except KeyError as error:
        raise RequestError(str(error)) from error
    payloads = [r.to_dict() for r in responses]
    return payloads[0] if single else payloads


def make_server(engine: InferenceEngine, host: str = "127.0.0.1",
                port: int = 8080) -> HTTPServer:
    """An :class:`HTTPServer` bound to ``host:port`` serving ``engine``."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args: Any) -> None:  # quiet by default
            pass

        def _reply(self, status: int, payload: Any) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                self._reply(200, {
                    "status": "ok",
                    "tasks": sorted(engine.predictors),
                    "queue_depth": engine.queue_depth,
                    "cache_entries": len(engine.cache),
                    "cache_hits": engine.cache.hits,
                    "cache_misses": engine.cache.misses,
                })
            elif self.path == "/metrics":
                self._reply(200, get_registry().snapshot())
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            if self.path != "/predict":
                self._reply(404, {"error": f"unknown path {self.path}"})
                return
            length = int(self.headers.get("Content-Length", 0))
            try:
                body = json.loads(self.rfile.read(length) or b"null")
                self._reply(200, _handle_predict(engine, body))
            except (json.JSONDecodeError, RequestError) as error:
                self._reply(400, {"error": str(error)})

    return HTTPServer((host, port), Handler)


def serve_forever(engine: InferenceEngine, host: str = "127.0.0.1",
                  port: int = 8080, max_requests: int | None = None) -> None:
    """Run the HTTP loop; ``max_requests`` bounds it for tests/demos."""
    server = make_server(engine, host, port)
    try:
        if max_requests is None:
            server.serve_forever()
        else:
            for _ in range(max_requests):
                server.handle_request()
    finally:
        server.server_close()
