"""The HTTP surface of the serving tier: ``/v1`` endpoints over a
threaded server and the replicated front-end.

One :class:`ServerConfig`-driven entry point — :func:`run_server` —
replaces the old ``make_server``/``serve_forever`` pair (both remain as
thin deprecated shims).  The wire surface is versioned:

- ``POST /v1/predict`` — JSON body ``{"task": ..., <task inputs>}`` or a
  JSON list of such objects (a client-side batch, admitted atomically so
  it dispatches as one wave);
- ``GET /v1/healthz`` — liveness, replica fleet and queue/cache gauges;
- ``GET /v1/metrics`` — the registry's full instrument snapshot
  (counters, timers with p50/p99, histograms).

Legacy unversioned paths (``/predict``, ``/healthz``, ``/metrics``)
still answer identically but carry a ``Deprecation: true`` header and a
``Link: …; rel="successor-version"`` pointer.

Every error is a structured envelope —
``{"error": {"code", "message", "retryable"}}`` — never an ad-hoc
string: ``retryable`` tells clients whether backing off and retrying
can succeed (shed/deadline) or the request itself is at fault
(``bad_request``) or the server is (``internal``).  A single-object
body maps its failure to the HTTP status (429-family semantics via
503/504); a list body always answers 200 with per-item envelopes, so
one shed item never hides its batch-mates' answers.

Requests flow handler thread → :class:`ReplicatedFrontend` ticket →
dispatcher → replica (or inline engine), so ``ThreadingHTTPServer``'s
per-connection threads overlap network IO with model compute, and
admission control — not the accept queue — decides who gets served
under overload.

Thread-ownership discipline: handler threads own nothing shared — every
mutable thing they touch is either per-request local, or reached through
the front-end's locked surfaces (admission queue, ticket events, the
registry).  The static analyzer (REPRO008/REPRO009) treats every
``Handler`` method as thread-reachable, so any shared state added here
must declare its guard; the lock-order hierarchy lives in
``frontend.py`` and DESIGN.md's "Concurrency discipline" section.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .engine import InferenceEngine
from .frontend import FrontendConfig, ReplicatedFrontend, ServeTicket
from .requests import RequestError, build_example
from ..runtime import get_registry

__all__ = ["ServerConfig", "run_server", "make_http_server",
           "make_server", "serve_forever"]

#: ticket error code → HTTP status.  Unlisted codes are server bugs.
_ERROR_STATUS = {
    "bad_request": 400,
    "not_found": 404,
    "internal": 500,
    "overloaded": 503,
    "shutdown": 503,
    "deadline_exceeded": 504,
    "timeout": 504,
}


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` needs beyond the engine itself.

    ``replicas=0`` serves in-process; ``deadline_ms=0`` disables
    per-request deadlines.  ``max_requests`` bounds the accept loop for
    tests and demos (``None`` = run forever).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    replicas: int = 0
    max_queue: int = 64
    deadline_ms: float = 0.0
    max_batch: int = 8
    verbose: bool = False
    max_requests: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms < 0:
            raise ValueError("deadline_ms must be non-negative")
        self.frontend_config()  # validates the remaining knobs

    def frontend_config(self) -> FrontendConfig:
        return FrontendConfig(replicas=self.replicas,
                              max_queue=self.max_queue,
                              deadline_seconds=self.deadline_ms / 1000.0,
                              max_batch=self.max_batch)


def _error_body(code: str, message: str, retryable: bool) -> dict[str, Any]:
    return {"error": {"code": code, "message": message,
                      "retryable": retryable}}


def _decode_body(body: Any) -> tuple[bool, list[tuple[str, Any]]]:
    """Decode one POST body into typed submissions (raises RequestError)."""
    single = isinstance(body, dict)
    items = [body] if single else body
    if not isinstance(items, list) or not items:
        raise RequestError("body must be a request object or non-empty list")
    submissions = []
    for item in items:
        if not isinstance(item, dict):
            raise RequestError("each request must be a JSON object")
        task = item.get("task")
        if not isinstance(task, str):
            raise RequestError("request is missing required field 'task'")
        submissions.append((task, build_example(task, item)))
    return single, submissions


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning the front-end's lifecycle."""

    daemon_threads = True

    def __init__(self, address, handler, frontend: ReplicatedFrontend) -> None:
        super().__init__(address, handler)
        self.frontend = frontend

    def server_close(self) -> None:
        try:
            self.frontend.close()
        finally:
            super().server_close()


def make_http_server(engine: InferenceEngine,
                     config: ServerConfig | None = None) -> _ServeHTTPServer:
    """Build (and start the front-end of) the HTTP server for ``engine``.

    Prefer :func:`run_server` unless you need the server object itself
    (tests drive ``handle_request`` one call at a time).  The returned
    server's ``server_close`` also closes the front-end and its replica
    fleet.
    """
    config = config or ServerConfig()
    frontend = ReplicatedFrontend(engine, config.frontend_config())

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: Any) -> None:
            # Request lines used to vanish here; now they flow through
            # the runtime event stream when --verbose asked for them,
            # so JSONL sinks capture access logs next to serve metrics.
            if not config.verbose:
                return
            get_registry().emit({"kind": "http",
                                 "client": self.address_string(),
                                 "line": format % args})

        # -- plumbing ---------------------------------------------------
        def _reply(self, status: int, payload: Any, *,
                   deprecated: bool = False,
                   successor: str | None = None) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if deprecated:
                self.send_header("Deprecation", "true")
                if successor:
                    self.send_header(
                        "Link", f'<{successor}>; rel="successor-version"')
            self.end_headers()
            self.wfile.write(body)

        def _route(self, path: str) -> tuple[str | None, bool]:
            """``(endpoint, legacy?)`` — legacy paths answer deprecated."""
            if path.startswith("/v1/"):
                return path[len("/v1"):], False
            return path, True

        # -- GET --------------------------------------------------------
        def do_GET(self) -> None:
            endpoint, legacy = self._route(self.path)
            if endpoint == "/healthz":
                self._reply(200, frontend.healthz(), deprecated=legacy,
                            successor="/v1/healthz")
            elif endpoint == "/metrics":
                self._reply(200, get_registry().snapshot(),
                            deprecated=legacy, successor="/v1/metrics")
            else:
                self._reply(404, _error_body(
                    "not_found", f"unknown path {self.path}", False))

        # -- POST -------------------------------------------------------
        def do_POST(self) -> None:
            endpoint, legacy = self._route(self.path)
            if endpoint != "/predict":
                self._reply(404, _error_body(
                    "not_found", f"unknown path {self.path}", False))
                return
            length = int(self.headers.get("Content-Length", 0))
            try:
                body = json.loads(self.rfile.read(length) or b"null")
                single, submissions = _decode_body(body)
            except (json.JSONDecodeError, RequestError) as error:
                self._reply(400, _error_body("bad_request", str(error),
                                             False),
                            deprecated=legacy, successor="/v1/predict")
                return
            frontend.start()
            try:
                tickets = frontend.submit_many(submissions)
            except KeyError as error:
                self._reply(400, _error_body("bad_request", str(error),
                                             False),
                            deprecated=legacy, successor="/v1/predict")
                return
            payloads = [self._await(ticket) for ticket in tickets]
            if single:
                payload = payloads[0]
                status = 200
                if "error" in payload:
                    status = _ERROR_STATUS.get(payload["error"]["code"], 500)
                self._reply(status, payload, deprecated=legacy,
                            successor="/v1/predict")
            else:
                # Client-side batches answer 200 with per-item payloads
                # (each either a response or an error envelope).
                self._reply(200, payloads, deprecated=legacy,
                            successor="/v1/predict")

        @staticmethod
        def _await(ticket: ServeTicket) -> dict[str, Any]:
            # Deadlines bound the wait when configured; otherwise the
            # front-end's recovery machinery (heartbeats, respawn,
            # inline fallback) guarantees eventual resolution.
            grace = (config.deadline_ms / 1000.0 + 30.0
                     if config.deadline_ms > 0 else None)
            if not ticket.wait(grace):
                ticket.fail("timeout", "server wait timed out", True)
            return ReplicatedFrontend.result_payload(ticket)

    server = _ServeHTTPServer((config.host, config.port), Handler, frontend)
    frontend.start()
    return server


def run_server(engine: InferenceEngine,
               config: ServerConfig | None = None) -> None:
    """Serve ``engine`` over HTTP per ``config`` until stopped.

    The one blessed entry point: builds the replicated front-end, binds
    the threaded HTTP server, runs the accept loop (bounded by
    ``config.max_requests`` when set) and tears the fleet down on exit.
    """
    config = config or ServerConfig()
    server = make_http_server(engine, config)
    try:
        if config.max_requests is None:
            server.serve_forever()
        else:
            for _ in range(config.max_requests):
                server.handle_request()
    finally:
        server.server_close()


# ----------------------------------------------------------------------
# Deprecated shims (the pre-v1 Python API)
# ----------------------------------------------------------------------
def make_server(engine: InferenceEngine, host: str = "127.0.0.1",
                port: int = 8080) -> ThreadingHTTPServer:
    """Deprecated: use ``run_server(engine, ServerConfig(...))``."""
    warnings.warn(
        "make_server is deprecated; use "
        "repro.serve.run_server(engine, ServerConfig(host=..., port=...))",
        DeprecationWarning, stacklevel=2)
    return make_http_server(engine, ServerConfig(host=host, port=port))


def serve_forever(engine: InferenceEngine, host: str = "127.0.0.1",
                  port: int = 8080, max_requests: int | None = None) -> None:
    """Deprecated: use ``run_server(engine, ServerConfig(...))``."""
    warnings.warn(
        "serve_forever is deprecated; use "
        "repro.serve.run_server(engine, ServerConfig(host=..., port=..., "
        "max_requests=...))",
        DeprecationWarning, stacklevel=2)
    run_server(engine, ServerConfig(host=host, port=port,
                                    max_requests=max_requests))
