"""Mini SQL substrate: AST, parser, symbolic executor, query generator."""

from .ast import Aggregate, Comparator, Condition, SelectQuery
from .executor import Denotation, ExecutionError, denotation_text, execute
from .generator import generate_labeled_queries, generate_query
from .parser import SqlSyntaxError, parse_query

__all__ = [
    "Aggregate", "Comparator", "Condition", "SelectQuery",
    "parse_query", "SqlSyntaxError",
    "execute", "Denotation", "ExecutionError", "denotation_text",
    "generate_query", "generate_labeled_queries",
]
