"""AST for the miniature SQL dialect executed over a single table.

The dialect covers what WikiSQL-style supervision needs (and what TAPEX's
pretraining queries use): one table, an optional aggregate over one selected
column, and a conjunction of comparison predicates.

    SELECT [agg](column) FROM t [WHERE col op value [AND ...]] [LIMIT n]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Aggregate", "Comparator", "Condition", "SelectQuery"]


class Aggregate(str, Enum):
    """Aggregation applied to the selected column."""

    NONE = "none"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class Comparator(str, Enum):
    """Comparison operator in a WHERE predicate."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="


@dataclass(frozen=True)
class Condition:
    """One predicate: ``column <op> value``."""

    column: str
    comparator: Comparator
    value: str | float

    def render(self) -> str:
        value = self.value
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            value = f"'{escaped}'"
        return f'"{self.column}" {self.comparator.value} {value}'


@dataclass(frozen=True)
class SelectQuery:
    """A full query; ``conditions`` are ANDed.

    ``group_by`` requires an aggregate (one aggregated value per group,
    groups ordered by key).  ``order_by`` sorts a plain selection by
    another column; ``descending`` flips the direction.
    """

    select_column: str
    aggregate: Aggregate = Aggregate.NONE
    conditions: tuple[Condition, ...] = field(default_factory=tuple)
    limit: int | None = None
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False

    def render(self) -> str:
        """Render back to SQL text (inverse of the parser)."""
        target = f'"{self.select_column}"'
        if self.aggregate is not Aggregate.NONE:
            target = f"{self.aggregate.value.upper()}({target})"
        sql = f"SELECT {target} FROM t"
        if self.conditions:
            sql += " WHERE " + " AND ".join(c.render() for c in self.conditions)
        if self.group_by is not None:
            sql += f' GROUP BY "{self.group_by}"'
        if self.order_by is not None:
            sql += f' ORDER BY "{self.order_by}"'
            if self.descending:
                sql += " DESC"
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql
