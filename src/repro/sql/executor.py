"""Symbolic executor: evaluate a :class:`SelectQuery` over a Table.

This is the oracle against which the TAPEX-style *neural* executor is
measured (E12), and the label generator for the QA datasets: a question's
gold answer is whatever this executor returns.
"""

from __future__ import annotations

from .ast import Aggregate, Comparator, Condition, SelectQuery
from ..tables import Cell, Table

__all__ = ["execute", "Denotation", "ExecutionError", "denotation_text"]

Denotation = list[str | float]


class ExecutionError(ValueError):
    """Raised for semantically invalid queries (unknown column, bad agg)."""


def _comparable(cell: Cell) -> str | float | None:
    """Value used for comparisons: numbers as floats, text lowercased."""
    if cell.is_empty:
        return None
    if cell.is_numeric:
        return float(str(cell.text()).replace(",", ""))
    return cell.text().strip().lower()


def _coerce_literal(value: str | float) -> str | float:
    if isinstance(value, (int, float)):
        return float(value)
    text = value.strip()
    try:
        return float(text.replace(",", ""))
    except ValueError:
        return text.lower()


def _matches(cell: Cell, condition: Condition) -> bool:
    cell_value = _comparable(cell)
    literal = _coerce_literal(condition.value)
    if cell_value is None:
        return False
    if isinstance(cell_value, float) != isinstance(literal, float):
        # Comparing text to number: only (in)equality is meaningful.
        if condition.comparator is Comparator.EQ:
            return str(cell_value) == str(literal)
        if condition.comparator is Comparator.NE:
            return str(cell_value) != str(literal)
        return False
    if condition.comparator is Comparator.EQ:
        return cell_value == literal
    if condition.comparator is Comparator.NE:
        return cell_value != literal
    if isinstance(cell_value, str):
        return False  # ordered comparators are numeric-only in this dialect
    if condition.comparator is Comparator.LT:
        return cell_value < literal
    if condition.comparator is Comparator.GT:
        return cell_value > literal
    if condition.comparator is Comparator.LE:
        return cell_value <= literal
    return cell_value >= literal


def _select_rows(table: Table, conditions: tuple[Condition, ...]) -> list[int]:
    column_cache = {c.column: table.column_index(c.column) for c in conditions}
    selected = []
    for r in range(table.num_rows):
        if all(_matches(table.cell(r, column_cache[c.column]), c) for c in conditions):
            selected.append(r)
    return selected


def _aggregate_cells(aggregate: Aggregate, cells: list[Cell]) -> Denotation:
    """Apply one aggregate to a list of cells (see :func:`execute`)."""
    if aggregate is Aggregate.COUNT:
        return [float(len([c for c in cells if not c.is_empty]))]
    numbers = [float(str(c.text()).replace(",", "")) for c in cells
               if c.is_numeric]
    if not numbers:
        return []
    if aggregate is Aggregate.SUM:
        return [sum(numbers)]
    if aggregate is Aggregate.AVG:
        return [sum(numbers) / len(numbers)]
    if aggregate is Aggregate.MIN:
        return [min(numbers)]
    if aggregate is Aggregate.MAX:
        return [max(numbers)]
    raise ExecutionError(f"unsupported aggregate {aggregate}")


def _sort_key(value: str | float | None) -> tuple:
    """Total order over comparables: numbers first, then text, None last."""
    if value is None:
        return (2, 0.0, "")
    if isinstance(value, float):
        return (0, value, "")
    return (1, 0.0, value)


def execute(query: SelectQuery, table: Table) -> Denotation:
    """Evaluate ``query`` over ``table``; returns the denotation list.

    Aggregates return a single-element list (or one element per group with
    GROUP BY, groups ordered by key); plain selects return the matching
    cells top-to-bottom (empty cells skipped), reordered by ORDER BY when
    present.
    """
    try:
        column = table.column_index(query.select_column)
    except KeyError as exc:
        raise ExecutionError(str(exc)) from None

    rows = _select_rows(table, query.conditions)

    if query.group_by is not None:
        if query.aggregate is Aggregate.NONE:
            raise ExecutionError("GROUP BY requires an aggregate select")
        try:
            group_column = table.column_index(query.group_by)
        except KeyError as exc:
            raise ExecutionError(str(exc)) from None
        groups: dict[str | float, list[Cell]] = {}
        for r in rows:
            key = _comparable(table.cell(r, group_column))
            if key is None:
                continue
            groups.setdefault(key, []).append(table.cell(r, column))
        result: Denotation = []
        for key in sorted(groups, key=_sort_key):
            result.extend(_aggregate_cells(query.aggregate, groups[key]))
        if query.limit is not None:
            result = result[: query.limit]
        return result

    if query.order_by is not None and query.aggregate is Aggregate.NONE:
        try:
            order_column = table.column_index(query.order_by)
        except KeyError as exc:
            raise ExecutionError(str(exc)) from None
        rows = sorted(rows, key=lambda r: _sort_key(
            _comparable(table.cell(r, order_column))))
        if query.descending:
            rows = rows[::-1]

    cells = [table.cell(r, column) for r in rows]

    if query.aggregate is Aggregate.COUNT:
        result: Denotation = [float(len([c for c in cells if not c.is_empty]))]
    elif query.aggregate is Aggregate.NONE:
        result = [c.value if not c.is_numeric else float(str(c.text()).replace(",", ""))
                  for c in cells if not c.is_empty]
    else:
        numbers = [float(str(c.text()).replace(",", ""))
                   for c in cells if c.is_numeric]
        if not numbers:
            return []
        if query.aggregate is Aggregate.SUM:
            result = [sum(numbers)]
        elif query.aggregate is Aggregate.AVG:
            result = [sum(numbers) / len(numbers)]
        elif query.aggregate is Aggregate.MIN:
            result = [min(numbers)]
        elif query.aggregate is Aggregate.MAX:
            result = [max(numbers)]
        else:  # pragma: no cover - exhaustive enum
            raise ExecutionError(f"unsupported aggregate {query.aggregate}")

    if query.limit is not None:
        result = result[: query.limit]
    return result


def denotation_text(denotation: Denotation) -> str:
    """Canonical single-string rendering of a denotation (for seq2seq)."""
    parts = []
    for value in denotation:
        if isinstance(value, float) and value.is_integer():
            parts.append(str(int(value)))
        elif isinstance(value, float):
            parts.append(f"{value:.6g}")
        else:
            parts.append(str(value))
    return ", ".join(parts)
