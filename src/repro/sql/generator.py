"""Random query generation over a concrete table.

TAPEX pretrains by *learning to execute*: synthesize a query, run the
symbolic executor for the gold denotation, and train the seq2seq model to
map (query, table) → denotation.  The generator samples queries whose
predicates reference values actually present in the table so most
denotations are non-empty.
"""

from __future__ import annotations

import numpy as np

from .ast import Aggregate, Comparator, Condition, SelectQuery
from .executor import Denotation, execute
from ..tables import ColumnType, Table, infer_schema

__all__ = ["generate_query", "generate_labeled_queries"]

_NUMERIC_COMPARATORS = (Comparator.EQ, Comparator.LT, Comparator.GT,
                        Comparator.LE, Comparator.GE)
_TEXT_COMPARATORS = (Comparator.EQ, Comparator.NE)
_NUMERIC_AGGREGATES = (Aggregate.NONE, Aggregate.COUNT, Aggregate.SUM,
                       Aggregate.AVG, Aggregate.MIN, Aggregate.MAX)
_TEXT_AGGREGATES = (Aggregate.NONE, Aggregate.COUNT)


def _sample_condition(table: Table, schema: list[ColumnType],
                      rng: np.random.Generator) -> Condition | None:
    candidates = [c for c in range(table.num_columns)
                  if any(not cell.is_empty for cell in table.column_values(c))]
    if not candidates:
        return None
    column = int(rng.choice(candidates))
    cells = [cell for cell in table.column_values(column) if not cell.is_empty]
    cell = cells[int(rng.integers(len(cells)))]
    if schema[column] is ColumnType.NUMBER and cell.is_numeric:
        comparator = _NUMERIC_COMPARATORS[int(rng.integers(len(_NUMERIC_COMPARATORS)))]
        value: str | float = float(str(cell.text()).replace(",", ""))
    else:
        comparator = _TEXT_COMPARATORS[int(rng.integers(len(_TEXT_COMPARATORS)))]
        value = cell.text()
    return Condition(table.header[column], comparator, value)


def generate_query(table: Table, rng: np.random.Generator,
                   max_conditions: int = 2,
                   allow_clauses: bool = True) -> SelectQuery:
    """Sample one random query grounded in ``table``'s actual content.

    With ``allow_clauses`` (default) a fraction of queries additionally
    carry an ORDER BY (plain selects) or GROUP BY (aggregates) over another
    column, exercising the richer dialect surface.
    """
    if table.num_columns == 0:
        raise ValueError("cannot generate a query over a table with no columns")
    schema = infer_schema(table)
    select_column = int(rng.integers(table.num_columns))
    if schema[select_column] is ColumnType.NUMBER:
        aggregate = _NUMERIC_AGGREGATES[int(rng.integers(len(_NUMERIC_AGGREGATES)))]
    else:
        aggregate = _TEXT_AGGREGATES[int(rng.integers(len(_TEXT_AGGREGATES)))]

    conditions: list[Condition] = []
    for _ in range(int(rng.integers(max_conditions + 1))):
        condition = _sample_condition(table, schema, rng)
        if condition is not None:
            conditions.append(condition)

    group_by: str | None = None
    order_by: str | None = None
    descending = False
    other_columns = [c for c in range(table.num_columns) if c != select_column]
    if allow_clauses and other_columns and rng.random() < 0.3:
        other = other_columns[int(rng.integers(len(other_columns)))]
        if aggregate is Aggregate.NONE:
            order_by = table.header[other]
            descending = bool(rng.random() < 0.5)
        else:
            group_by = table.header[other]

    return SelectQuery(
        select_column=table.header[select_column],
        aggregate=aggregate,
        conditions=tuple(conditions),
        group_by=group_by,
        order_by=order_by,
        descending=descending,
    )


def generate_labeled_queries(table: Table, count: int, rng: np.random.Generator,
                             require_nonempty: bool = True,
                             max_attempts_factor: int = 10
                             ) -> list[tuple[SelectQuery, Denotation]]:
    """Sample up to ``count`` (query, gold denotation) pairs.

    With ``require_nonempty`` (the default) queries with empty denotations
    are rejected and resampled, up to ``count * max_attempts_factor`` draws.
    """
    pairs: list[tuple[SelectQuery, Denotation]] = []
    attempts = 0
    while len(pairs) < count and attempts < count * max_attempts_factor:
        attempts += 1
        query = generate_query(table, rng)
        denotation = execute(query, table)
        if require_nonempty and not denotation:
            continue
        pairs.append((query, denotation))
    return pairs
