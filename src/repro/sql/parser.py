"""Tokenizer + recursive-descent parser for the mini SQL dialect."""

from __future__ import annotations

import re

from .ast import Aggregate, Comparator, Condition, SelectQuery

__all__ = ["parse_query", "SqlSyntaxError"]


class SqlSyntaxError(ValueError):
    """Raised when query text does not conform to the dialect."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'          # single-quoted string (with '' escape)
      | "[^"]*"                 # double-quoted identifier
      | <=|>=|!=|=|<|>          # comparators
      | \(|\)|,                 # punctuation
      | [A-Za-z_][A-Za-z0-9_.\-]*  # bare word
      | -?\d+(?:\.\d+)?         # number
    )
    """,
    re.VERBOSE,
)

_AGGREGATES = {a.value: a for a in Aggregate if a is not Aggregate.NONE}


def _lex(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlSyntaxError(f"cannot tokenize at: {remainder[:20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of query")
        self.index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword.lower():
            raise SqlSyntaxError(f"expected {keyword!r}, found {token!r}")

    def parse_identifier(self) -> str:
        token = self.next()
        if token.startswith('"') and token.endswith('"'):
            return token[1:-1]
        if token.startswith("'"):
            raise SqlSyntaxError(f"string literal where identifier expected: {token}")
        return token

    def parse_value(self) -> str | float:
        token = self.next()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1].replace("''", "'")
        if token.startswith('"') and token.endswith('"'):
            return token[1:-1]
        try:
            return float(token)
        except ValueError:
            return token

    def parse(self) -> SelectQuery:
        self.expect_keyword("select")
        aggregate = Aggregate.NONE
        token = self.peek()
        if token is not None and token.lower() in _AGGREGATES and \
                self.index + 1 < len(self.tokens) and self.tokens[self.index + 1] == "(":
            aggregate = _AGGREGATES[self.next().lower()]
            self.expect_keyword("(")
            column = self.parse_identifier()
            self.expect_keyword(")")
        else:
            column = self.parse_identifier()
        self.expect_keyword("from")
        self.parse_identifier()  # table name, single-table dialect

        conditions: list[Condition] = []
        limit: int | None = None
        group_by: str | None = None
        order_by: str | None = None
        descending = False
        while (token := self.peek()) is not None:
            lowered = token.lower()
            if lowered == "where":
                self.next()
                conditions.append(self.parse_condition())
                while (t := self.peek()) is not None and t.lower() == "and":
                    self.next()
                    conditions.append(self.parse_condition())
            elif lowered == "group":
                self.next()
                self.expect_keyword("by")
                group_by = self.parse_identifier()
            elif lowered == "order":
                self.next()
                self.expect_keyword("by")
                order_by = self.parse_identifier()
                direction = self.peek()
                if direction is not None and direction.lower() in ("asc", "desc"):
                    descending = self.next().lower() == "desc"
            elif lowered == "limit":
                self.next()
                raw = self.next()
                try:
                    limit = int(float(raw))
                except ValueError:
                    raise SqlSyntaxError(f"bad LIMIT value: {raw!r}") from None
            else:
                raise SqlSyntaxError(f"unexpected token {token!r}")

        if group_by is not None and aggregate is Aggregate.NONE:
            raise SqlSyntaxError("GROUP BY requires an aggregate select")
        if group_by is not None and order_by is not None:
            raise SqlSyntaxError("GROUP BY and ORDER BY cannot be combined "
                                 "in this dialect")

        return SelectQuery(
            select_column=column,
            aggregate=aggregate,
            conditions=tuple(conditions),
            limit=limit,
            group_by=group_by,
            order_by=order_by,
            descending=descending,
        )

    def parse_condition(self) -> Condition:
        column = self.parse_identifier()
        op_token = self.next()
        try:
            comparator = Comparator(op_token)
        except ValueError:
            raise SqlSyntaxError(f"bad comparator {op_token!r}") from None
        value = self.parse_value()
        return Condition(column, comparator, value)


def parse_query(text: str) -> SelectQuery:
    """Parse SQL text into a :class:`SelectQuery`.

    Raises :class:`SqlSyntaxError` on malformed input.
    """
    parser = _Parser(_lex(text))
    query = parser.parse()
    if parser.peek() is not None:
        raise SqlSyntaxError(f"trailing tokens from {parser.peek()!r}")
    return query
