"""Table substrate: data structure, schema inference, CSV IO, filtering."""

from .csvio import dumps_table, load_table, loads_table, save_table
from .filtering import (
    drop_empty_columns,
    drop_empty_rows,
    passes_quality_filter,
    select_relevant_rows,
    truncate_columns,
    truncate_rows,
)
from .orientation import detect_orientation, normalize_orientation, transpose_table
from .schema import ColumnType, infer_column_type, infer_schema
from .table import Cell, Table, TableContext

__all__ = [
    "Cell", "Table", "TableContext",
    "ColumnType", "infer_column_type", "infer_schema",
    "load_table", "loads_table", "save_table", "dumps_table",
    "truncate_rows", "truncate_columns", "drop_empty_rows", "drop_empty_columns",
    "select_relevant_rows", "passes_quality_filter",
    "detect_orientation", "transpose_table", "normalize_orientation",
]
