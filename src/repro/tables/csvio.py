"""CSV loading/saving — the entry point of the hands-on session (§3.1).

``load_table(path)`` is the first line of the Fig. 2a code snippet.  Values
that parse as numbers are converted so type inference and numeric analyses
work on real CSV files.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .table import Cell, Table, TableContext

__all__ = ["load_table", "loads_table", "save_table", "dumps_table"]


def _convert(raw: str) -> str | float | None:
    """Interpret a CSV field: '' → None, numeric text → float, else str."""
    text = raw.strip()
    if not text:
        return None
    cleaned = text.replace(",", "")
    try:
        number = float(cleaned)
    except ValueError:
        return text
    # Keep IDs with leading zeros ("007") textual.
    if cleaned.lstrip("+-").startswith("0") and not cleaned.lstrip("+-").startswith("0.") \
            and cleaned.lstrip("+-") not in ("0", "0" * len(cleaned.lstrip("+-"))):
        return text
    return number


def loads_table(text: str, table_id: str = "", title: str = "",
                delimiter: str = ",") -> Table:
    """Parse CSV text (first row = header) into a :class:`Table`."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise ValueError("empty CSV input")
    header = [h.strip() for h in rows[0]]
    width = len(header)
    grid: list[list[Cell]] = []
    for raw in rows[1:]:
        padded = list(raw[:width]) + [""] * max(0, width - len(raw))
        grid.append([Cell(_convert(field)) for field in padded])
    context = TableContext(title=title)
    return Table(header, grid, context=context, table_id=table_id)


def load_table(path: str | Path, title: str = "") -> Table:
    """Load a CSV file into a :class:`Table` (Fig. 2a, step 1)."""
    path = Path(path)
    return loads_table(path.read_text(), table_id=path.stem, title=title)


def dumps_table(table: Table) -> str:
    """Serialize a table back to CSV text."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(table.header)
    for row in table.rows:
        writer.writerow([cell.text() for cell in row])
    return out.getvalue()


def save_table(table: Table, path: str | Path) -> Path:
    """Write a table to a CSV file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_table(table))
    return path
