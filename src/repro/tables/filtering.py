"""Data retrieval and filtering (survey dimension 2, first pipeline module).

Transformer inputs are length-limited, so tables must be truncated or the
most relevant rows selected before serialization.  ``select_relevant_rows``
implements the TaBERT-style *content snapshot*: keep the rows with the
highest token overlap with the query/context.
"""

from __future__ import annotations

from .table import Table
from ..text.normalize import word_tokenize

__all__ = [
    "truncate_rows",
    "truncate_columns",
    "drop_empty_rows",
    "drop_empty_columns",
    "select_relevant_rows",
    "passes_quality_filter",
]


def truncate_rows(table: Table, max_rows: int) -> Table:
    """Keep at most the first ``max_rows`` rows."""
    if max_rows < 0:
        raise ValueError("max_rows must be non-negative")
    if table.num_rows <= max_rows:
        return table
    return table.subtable(row_indices=range(max_rows))


def truncate_columns(table: Table, max_columns: int) -> Table:
    """Keep at most the first ``max_columns`` columns."""
    if max_columns < 0:
        raise ValueError("max_columns must be non-negative")
    if table.num_columns <= max_columns:
        return table
    return table.subtable(column_indices=range(max_columns))


def drop_empty_rows(table: Table) -> Table:
    """Remove rows in which every cell is empty."""
    keep = [r for r in range(table.num_rows)
            if not all(cell.is_empty for cell in table.rows[r])]
    return table.subtable(row_indices=keep)


def drop_empty_columns(table: Table) -> Table:
    """Remove columns whose header is empty AND all cells are empty."""
    keep = [
        c for c in range(table.num_columns)
        if table.header[c].strip()
        or not all(cell.is_empty for cell in table.column_values(c))
    ]
    return table.subtable(column_indices=keep)


def select_relevant_rows(table: Table, query: str, max_rows: int) -> Table:
    """Content snapshot: the ``max_rows`` rows most relevant to ``query``.

    Relevance is the number of query tokens appearing in the row (TaBERT's
    n-gram overlap heuristic at n=1).  Ties preserve original row order.
    """
    if max_rows <= 0:
        raise ValueError("max_rows must be positive")
    if table.num_rows <= max_rows:
        return table
    query_tokens = set(word_tokenize(query.lower()))
    scores: list[tuple[int, int]] = []
    for r, row in enumerate(table.rows):
        row_tokens: set[str] = set()
        for cell in row:
            row_tokens.update(word_tokenize(cell.text().lower()))
        overlap = len(query_tokens & row_tokens)
        scores.append((-overlap, r))
    scores.sort()
    chosen = sorted(r for _, r in scores[:max_rows])
    return table.subtable(row_indices=chosen)


def passes_quality_filter(table: Table, min_rows: int = 2, min_columns: int = 2,
                          max_empty_fraction: float = 0.5) -> bool:
    """Corpus-level noise filter: minimum size and density requirements.

    Mirrors the filtering applied when building pretraining corpora from raw
    web tables (WikiTables/WDC pipelines drop tiny and sparse tables).
    """
    if table.num_rows < min_rows or table.num_columns < min_columns:
        return False
    return table.empty_fraction() <= max_empty_fraction
