"""Table orientation detection and normalization.

Web table corpora (WDC, WikiTables) mix *horizontal* relational tables
(header row on top, one entity per row) with *vertical* entity cards /
infoboxes (attribute names down the first column, one entity per table).
Structure-aware models assume the horizontal layout, so pipelines detect
orientation and transpose vertical tables first — one of the unglamorous
input-processing steps the survey's dimension 2 covers.

Detection uses type coherence: relational columns are homogeneous in type
(a column of years, a column of names), so a horizontal table has high
*column* coherence; a vertical card mixes types down its value column but
is coherent across each attribute row.
"""

from __future__ import annotations

from .schema import ColumnType, infer_column_type
from .table import Cell, Table, TableContext

__all__ = ["detect_orientation", "transpose_table", "normalize_orientation"]


def _coherence(groups: list[list[Cell]]) -> float:
    """Mean 'dominant type share' over groups of cells."""
    shares = []
    for cells in groups:
        non_empty = [c for c in cells if not c.is_empty]
        if len(non_empty) < 2:
            continue
        counts: dict[ColumnType, int] = {}
        for cell in non_empty:
            kind = infer_column_type([cell])
            counts[kind] = counts.get(kind, 0) + 1
        shares.append(max(counts.values()) / len(non_empty))
    return sum(shares) / len(shares) if shares else 1.0


def detect_orientation(table: Table) -> str:
    """``"horizontal"`` (relational) or ``"vertical"`` (entity card).

    A table with a descriptive header row is horizontal outright.
    Otherwise a table reads as a vertical card when its first column looks
    like attribute labels (distinct, textual, non-numeric) while the value
    columns mix types — relational tables keep each column type-coherent.
    """
    if table.has_descriptive_header():
        return "horizontal"
    if table.num_rows < 2 or table.num_columns < 2:
        return "horizontal"

    first_column = table.column_values(0)
    labels = [c.text().strip().lower() for c in first_column]
    first_is_labels = (
        all(label and not cell.is_numeric
            for label, cell in zip(labels, first_column))
        and len(set(labels)) == len(labels)
    )
    if not first_is_labels:
        return "horizontal"

    value_groups = [table.column_values(c) for c in range(1, table.num_columns)]
    value_coherence = _coherence(value_groups)
    return "vertical" if value_coherence < 0.999 else "horizontal"


def transpose_table(table: Table, header_from_first_column: bool = True) -> Table:
    """Transpose a vertical entity card into horizontal layout.

    With ``header_from_first_column`` (default) the first column becomes
    the header and the remaining columns become data rows — the inverse of
    how infoboxes are written.
    """
    if table.num_columns < 1:
        raise ValueError("cannot transpose an empty table")
    if header_from_first_column:
        header = [cell.text() for cell in table.column_values(0)]
        rows = [
            [table.cell(r, c) for r in range(table.num_rows)]
            for c in range(1, table.num_columns)
        ]
    else:
        header = [""] * table.num_rows
        rows = [
            [table.cell(r, c) for r in range(table.num_rows)]
            for c in range(table.num_columns)
        ]
    return Table(header, rows, context=table.context,
                 table_id=table.table_id)


def normalize_orientation(table: Table) -> Table:
    """Return the table in horizontal layout, transposing if needed."""
    if detect_orientation(table) == "vertical":
        return transpose_table(table)
    return table
