"""Column type inference — the schema signal used by serializers and tasks.

Column types matter twice in the paper: serializers may tag cells with their
type (Fig. 2b "Type" row), and the column-type-prediction downstream task
(Section 2.1, "Table Metadata Prediction") needs gold types to train against.
"""

from __future__ import annotations

import re
from enum import Enum

from .table import Cell, Table

__all__ = ["ColumnType", "infer_column_type", "infer_schema"]


class ColumnType(str, Enum):
    """Semantic type of a column's values."""

    TEXT = "text"
    NUMBER = "number"
    DATE = "date"
    BOOLEAN = "boolean"
    EMPTY = "empty"
    MIXED = "mixed"


_DATE_PATTERNS = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{4}$"),  # bare years, common in web tables
    re.compile(r"^(january|february|march|april|may|june|july|august|september|"
               r"october|november|december)\s+\d{1,2},?\s+\d{4}$", re.IGNORECASE),
)

_BOOLEAN_VALUES = {"true", "false", "yes", "no"}


def _cell_type(cell: Cell) -> ColumnType:
    if cell.is_empty:
        return ColumnType.EMPTY
    text = cell.text().strip().lower()
    if text in _BOOLEAN_VALUES:
        return ColumnType.BOOLEAN
    if any(pattern.match(text) for pattern in _DATE_PATTERNS):
        return ColumnType.DATE
    if cell.is_numeric:
        return ColumnType.NUMBER
    return ColumnType.TEXT


def infer_column_type(cells: list[Cell], dominance: float = 0.7) -> ColumnType:
    """Infer the type of a column from its cells.

    A type wins if it covers at least ``dominance`` of the non-empty cells;
    otherwise the column is MIXED.  All-empty columns are EMPTY.
    """
    non_empty = [c for c in cells if not c.is_empty]
    if not non_empty:
        return ColumnType.EMPTY
    counts: dict[ColumnType, int] = {}
    for cell in non_empty:
        kind = _cell_type(cell)
        counts[kind] = counts.get(kind, 0) + 1
    best_type, best_count = max(counts.items(), key=lambda item: item[1])
    if best_count / len(non_empty) >= dominance:
        return best_type
    # DATE cells also parse as numbers for bare years; treat a
    # number+date blend as DATE-leaning NUMBER rather than MIXED.
    if set(counts) <= {ColumnType.NUMBER, ColumnType.DATE}:
        return ColumnType.NUMBER
    return ColumnType.MIXED


def infer_schema(table: Table, dominance: float = 0.7) -> list[ColumnType]:
    """Column types for every column of ``table``, left to right."""
    return [
        infer_column_type(table.column_values(c), dominance=dominance)
        for c in range(table.num_columns)
    ]
