"""The relational table data structure shared by every component.

A :class:`Table` is a header plus a rectangular grid of cells, with optional
*context* (title, caption, page section — the textual signals Fig. 1 of the
paper concatenates with the serialized table) and optional *entity
annotations* (cell → entity id links, the supervision TURL-style masked
entity recovery needs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["Cell", "TableContext", "Table"]

CellValue = str | float | int | None


@dataclass(frozen=True)
class Cell:
    """One table cell: its raw value plus an optional linked entity id."""

    value: CellValue
    entity_id: int | None = None

    @property
    def is_empty(self) -> bool:
        return self.value is None or (isinstance(self.value, str) and not self.value.strip())

    @property
    def is_numeric(self) -> bool:
        if isinstance(self.value, bool):
            return False
        if isinstance(self.value, (int, float)):
            return True
        if isinstance(self.value, str):
            return _parses_as_number(self.value)
        return False

    def text(self) -> str:
        """Render the cell for serialization; empty cells become ''."""
        if self.value is None:
            return ""
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)


def _parses_as_number(text: str) -> bool:
    cleaned = text.strip().replace(",", "")
    if not cleaned:
        return False
    try:
        float(cleaned)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class TableContext:
    """Textual context accompanying a table (survey dimension 2)."""

    title: str = ""
    caption: str = ""
    section: str = ""

    def text(self) -> str:
        """All context fields joined into one string, empty parts skipped."""
        return " ".join(part for part in (self.title, self.section, self.caption) if part)

    @property
    def is_empty(self) -> bool:
        return not (self.title or self.caption or self.section)


class Table:
    """A relational table: header, grid of cells, context, identity.

    Parameters
    ----------
    header:
        Column names; may contain empty strings for headerless data.
    rows:
        Rectangular grid; each row is a sequence of raw values or
        :class:`Cell` objects.
    context:
        Optional textual context.
    table_id:
        Stable identifier used by retrieval and the corpus splits.
    """

    def __init__(
        self,
        header: Sequence[str],
        rows: Sequence[Sequence[CellValue | Cell]],
        context: TableContext | None = None,
        table_id: str = "",
    ) -> None:
        self.header = [str(h) for h in header]
        self.rows: list[list[Cell]] = []
        for row_index, row in enumerate(rows):
            if len(row) != len(self.header):
                raise ValueError(
                    f"row {row_index} has {len(row)} cells, header has {len(self.header)}"
                )
            self.rows.append([c if isinstance(c, Cell) else Cell(c) for c in row])
        self.context = context or TableContext()
        self.table_id = table_id

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.header)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    def cell(self, row: int, column: int) -> Cell:
        return self.rows[row][column]

    def column_values(self, column: int) -> list[Cell]:
        """All cells of one column, top to bottom."""
        return [row[column] for row in self.rows]

    def column_index(self, name: str) -> int:
        """Index of the column named ``name`` (exact match)."""
        try:
            return self.header.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; header={self.header}") from None

    def iter_cells(self) -> Iterator[tuple[int, int, Cell]]:
        """Yield ``(row_index, column_index, cell)`` in row-major order."""
        for r, row in enumerate(self.rows):
            for c, cell in enumerate(row):
                yield r, c, cell

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subtable(self, row_indices: Sequence[int] | None = None,
                 column_indices: Sequence[int] | None = None) -> "Table":
        """A new table restricted to the given rows/columns (both optional)."""
        row_idx = list(row_indices) if row_indices is not None else list(range(self.num_rows))
        col_idx = (list(column_indices) if column_indices is not None
                   else list(range(self.num_columns)))
        header = [self.header[c] for c in col_idx]
        rows = [[self.rows[r][c] for c in col_idx] for r in row_idx]
        return Table(header, rows, context=self.context, table_id=self.table_id)

    def with_rows_permuted(self, permutation: Sequence[int]) -> "Table":
        """Reorder rows — used by the consistency benchmark (E11)."""
        if sorted(permutation) != list(range(self.num_rows)):
            raise ValueError("permutation must reorder exactly the existing rows")
        return self.subtable(row_indices=permutation)

    def without_header(self) -> "Table":
        """Replace all column names with empty strings (failure-mode probe)."""
        return Table([""] * self.num_columns, self.rows,
                     context=self.context, table_id=self.table_id)

    def replace_cell(self, row: int, column: int, value: CellValue | Cell) -> "Table":
        """A copy with one cell replaced (used for masking / imputation)."""
        cell = value if isinstance(value, Cell) else Cell(value)
        rows = [list(r) for r in self.rows]
        rows[row][column] = cell
        return Table(self.header, rows, context=self.context, table_id=self.table_id)

    # ------------------------------------------------------------------
    # Statistics used by filtering and analysis
    # ------------------------------------------------------------------
    def empty_fraction(self) -> float:
        """Fraction of empty cells (0 for a dense table)."""
        total = self.num_rows * self.num_columns
        if total == 0:
            return 0.0
        empty = sum(1 for _, _, cell in self.iter_cells() if cell.is_empty)
        return empty / total

    def numeric_fraction(self) -> float:
        """Fraction of non-empty cells that parse as numbers."""
        non_empty = [cell for _, _, cell in self.iter_cells() if not cell.is_empty]
        if not non_empty:
            return 0.0
        return sum(1 for cell in non_empty if cell.is_numeric) / len(non_empty)

    def has_descriptive_header(self) -> bool:
        """Whether at least half the column names are non-empty words."""
        if not self.header:
            return False
        named = sum(1 for h in self.header if h.strip())
        return named >= (len(self.header) + 1) // 2

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (self.header == other.header and self.rows == other.rows
                and self.context == other.context)

    def __repr__(self) -> str:
        ident = f" id={self.table_id!r}" if self.table_id else ""
        return f"Table({self.num_rows}x{self.num_columns}{ident}, header={self.header})"
