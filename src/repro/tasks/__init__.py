"""Downstream task harnesses (Fig. 1, pipeline (2): fine-tune & consume)."""

from .coltype import ColumnTypePredictor, build_label_set
from .common import (
    FinetuneConfig,
    Prediction,
    TaskPredictor,
    finetune,
    minibatches,
    pooled_span,
    predict_in_batches,
)
from .imputation import (
    EntityImputer,
    ValueImputer,
    build_value_vocabulary,
    build_value_vocabulary_from_tables,
)
from .linking import EntityLinker, LinkingExample, build_linking_dataset
from .nli import NliClassifier
from .qa import CellSelectionQA
from .retrieval import BiEncoderRetriever, LexicalRetriever
from .text2sql import SKETCH_AGGREGATES, SketchParser

__all__ = [
    "FinetuneConfig", "finetune", "pooled_span", "minibatches",
    "Prediction", "TaskPredictor", "predict_in_batches",
    "ValueImputer", "EntityImputer", "build_value_vocabulary",
    "build_value_vocabulary_from_tables",
    "CellSelectionQA",
    "NliClassifier",
    "BiEncoderRetriever", "LexicalRetriever",
    "ColumnTypePredictor", "build_label_set",
    "SketchParser", "SKETCH_AGGREGATES",
    "EntityLinker", "LinkingExample", "build_linking_dataset",
]
