"""Column type prediction — table metadata understanding (§2.1).

The column's header is hidden (so the label cannot leak); the model pools
the column's cell representations and classifies over the label set of
semantic column types (attribute names like "capital" or "hours-per-week").
"""

from __future__ import annotations

import numpy as np

from .common import (
    Prediction,
    deprecated_predict_alias,
    pooled_span,
    predict_in_batches,
)
from ..corpus import ColumnTypeExample
from ..eval import accuracy, macro_f1
from ..models import ClassificationHead, TableEncoder
from ..nn import Module, Tensor, cross_entropy
from ..pretrain import IGNORE_INDEX

__all__ = ["ColumnTypePredictor", "build_label_set"]


def build_label_set(examples: list[ColumnTypeExample]) -> list[str]:
    """Sorted distinct labels of a training set."""
    return sorted({e.label for e in examples})


class ColumnTypePredictor(Module):
    """Pooled-column classifier over a closed label set."""

    task_name = "coltype"

    def __init__(self, encoder: TableEncoder, labels: list[str],
                 rng: np.random.Generator) -> None:
        if not labels:
            raise ValueError("label set is empty")
        super().__init__()
        self.encoder = encoder
        self.labels = list(labels)
        self.label_to_id = {l: i for i, l in enumerate(self.labels)}
        self.head = ClassificationHead(encoder.config.dim, len(self.labels), rng)

    @staticmethod
    def _pool_columns(hidden: Tensor, examples: list[ColumnTypeExample],
                      serialized: list) -> Tensor:
        pooled = []
        for i, (example, table) in enumerate(zip(examples, serialized)):
            spans = [span for (row, col), span in table.cell_spans.items()
                     if col == example.column]
            if spans:
                vectors = [pooled_span(hidden, i, span) for span in spans]
                stacked = Tensor.stack(vectors)
                pooled.append(stacked.mean(axis=0))
            else:
                pooled.append(hidden[i, 0])
        return Tensor.stack(pooled)

    def _column_vectors(self, examples: list[ColumnTypeExample]) -> Tensor:
        tables = [e.table for e in examples]
        batch, serialized = self.encoder.batch(tables)
        hidden = self.encoder(batch)
        return self._pool_columns(hidden, examples, serialized)

    def logits(self, examples: list[ColumnTypeExample]) -> Tensor:
        return self.head(self._column_vectors(examples))

    def loss(self, examples: list[ColumnTypeExample]) -> Tensor:
        targets = np.array(
            [self.label_to_id.get(e.label, IGNORE_INDEX) for e in examples],
            dtype=np.int64,
        )
        return cross_entropy(self.logits(examples), targets,
                             ignore_index=IGNORE_INDEX)

    def _predict_batch(self, examples: list[ColumnTypeExample]
                       ) -> list[Prediction]:
        tables = [e.table for e in examples]
        hidden, serialized = self.encoder.infer_hidden(tables)
        pooled = self._pool_columns(hidden, examples, serialized)
        logits = self.head(pooled).data
        probabilities = np.exp(logits - logits.max(axis=-1, keepdims=True))
        probabilities /= probabilities.sum(axis=-1, keepdims=True)
        indices = logits.argmax(axis=-1)
        return [
            Prediction(label=self.labels[int(index)],
                       score=float(probabilities[i, index]))
            for i, index in enumerate(indices)
        ]

    def predict(self, examples: list[ColumnTypeExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Predicted semantic column types with softmax confidence."""
        return predict_in_batches(self, examples, batch_size,
                                  self._predict_batch)

    def predict_labels(self, examples: list[ColumnTypeExample]) -> list[str]:
        """Deprecated pre-protocol surface: bare label strings."""
        deprecated_predict_alias("ColumnTypePredictor.predict_labels")
        return [p.label for p in self.predict(examples)]

    def evaluate(self, examples: list[ColumnTypeExample]) -> dict[str, float]:
        predictions = [p.label for p in self.predict(examples)]
        golds = [e.label for e in examples]
        return {
            "accuracy": accuracy(predictions, golds),
            "macro_f1": macro_f1(predictions, golds),
        }
