"""Column type prediction — table metadata understanding (§2.1).

The column's header is hidden (so the label cannot leak); the model pools
the column's cell representations and classifies over the label set of
semantic column types (attribute names like "capital" or "hours-per-week").
"""

from __future__ import annotations

import numpy as np

from .common import pooled_span
from ..corpus import ColumnTypeExample
from ..eval import accuracy, macro_f1
from ..models import ClassificationHead, TableEncoder
from ..nn import Module, Tensor, cross_entropy, no_grad
from ..pretrain import IGNORE_INDEX

__all__ = ["ColumnTypePredictor", "build_label_set"]


def build_label_set(examples: list[ColumnTypeExample]) -> list[str]:
    """Sorted distinct labels of a training set."""
    return sorted({e.label for e in examples})


class ColumnTypePredictor(Module):
    """Pooled-column classifier over a closed label set."""

    def __init__(self, encoder: TableEncoder, labels: list[str],
                 rng: np.random.Generator) -> None:
        if not labels:
            raise ValueError("label set is empty")
        super().__init__()
        self.encoder = encoder
        self.labels = list(labels)
        self.label_to_id = {l: i for i, l in enumerate(self.labels)}
        self.head = ClassificationHead(encoder.config.dim, len(self.labels), rng)

    def _column_vectors(self, examples: list[ColumnTypeExample]) -> Tensor:
        tables = [e.table for e in examples]
        batch, serialized = self.encoder.batch(tables)
        hidden = self.encoder(batch)
        pooled = []
        for i, (example, table) in enumerate(zip(examples, serialized)):
            spans = [span for (row, col), span in table.cell_spans.items()
                     if col == example.column]
            if spans:
                vectors = [pooled_span(hidden, i, span) for span in spans]
                stacked = Tensor.stack(vectors)
                pooled.append(stacked.mean(axis=0))
            else:
                pooled.append(hidden[i, 0])
        return Tensor.stack(pooled)

    def logits(self, examples: list[ColumnTypeExample]) -> Tensor:
        return self.head(self._column_vectors(examples))

    def loss(self, examples: list[ColumnTypeExample]) -> Tensor:
        targets = np.array(
            [self.label_to_id.get(e.label, IGNORE_INDEX) for e in examples],
            dtype=np.int64,
        )
        return cross_entropy(self.logits(examples), targets,
                             ignore_index=IGNORE_INDEX)

    def predict(self, examples: list[ColumnTypeExample]) -> list[str]:
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                indices = self.logits(examples).data.argmax(axis=-1)
        finally:
            if was_training:
                self.train()
        return [self.labels[int(i)] for i in indices]

    def evaluate(self, examples: list[ColumnTypeExample]) -> dict[str, float]:
        predictions = self.predict(examples)
        golds = [e.label for e in examples]
        return {
            "accuracy": accuracy(predictions, golds),
            "macro_f1": macro_f1(predictions, golds),
        }
