"""Shared task machinery: the predict protocol, span pooling, the loop.

Fine-tuning (Fig. 1, pipeline (2)) is identical across tasks: minibatch
examples, compute a task loss on top of encoder representations, Adam-step.
Task modules implement ``loss(examples) -> Tensor`` and plug into
:func:`finetune`.

Consumption (Fig. 1, the serve side) is unified the same way: every task
class implements the :class:`TaskPredictor` protocol —
``predict(examples, *, batch_size) -> list[Prediction]`` — which is the
single contract :mod:`repro.serve` dispatches through.  The shared
:class:`Prediction` record carries the task-specific label (a cell
coordinate, a class id, a value string, a table id, a SQL sketch), a
confidence score, and free-form extras.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from ..nn import Adam, Tensor, clip_gradients
from ..models import TableEncoder
from ..parallel import DataParallelEngine, ParallelConfig, shard_slices
from ..runtime import (
    HealthConfig,
    HealthMonitor,
    TrainingDivergedError,
    TrainRecord,
    emit_train_record,
)

__all__ = [
    "Prediction", "TaskPredictor", "predict_in_batches",
    "FinetuneConfig", "finetune", "pooled_span", "minibatches",
    "minibatch_indices",
]


@dataclass(frozen=True)
class Prediction:
    """One task answer: label, confidence, optional extras.

    ``label`` is task-shaped — ``(row, column)`` for cell-selection QA,
    an ``int`` class for NLI, a value string for imputation, a label
    string for column typing, a table id for retrieval, a
    :class:`~repro.sql.SelectQuery` (or ``None``) for text-to-SQL.
    """

    label: Any
    score: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class TaskPredictor(Protocol):
    """The unified inference contract every task class implements.

    ``predict`` accepts that task's example type, runs in eval mode with
    no autograd tape, chunks work into ``batch_size`` micro-batches, and
    returns one :class:`Prediction` per example, in order.
    """

    task_name: str

    def predict(self, examples: list, *,
                batch_size: int = 16) -> list["Prediction"]:
        ...


def predict_in_batches(module, examples: list, batch_size: int,
                       predict_batch: Callable[[list], list[Prediction]]
                       ) -> list[Prediction]:
    """Standard ``predict`` driver: inference scope + fixed-size chunks.

    The ``module.inference()`` scope is also what routes encoders with
    compiled inference enabled
    (:meth:`~repro.models.TableEncoder.enable_compiled_inference`, see
    ``InferenceEngine(compile=True)``) through their tape-replay
    executor: the encoder's forward template only consults its recorded
    programs while ``is_inference_mode()`` holds, so training-time
    forwards keep building an autograd tape.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    predictions: list[Prediction] = []
    if not examples:
        return predictions
    with module.inference():
        for start in range(0, len(examples), batch_size):
            predictions.extend(predict_batch(examples[start:start + batch_size]))
    return predictions


def deprecated_predict_alias(old_name: str) -> None:
    """Warn that a pre-protocol inference method was called."""
    warnings.warn(
        f"{old_name} is deprecated; use predict(examples) -> list[Prediction] "
        "and read .label from each prediction",
        DeprecationWarning, stacklevel=3)

# How many healthy steps between refreshes of the in-memory rollback
# snapshot the health guard falls back to after a bad-step streak.
_SNAPSHOT_EVERY = 8


@dataclass(frozen=True)
class FinetuneConfig:
    """Hyperparameters of a fine-tuning run."""

    epochs: int = 3
    batch_size: int = 8
    learning_rate: float = 2e-3
    grad_clip: float = 1.0
    seed: int = 0
    freeze_encoder: bool = False
    parallel: ParallelConfig | None = None   # None = legacy fused path

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")


def pooled_span(hidden: Tensor, batch_index: int,
                span: tuple[int, int]) -> Tensor:
    """Mean of hidden states over ``span`` for one batch element, ``(dim,)``.

    Falls back to the [CLS] position for empty spans so downstream heads
    always receive a vector.
    """
    start, end = span
    if end <= start:
        return hidden[batch_index, 0]
    return hidden[batch_index, start:end].mean(axis=0)


def minibatch_indices(count: int, batch_size: int,
                      rng: np.random.Generator | None = None):
    """Yield shuffled (if ``rng``) fixed-size index chunks of ``range(count)``.

    The index form is what the data-parallel path ships to workers —
    forked children index into their inherited example list, so example
    objects never cross a pipe.  ``minibatches`` builds on this, so both
    paths consume the RNG identically.
    """
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        yield [int(i) for i in order[start:start + batch_size]]


def minibatches(items: list, batch_size: int,
                rng: np.random.Generator | None = None):
    """Yield shuffled (if ``rng``) fixed-size chunks of ``items``."""
    for indices in minibatch_indices(len(items), batch_size, rng):
        yield [items[i] for i in indices]


def _capture_snapshot(parameters, optimizer: Adam) -> tuple[list, dict]:
    """Copy the trainable state the health guard can roll back to."""
    return ([p.data.copy() for p in parameters], optimizer.state_dict())


def _restore_snapshot(parameters, optimizer: Adam,
                      snapshot: tuple[list, dict]) -> None:
    arrays, optimizer_state = snapshot
    for param, saved in zip(parameters, arrays):
        param.data[...] = saved
    optimizer.load_state_dict(optimizer_state)


def finetune(task, examples: list, config: FinetuneConfig | None = None,
             encoder: TableEncoder | None = None,
             health: HealthConfig | None = None,
             sanitize: bool = False,
             clock: Callable[[], float] = time.perf_counter
             ) -> list[TrainRecord]:
    """Generic fine-tuning loop; returns the per-step record history.

    Parameters
    ----------
    task:
        Module exposing ``loss(batch_of_examples) -> Tensor`` and
        ``parameters()``.
    encoder:
        When ``config.freeze_encoder`` is set, parameters belonging to this
        encoder are excluded from optimization (linear-probe fine-tuning).
    sanitize:
        Trace one preflight loss before training and run
        :func:`~repro.analysis.sanitize_tape` over its graph (dead
        parameters, untouched ops, float64 creep, NaN-prone fan-out);
        findings are emitted through the runtime metrics registry as
        ``kind="sanitize"`` events.  No optimizer state is touched.
    health:
        Configuration of the numerical-health guard (defaults on).  Steps
        with a NaN/Inf loss or gradient never reach ``Adam.step``; a
        streak of bad steps restores the last in-memory parameter
        snapshot with a reduced learning rate, and a run that keeps
        diverging past ``max_rollbacks`` raises
        :class:`~repro.runtime.TrainingDivergedError`.

    clock:
        Injectable time source for ``record.wall_time`` (defaults to
        ``time.perf_counter``); pass a deterministic clock to make run
        histories byte-comparable.

    Returns
    -------
    One :class:`~repro.runtime.TrainRecord` per optimizer step; the loss
    values previously returned as bare floats live in ``record.loss``,
    and ``record.epoch``/``record.batch_size`` are carried as extras.

    With ``config.parallel`` set, each minibatch is cut into micro-shards
    whose gradients are computed across worker processes and combined by
    the fixed-order tree reduce of :mod:`repro.parallel` — results are
    bit-identical for any worker count.
    """
    config = config or FinetuneConfig()
    if not examples:
        raise ValueError("no fine-tuning examples provided")
    rng = np.random.default_rng(config.seed)

    parameters = list(task.parameters())
    if config.freeze_encoder:
        if encoder is None:
            raise ValueError("freeze_encoder requires the encoder argument")
        frozen = {id(p) for p in encoder.parameters()}
        parameters = [p for p in parameters if id(p) not in frozen]
        if not parameters:
            raise ValueError("freezing the encoder left nothing to train")
    optimizer = Adam(parameters, lr=config.learning_rate)
    monitor = HealthMonitor(health, source="finetune")
    snapshot = _capture_snapshot(parameters, optimizer)
    good_steps = 0

    task.train()
    if sanitize:
        from ..analysis.tape import sanitize_tape, trace_tape

        with trace_tape() as tracer:
            preflight = task.loss(examples[: config.batch_size])
        sanitize_tape(preflight, parameters=task,
                      traced=tracer.nodes).emit()
    engine: DataParallelEngine | None = None
    shard_size = 0
    if config.parallel is not None:
        shard_size = config.parallel.resolve_shard_size(config.batch_size)

        def _shard_loss(payload: tuple[list[int], float]) -> dict:
            indices, weight = payload
            loss = task.loss([examples[i] for i in indices]) * weight
            stats = {"loss": float(loss.data)}
            loss.backward()
            return stats

        engine = DataParallelEngine(parameters, _shard_loss, config.parallel,
                                    health=monitor)

    history: list[TrainRecord] = []
    try:
        for epoch in range(config.epochs):
            for batch_indices in minibatch_indices(
                    len(examples), config.batch_size, rng):
                started = clock()
                optimizer.zero_grad()
                if engine is None:
                    loss = task.loss([examples[i] for i in batch_indices])
                    loss.backward()
                    loss_value = float(loss.data)
                else:
                    # Per-shard losses carry their n_shard/n_batch share
                    # so the unweighted fixed-order reduce reproduces
                    # the fused mean-over-batch objective.
                    payloads = [
                        (batch_indices[rows],
                         len(batch_indices[rows]) / len(batch_indices))
                        for rows in shard_slices(len(batch_indices),
                                                 shard_size)]
                    outcome = engine.step(payloads)
                    engine.load_grads(outcome.grads)
                    loss_value = sum(s["loss"] for s in outcome.stats)
                grad_norm = clip_gradients(parameters, config.grad_clip)
                extras = {"epoch": epoch, "batch_size": len(batch_indices)}
                verdict = monitor.check(len(history), loss_value, grad_norm)
                if verdict.ok:
                    optimizer.step()
                    good_steps += 1
                    if good_steps % _SNAPSHOT_EVERY == 0:
                        snapshot = _capture_snapshot(parameters, optimizer)
                else:
                    extras["skipped"] = 1.0
                    optimizer.zero_grad()
                    if verdict.rollback:
                        if monitor.rollback_exhausted():
                            raise TrainingDivergedError(
                                f"fine-tuning diverged: {monitor.bad_steps} "
                                f"bad steps and {monitor.rollbacks} rollbacks")
                        _restore_snapshot(parameters, optimizer, snapshot)
                        optimizer.lr *= monitor.config.lr_backoff
                        monitor.reset_window()
                record = TrainRecord(
                    step=len(history), loss=loss_value, lr=optimizer.lr,
                    grad_norm=grad_norm,
                    wall_time=clock() - started,
                    extras=extras,
                )
                history.append(record)
                emit_train_record(record, source="finetune")
    finally:
        if engine is not None:
            engine.close()
    task.eval()
    return history
