"""Data imputation — the hands-on session's fine-tuning task (§3.4).

Two formulations are provided, matching how the exercise treats its two
corpora:

- :class:`ValueImputer` — closed-vocabulary cell population: the model
  pools the blanked cell's representation and classifies over the value
  vocabulary observed in training data.  Works for any table (WikiTables
  and GitTables alike); numeric cells make the vocabulary explode, which is
  precisely the numeric-table failure mode E5 measures.
- :class:`EntityImputer` — TURL-style: recover the cell's *entity* with
  the masked-entity-recovery head, available when the encoder is a
  :class:`~repro.models.Turl`.
"""

from __future__ import annotations

import numpy as np

from .common import (
    Prediction,
    deprecated_predict_alias,
    pooled_span,
    predict_in_batches,
)
from ..corpus import ImputationExample
from ..eval import accuracy, macro_f1
from ..models import ClassificationHead, TableEncoder, Turl
from ..nn import Module, Tensor, cross_entropy
from ..pretrain import IGNORE_INDEX

__all__ = ["ValueImputer", "EntityImputer", "build_value_vocabulary",
           "build_value_vocabulary_from_tables"]


def build_value_vocabulary(examples: list[ImputationExample],
                           max_size: int | None = None) -> list[str]:
    """Distinct gold values in frequency order (ties by first appearance)."""
    counts: dict[str, int] = {}
    order: dict[str, int] = {}
    for index, example in enumerate(examples):
        counts[example.answer_text] = counts.get(example.answer_text, 0) + 1
        order.setdefault(example.answer_text, index)
    values = sorted(counts, key=lambda v: (-counts[v], order[v]))
    return values[:max_size] if max_size else values


def build_value_vocabulary_from_tables(tables, max_size: int | None = None,
                                       text_only: bool = False) -> list[str]:
    """Candidate values = distinct cell texts of a training corpus.

    Wider than :func:`build_value_vocabulary` (which only sees blanked
    answers); this is the realistic candidate set an imputation system
    derives from its training tables.
    """
    counts: dict[str, int] = {}
    order: dict[str, int] = {}
    position = 0
    for table in tables:
        for _, _, cell in table.iter_cells():
            if cell.is_empty or (text_only and cell.is_numeric):
                continue
            text = cell.text()
            counts[text] = counts.get(text, 0) + 1
            order.setdefault(text, position)
            position += 1
    values = sorted(counts, key=lambda v: (-counts[v], order[v]))
    return values[:max_size] if max_size else values


class _ImputerBase(Module):
    """Shared blanked-cell preparation and span lookup.

    The blanked cell's tokens are replaced with ``[MASK]`` before the
    forward pass, so the model can tell the *hole to fill* apart from
    cells that are genuinely missing in the data ([EMPTY]).
    """

    def __init__(self, encoder: TableEncoder) -> None:
        super().__init__()
        self.encoder = encoder

    def _encode_examples(self, examples: list[ImputationExample]):
        tables = [e.table for e in examples]
        batch, serialized = self.encoder.batch(tables)
        mask_id = self.encoder.tokenizer.vocab.mask_id
        spans = []
        for i, (e, s) in enumerate(zip(examples, serialized)):
            span = s.cell_spans.get((e.row, e.column), (0, 0))
            spans.append(span)
            start, end = span
            batch.token_ids[i, start:end] = mask_id
        hidden = self.encoder(batch)
        return hidden, spans

    def _infer_pooled(self, examples: list[ImputationExample]) -> Tensor:
        """Pooled blank-span vectors via the cache-aware inference path.

        The ``[MASK]`` substitution happens through ``infer_hidden``'s
        feature hook so the cache key covers the masked span — repeated
        queries against the same (table, cell) hit, different cells of
        the same table do not collide.
        """
        tables = [e.table for e in examples]
        mask_id = self.encoder.tokenizer.vocab.mask_id

        def mask_blank(i, features, serialized):
            example = examples[i]
            start, end = serialized.cell_spans.get(
                (example.row, example.column), (0, 0))
            features.token_ids[start:end] = mask_id

        hidden, serialized = self.encoder.infer_hidden(
            tables, feature_hook=mask_blank)
        spans = [s.cell_spans.get((e.row, e.column), (0, 0))
                 for e, s in zip(examples, serialized)]
        return Tensor.stack(
            [pooled_span(hidden, i, span) for i, span in enumerate(spans)])


class ValueImputer(_ImputerBase):
    """Classify the blanked cell over a closed value vocabulary."""

    task_name = "imputation"

    def __init__(self, encoder: TableEncoder, value_vocabulary: list[str],
                 rng: np.random.Generator) -> None:
        if not value_vocabulary:
            raise ValueError("value vocabulary is empty")
        super().__init__(encoder)
        self.values = list(value_vocabulary)
        self.value_to_id = {v: i for i, v in enumerate(self.values)}
        self.head = ClassificationHead(encoder.config.dim, len(self.values), rng)

    def logits(self, examples: list[ImputationExample]) -> Tensor:
        """Value-vocabulary logits, ``(batch, |vocabulary|)``."""
        hidden, spans = self._encode_examples(examples)
        pooled = Tensor.stack(
            [pooled_span(hidden, i, span) for i, span in enumerate(spans)])
        return self.head(pooled)

    def loss(self, examples: list[ImputationExample]) -> Tensor:
        targets = np.array(
            [self.value_to_id.get(e.answer_text, IGNORE_INDEX) for e in examples],
            dtype=np.int64,
        )
        return cross_entropy(self.logits(examples), targets,
                             ignore_index=IGNORE_INDEX)

    def _predict_batch(self, examples: list[ImputationExample]
                       ) -> list[Prediction]:
        logits = self.head(self._infer_pooled(examples)).data
        probabilities = np.exp(logits - logits.max(axis=-1, keepdims=True))
        probabilities /= probabilities.sum(axis=-1, keepdims=True)
        indices = logits.argmax(axis=-1)
        return [
            Prediction(label=self.values[int(index)],
                       score=float(probabilities[i, index]))
            for i, index in enumerate(indices)
        ]

    def predict(self, examples: list[ImputationExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Predicted value strings with their softmax confidence."""
        return predict_in_batches(self, examples, batch_size,
                                  self._predict_batch)

    def predict_labels(self, examples: list[ImputationExample]) -> list[str]:
        """Deprecated pre-protocol surface: bare value strings."""
        deprecated_predict_alias("ValueImputer.predict_labels")
        return [p.label for p in self.predict(examples)]

    def evaluate(self, examples: list[ImputationExample]) -> dict[str, float]:
        """Accuracy and macro-F1 over gold values (hands-on §3.4 metric)."""
        predictions = [p.label for p in self.predict(examples)]
        golds = [e.answer_text for e in examples]
        return {
            "accuracy": accuracy(predictions, golds),
            "macro_f1": macro_f1(predictions, golds),
            "coverage": float(np.mean([g in self.value_to_id for g in golds]))
            if golds else 0.0,
        }


class EntityImputer(_ImputerBase):
    """Recover the blanked cell's entity with TURL's MER head."""

    task_name = "entity_imputation"

    def __init__(self, encoder: Turl) -> None:
        if not isinstance(encoder, Turl):
            raise TypeError("EntityImputer requires a Turl encoder")
        super().__init__(encoder)

    def _entity_logits(self, examples: list[ImputationExample]) -> Tensor:
        hidden, spans = self._encode_examples(examples)
        pooled = Tensor.stack(
            [pooled_span(hidden, i, span) for i, span in enumerate(spans)])
        return self.encoder.mer_head(pooled)

    def loss(self, examples: list[ImputationExample]) -> Tensor:
        targets = np.array(
            [e.answer_entity_id + 1 if e.answer_entity_id is not None
             else IGNORE_INDEX for e in examples],
            dtype=np.int64,
        )
        return cross_entropy(self._entity_logits(examples), targets,
                             ignore_index=IGNORE_INDEX)

    def _predict_batch(self, examples: list[ImputationExample]
                       ) -> list[Prediction]:
        logits = self.encoder.mer_head(self._infer_pooled(examples)).data
        probabilities = np.exp(logits - logits.max(axis=-1, keepdims=True))
        probabilities /= probabilities.sum(axis=-1, keepdims=True)
        slots = logits.argmax(axis=-1)
        return [
            Prediction(label=int(slot) - 1 if int(slot) > 0 else None,
                       score=float(probabilities[i, slot]))
            for i, slot in enumerate(slots)
        ]

    def predict(self, examples: list[ImputationExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Predicted KB entity ids (``label=None`` for the no-entity slot)."""
        return predict_in_batches(self, examples, batch_size,
                                  self._predict_batch)

    def predict_labels(self, examples: list[ImputationExample]
                       ) -> list[int | None]:
        """Deprecated pre-protocol surface: bare entity ids."""
        deprecated_predict_alias("EntityImputer.predict_labels")
        return [p.label for p in self.predict(examples)]

    def evaluate(self, examples: list[ImputationExample]) -> dict[str, float]:
        scored = [e for e in examples if e.answer_entity_id is not None]
        if not scored:
            return {"accuracy": 0.0, "macro_f1": 0.0}
        predictions = [p.label for p in self.predict(scored)]
        golds = [e.answer_entity_id for e in scored]
        return {
            "accuracy": accuracy(predictions, golds),
            "macro_f1": macro_f1(predictions, golds),
        }
