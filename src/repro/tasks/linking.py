"""Entity linking: grounding table cells in a knowledge base (§2.1).

The survey lists "entity resolution and linking" among the metadata tasks
neural table representations serve; it is TURL's flagship application.
The linker here follows the classic two-stage recipe:

1. **candidate generation** — lexical: KB entities whose names share
   tokens with the cell mention (plus the exact-match fast path);
2. **candidate ranking** — semantic: score each candidate's entity
   embedding against the mention cell's contextual embedding, so row/column
   context disambiguates mentions that share a surface form.

Works zero-shot on a pretrained :class:`~repro.models.Turl` (MER pretraining
shapes exactly this geometry) and improves with fine-tuning via the MER
objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..corpus import Entity, KnowledgeBase
from ..eval import accuracy
from ..models import Turl
from ..nn import no_grad
from ..tables import Table
from ..text import normalize_text, word_tokenize

__all__ = ["LinkingExample", "EntityLinker", "build_linking_dataset"]


@dataclass(frozen=True)
class LinkingExample:
    """One mention cell to be linked to its KB entity."""

    table: Table          # entity annotations stripped from the mention
    row: int
    column: int
    gold_entity_id: int


def build_linking_dataset(tables: list[Table], rng: np.random.Generator,
                          per_table: int = 2) -> list[LinkingExample]:
    """Turn entity-annotated tables into linking examples.

    The chosen mention keeps its surface text but loses its entity
    annotation (that is what the linker must recover); all other cells
    keep their annotations as context.
    """
    examples: list[LinkingExample] = []
    for table in tables:
        annotated = [(r, c, cell) for r, c, cell in table.iter_cells()
                     if cell.entity_id is not None]
        if not annotated:
            continue
        count = min(per_table, len(annotated))
        chosen = rng.choice(len(annotated), size=count, replace=False)
        for index in np.atleast_1d(chosen):
            row, column, cell = annotated[int(index)]
            stripped = table.replace_cell(row, column, cell.value)
            examples.append(LinkingExample(
                table=stripped, row=row, column=column,
                gold_entity_id=cell.entity_id,
            ))
    return examples


class EntityLinker:
    """Lexical candidate generation + embedding-based ranking."""

    def __init__(self, model: Turl, kb: KnowledgeBase,
                 max_candidates: int = 8) -> None:
        if not isinstance(model, Turl):
            raise TypeError("EntityLinker requires a Turl encoder "
                            "(it ranks with the entity embedding table)")
        if max_candidates < 1:
            raise ValueError("max_candidates must be positive")
        self.model = model
        self.kb = kb
        self.max_candidates = max_candidates
        self._token_index: dict[str, list[Entity]] = {}
        self._name_index: dict[str, list[Entity]] = {}
        for entity in kb.entities:
            normalized = normalize_text(entity.name)
            self._name_index.setdefault(normalized, []).append(entity)
            for token in word_tokenize(normalized):
                self._token_index.setdefault(token, []).append(entity)

    # ------------------------------------------------------------------
    def candidates(self, mention: str) -> list[Entity]:
        """Lexically plausible entities for a mention, best first."""
        normalized = normalize_text(mention)
        exact = list(self._name_index.get(normalized, []))
        scores: dict[int, int] = {}
        for token in word_tokenize(normalized):
            for entity in self._token_index.get(token, []):
                scores[entity.entity_id] = scores.get(entity.entity_id, 0) + 1
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        out = exact + [self.kb.entity(eid) for eid, _ in ranked
                       if self.kb.entity(eid) not in exact]
        return out[: self.max_candidates]

    # ------------------------------------------------------------------
    def _mention_vector(self, example: LinkingExample) -> np.ndarray | None:
        with no_grad():
            encoding = self.model.encode(example.table)
        return encoding.cell_embeddings.get((example.row, example.column))

    def link(self, example: LinkingExample) -> int | None:
        """Predicted KB entity id for one mention (None if no candidates)."""
        mention = example.table.cell(example.row, example.column).text()
        candidates = self.candidates(mention)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0].entity_id
        vector = self._mention_vector(example)
        if vector is None:
            return candidates[0].entity_id
        # Entity embedding slot ids are offset by one (0 = no entity).
        table = self.model.entity_embedding.weight.data
        scores = []
        for entity in candidates:
            embedding = table[entity.entity_id + 1]
            denom = (np.linalg.norm(vector) * np.linalg.norm(embedding)) + 1e-9
            scores.append(float(vector @ embedding / denom))
        return candidates[int(np.argmax(scores))].entity_id

    def evaluate(self, examples: list[LinkingExample]) -> dict[str, float]:
        """Linking accuracy plus candidate-recall (the generation ceiling)."""
        predictions = [self.link(e) for e in examples]
        golds = [e.gold_entity_id for e in examples]
        recalled = [
            any(c.entity_id == e.gold_entity_id
                for c in self.candidates(
                    e.table.cell(e.row, e.column).text()))
            for e in examples
        ]
        return {
            "accuracy": accuracy(predictions, golds),
            "candidate_recall": float(np.mean(recalled)) if examples else 0.0,
        }
