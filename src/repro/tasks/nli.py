"""Table NLI / fact verification (TabFact-style, §2.1).

The statement is concatenated as context; a two-way classifier over the
[CLS] representation decides entailed vs refuted.
"""

from __future__ import annotations

import numpy as np

from ..corpus import NLIExample
from ..eval import accuracy, precision_recall_f1
from ..models import ClassificationHead, TableEncoder
from ..nn import Module, Tensor, cross_entropy, no_grad

__all__ = ["NliClassifier"]


class NliClassifier(Module):
    """Binary entailment classifier over (statement, table) pairs."""

    def __init__(self, encoder: TableEncoder, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = encoder
        self.head = ClassificationHead(encoder.config.dim, 2, rng)

    def logits(self, examples: list[NLIExample]) -> Tensor:
        tables = [e.table for e in examples]
        statements = [e.statement for e in examples]
        batch, _ = self.encoder.batch(tables, statements)
        hidden = self.encoder(batch)
        return self.head(hidden[:, 0])

    def loss(self, examples: list[NLIExample]) -> Tensor:
        targets = np.array([e.label for e in examples], dtype=np.int64)
        return cross_entropy(self.logits(examples), targets)

    def predict(self, examples: list[NLIExample]) -> list[int]:
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                predictions = self.logits(examples).data.argmax(axis=-1)
        finally:
            if was_training:
                self.train()
        return [int(p) for p in predictions]

    def evaluate(self, examples: list[NLIExample]) -> dict[str, float]:
        predictions = self.predict(examples)
        golds = [e.label for e in examples]
        precision, recall, f1 = precision_recall_f1(predictions, golds)
        return {
            "accuracy": accuracy(predictions, golds),
            "precision": precision,
            "recall": recall,
            "f1": f1,
        }
