"""Table NLI / fact verification (TabFact-style, §2.1).

The statement is concatenated as context; a two-way classifier over the
[CLS] representation decides entailed vs refuted.
"""

from __future__ import annotations

import numpy as np

from .common import Prediction, deprecated_predict_alias, predict_in_batches
from ..corpus import NLIExample
from ..eval import accuracy, precision_recall_f1
from ..models import ClassificationHead, TableEncoder
from ..nn import Module, Tensor, cross_entropy

__all__ = ["NliClassifier"]


class NliClassifier(Module):
    """Binary entailment classifier over (statement, table) pairs."""

    task_name = "nli"

    def __init__(self, encoder: TableEncoder, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = encoder
        self.head = ClassificationHead(encoder.config.dim, 2, rng)

    def logits(self, examples: list[NLIExample]) -> Tensor:
        tables = [e.table for e in examples]
        statements = [e.statement for e in examples]
        batch, _ = self.encoder.batch(tables, statements)
        hidden = self.encoder(batch)
        return self.head(hidden[:, 0])

    def loss(self, examples: list[NLIExample]) -> Tensor:
        targets = np.array([e.label for e in examples], dtype=np.int64)
        return cross_entropy(self.logits(examples), targets)

    def _predict_batch(self, examples: list[NLIExample]) -> list[Prediction]:
        tables = [e.table for e in examples]
        statements = [e.statement for e in examples]
        hidden, _ = self.encoder.infer_hidden(tables, statements)
        logits = self.head(hidden[:, 0]).data
        probabilities = np.exp(logits - logits.max(axis=-1, keepdims=True))
        probabilities /= probabilities.sum(axis=-1, keepdims=True)
        labels = logits.argmax(axis=-1)
        return [
            Prediction(label=int(label), score=float(probabilities[i, label]),
                       extras={"probabilities": probabilities[i].tolist()})
            for i, label in enumerate(labels)
        ]

    def predict(self, examples: list[NLIExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Entail(1)/refute(0) verdict with its softmax confidence."""
        return predict_in_batches(self, examples, batch_size,
                                  self._predict_batch)

    def predict_labels(self, examples: list[NLIExample]) -> list[int]:
        """Deprecated pre-protocol surface: bare 0/1 labels."""
        deprecated_predict_alias("NliClassifier.predict_labels")
        return [p.label for p in self.predict(examples)]

    def evaluate(self, examples: list[NLIExample]) -> dict[str, float]:
        predictions = [p.label for p in self.predict(examples)]
        golds = [e.label for e in examples]
        precision, recall, f1 = precision_recall_f1(predictions, golds)
        return {
            "accuracy": accuracy(predictions, golds),
            "precision": precision,
            "recall": recall,
            "f1": f1,
        }
