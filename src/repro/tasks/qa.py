"""Cell-selection question answering (the TAPAS demo task of §2.1).

The question rides along as serialization context; a cell-selection head
scores every token, scores are pooled per cell, and the top-scoring cell is
the predicted answer.  Training supervises token scores with binary cross
entropy: tokens inside gold answer cells are positives.
"""

from __future__ import annotations

import numpy as np

from .common import Prediction, deprecated_predict_alias, predict_in_batches
from ..corpus import QAExample
from ..models import CellSelectionHead, TableEncoder, Tapas
from ..nn import Module, Tensor

__all__ = ["CellSelectionQA"]


class CellSelectionQA(Module):
    """Encoder + cell-selection head fine-tuned on QA examples."""

    task_name = "qa"

    def __init__(self, encoder: TableEncoder, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = encoder
        # Reuse TAPAS's built-in head when present so its pretrained
        # parameters carry over; otherwise attach a fresh one.
        if isinstance(encoder, Tapas):
            self.head = encoder.cell_selection
        else:
            self.head = CellSelectionHead(encoder.config.dim, rng)

    # ------------------------------------------------------------------
    def _forward(self, examples: list[QAExample]):
        tables = [e.table for e in examples]
        questions = [e.question for e in examples]
        batch, serialized = self.encoder.batch(tables, questions)
        hidden = self.encoder(batch)
        scores = self.head.token_scores(hidden)
        return scores, serialized

    def loss(self, examples: list[QAExample]) -> Tensor:
        """Binary cross entropy on cell tokens (positives = answer cells)."""
        scores, serialized = self._forward(examples)
        targets = np.zeros(scores.shape)
        weights = np.zeros(scores.shape)
        for i, (example, table) in enumerate(zip(examples, serialized)):
            gold = set(example.answer_coordinates)
            for coord, (start, end) in table.cell_spans.items():
                weights[i, start:end] = 1.0
                if coord in gold:
                    targets[i, start:end] = 1.0
        # Stable masked BCE via logits.
        total_weight = weights.sum()
        if total_weight == 0:
            return scores.sum() * 0.0
        positive = scores.relu() - scores * Tensor(targets)
        softplus = ((-(scores.relu() + (-scores).relu())).exp() + 1.0).log()
        per_token = (positive + softplus) * Tensor(weights)
        return per_token.sum() * (1.0 / total_weight)

    # ------------------------------------------------------------------
    # Inference (TaskPredictor protocol)
    # ------------------------------------------------------------------
    def _predict_batch(self, examples: list[QAExample]) -> list[Prediction]:
        tables = [e.table for e in examples]
        questions = [e.question for e in examples]
        hidden, serialized = self.encoder.infer_hidden(tables, questions)
        scores = self.head.token_scores(hidden)
        predictions: list[Prediction] = []
        for i, table in enumerate(serialized):
            best, best_score = None, -np.inf
            cells = 0
            for coord, (start, end) in table.cell_spans.items():
                if end <= start:
                    continue
                cells += 1
                score = float(scores.data[i, start:end].mean())
                if score > best_score:
                    best, best_score = coord, score
            predictions.append(Prediction(
                label=best, score=0.0 if best is None else best_score,
                extras={"cells_scored": cells}))
        return predictions

    def predict(self, examples: list[QAExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Top-scoring cell per example (``label=None`` without cells)."""
        return predict_in_batches(self, examples, batch_size,
                                  self._predict_batch)

    def predict_labels(self, examples: list[QAExample]
                       ) -> list[tuple[int, int] | None]:
        """Deprecated pre-protocol surface: bare coordinates."""
        deprecated_predict_alias("CellSelectionQA.predict_labels")
        return [p.label for p in self.predict(examples)]

    def evaluate(self, examples: list[QAExample]) -> dict[str, float]:
        """Cell hit rate and denotation-value hit rate."""
        predictions = [p.label for p in self.predict(examples)]
        cell_hits = value_hits = 0
        for example, predicted in zip(examples, predictions):
            if predicted is None:
                continue
            if predicted in set(example.answer_coordinates):
                cell_hits += 1
            predicted_text = example.table.cell(*predicted).text()
            gold_texts = {example.table.cell(r, c).text()
                          for r, c in example.answer_coordinates}
            if predicted_text in gold_texts:
                value_hits += 1
        count = len(examples) or 1
        return {
            "cell_accuracy": cell_hits / count,
            "value_accuracy": value_hits / count,
        }
