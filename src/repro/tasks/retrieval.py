"""Table retrieval with a bi-encoder (§2.1, "Table Retrieval").

Queries and tables are embedded by the *same* encoder (queries ride through
as context-only sequences over an empty table) and trained with in-batch
contrastive loss; ranking is by cosine similarity, evaluated with Hits@k
and MRR.  A BM25-flavoured lexical baseline is included for the E10
comparison.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from .common import Prediction, predict_in_batches
from ..corpus import RetrievalExample
from ..eval import hits_at_k, mean_reciprocal_rank
from ..models import TableEncoder
from ..nn import Module, Tensor, in_batch_contrastive_loss
from ..tables import Table
from ..text import word_tokenize

__all__ = ["BiEncoderRetriever", "LexicalRetriever"]

_EMPTY_TABLE = Table([], [])


class BiEncoderRetriever(Module):
    """Shared-encoder dense retriever over a fixed table corpus."""

    task_name = "retrieval"

    def __init__(self, encoder: TableEncoder,
                 corpus: list[Table] | None = None) -> None:
        super().__init__()
        self.encoder = encoder
        self._tables_by_id: dict[str, Table] = {}
        if corpus is not None:
            self.bind_corpus(corpus)

    def bind_corpus(self, tables: list[Table]) -> None:
        """Register the tables positives are looked up from during training."""
        self._tables_by_id = {t.table_id: t for t in tables}

    # ------------------------------------------------------------------
    def _query_cls(self, queries: list[str]) -> Tensor:
        batch, _ = self.encoder.batch([_EMPTY_TABLE] * len(queries), queries)
        return self.encoder(batch)[:, 0]

    def _table_cls(self, tables: list[Table]) -> Tensor:
        batch, _ = self.encoder.batch(tables)
        return self.encoder(batch)[:, 0]

    def loss(self, examples: list[RetrievalExample]) -> Tensor:
        """In-batch contrastive loss over aligned (query, table) pairs.

        Requires a bound corpus (``bind_corpus``) to resolve positives.
        """
        if not self._tables_by_id:
            raise ValueError("bind_corpus() must be called before training")
        queries = [e.query for e in examples]
        tables = [self._tables_by_id[e.positive_table_id] for e in examples]
        return in_batch_contrastive_loss(self._query_cls(queries),
                                         self._table_cls(tables))

    # ------------------------------------------------------------------
    def index(self, tables: list[Table]) -> tuple[np.ndarray, list[str]]:
        """Embed a corpus; returns (normalized matrix, aligned table ids).

        Runs through the cache-aware inference path, so re-indexing an
        unchanged corpus is free once an encoding cache is attached.
        """
        hidden, _ = self.encoder.infer_hidden(tables)
        vectors = hidden.data[:, 0]
        norms = np.linalg.norm(vectors, axis=-1, keepdims=True) + 1e-9
        return vectors / norms, [t.table_id for t in tables]

    def _query_vectors(self, queries: list[str]) -> np.ndarray:
        hidden, _ = self.encoder.infer_hidden(
            [_EMPTY_TABLE] * len(queries), queries)
        vectors = hidden.data[:, 0]
        return vectors / (np.linalg.norm(vectors, axis=-1, keepdims=True)
                          + 1e-9)

    def rank(self, query: str, index: tuple[np.ndarray, list[str]]) -> list[str]:
        """Corpus table ids sorted by descending cosine similarity."""
        matrix, ids = index
        scores = matrix @ self._query_vectors([query])[0]
        return [ids[i] for i in np.argsort(-scores)]

    # ------------------------------------------------------------------
    # Inference (TaskPredictor protocol)
    # ------------------------------------------------------------------
    def predict(self, examples: list[RetrievalExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Best-matching bound-corpus table per query.

        Requires :meth:`bind_corpus`; ``label`` is the top table id and
        ``extras["ranking"]`` carries the top-5 ids in order.
        """
        if not self._tables_by_id:
            raise ValueError("bind_corpus() must be called before predict")
        index = self.index(list(self._tables_by_id.values()))
        matrix, ids = index

        def rank_batch(chunk: list[RetrievalExample]) -> list[Prediction]:
            vectors = self._query_vectors([e.query for e in chunk])
            scores = vectors @ matrix.T
            predictions = []
            for row in scores:
                order = np.argsort(-row)
                predictions.append(Prediction(
                    label=ids[int(order[0])], score=float(row[order[0]]),
                    extras={"ranking": [ids[int(i)] for i in order[:5]]}))
            return predictions

        return predict_in_batches(self, examples, batch_size, rank_batch)

    def evaluate(self, examples: list[RetrievalExample],
                 tables: list[Table]) -> dict[str, float]:
        index = self.index(tables)
        rankings = [self.rank(e.query, index) for e in examples]
        golds = [e.positive_table_id for e in examples]
        return {
            "hits@1": hits_at_k(rankings, golds, k=1),
            "hits@3": hits_at_k(rankings, golds, k=3),
            "mrr": mean_reciprocal_rank(rankings, golds),
        }


class LexicalRetriever:
    """BM25-style sparse baseline over table text (header+cells+context)."""

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._documents: list[Counter] = []
        self._ids: list[str] = []
        self._document_frequency: Counter = Counter()
        self._average_length = 0.0

    @staticmethod
    def _table_tokens(table: Table) -> list[str]:
        parts = [table.context.text(), " ".join(table.header)]
        parts += [cell.text() for _, _, cell in table.iter_cells()]
        return word_tokenize(" ".join(parts).lower())

    def index(self, tables: list[Table]) -> None:
        self._documents = [Counter(self._table_tokens(t)) for t in tables]
        self._ids = [t.table_id for t in tables]
        self._document_frequency = Counter()
        for doc in self._documents:
            self._document_frequency.update(doc.keys())
        lengths = [sum(doc.values()) for doc in self._documents]
        self._average_length = float(np.mean(lengths)) if lengths else 0.0

    def rank(self, query: str) -> list[str]:
        if not self._documents:
            raise ValueError("index() must be called before rank()")
        n_docs = len(self._documents)
        query_tokens = word_tokenize(query.lower())
        scores = np.zeros(n_docs)
        for i, doc in enumerate(self._documents):
            length = sum(doc.values()) or 1
            for token in query_tokens:
                tf = doc.get(token, 0)
                if not tf:
                    continue
                df = self._document_frequency[token]
                idf = math.log(1 + (n_docs - df + 0.5) / (df + 0.5))
                denom = tf + self.k1 * (1 - self.b + self.b * length / self._average_length)
                scores[i] += idf * tf * (self.k1 + 1) / denom
        return [self._ids[i] for i in np.argsort(-scores)]

    def evaluate(self, examples: list[RetrievalExample],
                 tables: list[Table]) -> dict[str, float]:
        self.index(tables)
        rankings = [self.rank(e.query) for e in examples]
        golds = [e.positive_table_id for e in examples]
        return {
            "hits@1": hits_at_k(rankings, golds, k=1),
            "hits@3": hits_at_k(rankings, golds, k=3),
            "mrr": mean_reciprocal_rank(rankings, golds),
        }
