"""Sketch-based text-to-SQL semantic parsing (§2.1, WikiSQL-style).

The parser fills the sketch ``SELECT [agg](col) [WHERE col = value]``:

- aggregate: classifier over the [CLS] vector;
- select column / condition column: pointer scores over pooled header
  spans (so the architecture adapts to any table width);
- condition presence: binary head on [CLS];
- condition value: pointer scores over the pooled cell spans of the gold
  (training) or predicted (inference) condition column.

Predicted sketches are executed by the symbolic engine, giving the
denotation accuracy the WikiSQL literature reports.
"""

from __future__ import annotations

import numpy as np

from .common import (
    Prediction,
    deprecated_predict_alias,
    pooled_span,
    predict_in_batches,
)
from ..corpus import Text2SqlExample
from ..eval import denotation_accuracy
from ..models import ClassificationHead, TableEncoder
from ..nn import Linear, Module, Tensor, cross_entropy
from ..sql import Aggregate, Comparator, Condition, ExecutionError, SelectQuery, execute

__all__ = ["SketchParser", "SKETCH_AGGREGATES"]

SKETCH_AGGREGATES = (Aggregate.NONE, Aggregate.COUNT, Aggregate.MIN, Aggregate.MAX)


class SketchParser(Module):
    """Pointer-network-style sketch filler on top of a table encoder."""

    task_name = "text2sql"

    def __init__(self, encoder: TableEncoder, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder = encoder
        dim = encoder.config.dim
        self.aggregate_head = ClassificationHead(dim, len(SKETCH_AGGREGATES), rng)
        self.has_condition_head = ClassificationHead(dim, 2, rng)
        self.select_scorer = Linear(dim, 1, rng)
        self.condition_scorer = Linear(dim, 1, rng)
        self.value_scorer = Linear(dim, 1, rng)

    # ------------------------------------------------------------------
    def _encode(self, examples: list[Text2SqlExample]):
        tables = [e.table for e in examples]
        questions = [e.question for e in examples]
        batch, serialized = self.encoder.batch(tables, questions)
        hidden = self.encoder(batch)
        return hidden, serialized

    @staticmethod
    def _header_spans(serialized) -> list[tuple[int, tuple[int, int]]]:
        return sorted(serialized.header_spans.items())

    def _span_logits(self, hidden: Tensor, batch_index: int,
                     spans: list[tuple[int, int]], scorer: Linear) -> Tensor:
        vectors = Tensor.stack(
            [pooled_span(hidden, batch_index, span) for span in spans])
        return scorer(vectors).reshape(len(spans))

    # ------------------------------------------------------------------
    def loss(self, examples: list[Text2SqlExample]) -> Tensor:
        hidden, serialized = self._encode(examples)
        losses: list[Tensor] = []

        agg_targets = np.array(
            [SKETCH_AGGREGATES.index(e.sql.aggregate) for e in examples],
            dtype=np.int64,
        )
        losses.append(cross_entropy(self.aggregate_head(hidden[:, 0]), agg_targets))

        cond_targets = np.array(
            [1 if e.sql.conditions else 0 for e in examples], dtype=np.int64)
        losses.append(cross_entropy(self.has_condition_head(hidden[:, 0]),
                                    cond_targets))

        for i, (example, table) in enumerate(zip(examples, serialized)):
            headers = self._header_spans(table)
            if not headers:
                continue
            columns = [c for c, _ in headers]
            spans = [span for _, span in headers]
            try:
                select_index = columns.index(
                    example.table.column_index(example.sql.select_column))
            except (KeyError, ValueError):
                continue
            select_logits = self._span_logits(hidden, i, spans, self.select_scorer)
            losses.append(cross_entropy(
                select_logits.reshape(1, -1), np.array([select_index])))

            if example.sql.conditions:
                condition = example.sql.conditions[0]
                try:
                    cond_col = example.table.column_index(condition.column)
                    cond_index = columns.index(cond_col)
                except (KeyError, ValueError):
                    continue
                cond_logits = self._span_logits(hidden, i, spans,
                                                self.condition_scorer)
                losses.append(cross_entropy(
                    cond_logits.reshape(1, -1), np.array([cond_index])))

                value_cells = sorted(
                    (row, span) for (row, col), span in table.cell_spans.items()
                    if col == cond_col)
                gold_rows = [r for r, _ in value_cells
                             if example.table.cell(r, cond_col).text()
                             == str(condition.value)]
                if value_cells and gold_rows:
                    value_logits = self._span_logits(
                        hidden, i, [span for _, span in value_cells],
                        self.value_scorer)
                    target = [r for r, _ in value_cells].index(gold_rows[0])
                    losses.append(cross_entropy(
                        value_logits.reshape(1, -1), np.array([target])))

        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        return total * (1.0 / len(losses))

    # ------------------------------------------------------------------
    # Inference (TaskPredictor protocol)
    # ------------------------------------------------------------------
    def _predict_batch(self, examples: list[Text2SqlExample]
                       ) -> list[Prediction]:
        tables = [e.table for e in examples]
        questions = [e.question for e in examples]
        hidden, serialized = self.encoder.infer_hidden(tables, questions)
        predictions: list[Prediction] = []
        for i, (example, table) in enumerate(zip(examples, serialized)):
            headers = self._header_spans(table)
            if not headers:
                predictions.append(Prediction(label=None))
                continue
            columns = [c for c, _ in headers]
            spans = [span for _, span in headers]

            agg_index = int(self.aggregate_head(hidden[i, 0]
                                                .reshape(1, -1)).data.argmax())
            aggregate = SKETCH_AGGREGATES[agg_index]
            select_logits = self._span_logits(hidden, i, spans,
                                              self.select_scorer).data
            select_probs = np.exp(select_logits - select_logits.max())
            select_probs /= select_probs.sum()
            select_index = int(select_logits.argmax())
            select_col = columns[select_index]

            conditions: tuple[Condition, ...] = ()
            has_cond = int(self.has_condition_head(
                hidden[i, 0].reshape(1, -1)).data.argmax())
            if has_cond:
                cond_logits = self._span_logits(hidden, i, spans,
                                                self.condition_scorer).data
                cond_col = columns[int(cond_logits.argmax())]
                value_cells = sorted(
                    (row, span) for (row, col), span
                    in table.cell_spans.items() if col == cond_col)
                if value_cells:
                    value_logits = self._span_logits(
                        hidden, i, [span for _, span in value_cells],
                        self.value_scorer).data
                    row = value_cells[int(value_logits.argmax())][0]
                    value = example.table.cell(row, cond_col).text()
                    conditions = (Condition(
                        example.table.header[cond_col],
                        Comparator.EQ, value),)
            predictions.append(Prediction(
                label=SelectQuery(example.table.header[select_col],
                                  aggregate, conditions),
                score=float(select_probs[select_index])))
        return predictions

    def predict(self, examples: list[Text2SqlExample], *,
                batch_size: int = 16) -> list[Prediction]:
        """Predicted sketches (``label=None`` without named headers).

        ``score`` is the select-column softmax confidence.
        """
        return predict_in_batches(self, examples, batch_size,
                                  self._predict_batch)

    def predict_labels(self, examples: list[Text2SqlExample]
                       ) -> list[SelectQuery | None]:
        """Deprecated pre-protocol surface: bare sketches."""
        deprecated_predict_alias("SketchParser.predict_labels")
        return [p.label for p in self.predict(examples)]

    def evaluate(self, examples: list[Text2SqlExample]) -> dict[str, float]:
        """Sketch exact-match and executed denotation accuracy."""
        predictions = [p.label for p in self.predict(examples)]
        exact = 0
        predicted_denotations, gold_denotations = [], []
        for example, predicted in zip(examples, predictions):
            if predicted == example.sql:
                exact += 1
            if predicted is None:
                predicted_denotations.append(["<none>"])
            else:
                try:
                    predicted_denotations.append(execute(predicted, example.table))
                except ExecutionError:
                    predicted_denotations.append(["<error>"])
            gold_denotations.append(list(example.denotation))
        count = len(examples) or 1
        return {
            "sketch_accuracy": exact / count,
            "denotation_accuracy": denotation_accuracy(
                predicted_denotations, gold_denotations),
        }
