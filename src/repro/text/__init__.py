"""Text substrate: normalization, vocabulary, WordPiece tokenizer."""

from .normalize import normalize_number, normalize_text, word_tokenize
from .tokenizer import WordPieceTokenizer, train_tokenizer
from .vocab import SPECIAL_TOKENS, Vocab

__all__ = [
    "normalize_text", "word_tokenize", "normalize_number",
    "Vocab", "SPECIAL_TOKENS",
    "WordPieceTokenizer", "train_tokenizer",
]
