"""Text normalization and word-level tokenization.

These are the pre-tokenization steps shared by the subword tokenizer, the
content-snapshot row filter and the retrieval lexical baseline.
"""

from __future__ import annotations

import re
import unicodedata

__all__ = ["normalize_text", "word_tokenize", "normalize_number"]

_WORD_RE = re.compile(r"\d+\.\d+|\w+|[^\w\s]")


def normalize_text(text: str) -> str:
    """Lowercase, strip accents, collapse whitespace."""
    text = unicodedata.normalize("NFKD", text)
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    text = text.lower()
    return " ".join(text.split())


def word_tokenize(text: str) -> list[str]:
    """Split into words, decimal numbers and punctuation marks."""
    return _WORD_RE.findall(text)


def normalize_number(value: float | int) -> str:
    """Canonical text for a number: integers without '.0', floats trimmed."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return f"{value:.6g}"
