"""WordPiece-style subword tokenizer trained with BPE merges.

BERT and its tabular descendants all consume subword tokens.  This tokenizer
reproduces the mechanism at small scale: training learns frequent merges
bottom-up from characters; encoding greedily matches the longest known piece,
marking word-internal continuations with the ``##`` prefix.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .normalize import normalize_text, word_tokenize
from .vocab import Vocab

__all__ = ["WordPieceTokenizer", "train_tokenizer"]


class WordPieceTokenizer:
    """Greedy longest-match-first subword tokenizer over a :class:`Vocab`."""

    def __init__(self, vocab: Vocab, max_word_chars: int = 64) -> None:
        self.vocab = vocab
        self.max_word_chars = max_word_chars

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def tokenize_word(self, word: str) -> list[str]:
        """Split one word into subword pieces (``['play', '##ing']``)."""
        if word in self.vocab:
            return [word]
        if len(word) > self.max_word_chars:
            return [self.vocab.unk_token]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [self.vocab.unk_token]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> list[str]:
        """Normalize, word-split and subword-split ``text``."""
        tokens: list[str] = []
        for word in word_tokenize(normalize_text(text)):
            tokens.extend(self.tokenize_word(word))
        return tokens

    def encode(self, text: str) -> list[int]:
        """Token ids for ``text`` (no specials added)."""
        return [self.vocab.id(t) for t in self.tokenize(text)]

    def decode(self, ids: Iterable[int], skip_special: bool = True) -> str:
        """Best-effort inverse of :meth:`encode`."""
        words: list[str] = []
        from .vocab import SPECIAL_TOKENS
        for token_id in ids:
            token = self.vocab.token(int(token_id))
            if skip_special and token in SPECIAL_TOKENS:
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "max_word_chars": self.max_word_chars,
            "tokens": [self.vocab.token(i) for i in range(len(self.vocab))],
        }
        path.write_text(json.dumps(payload, ensure_ascii=False))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "WordPieceTokenizer":
        payload = json.loads(Path(path).read_text())
        from .vocab import SPECIAL_TOKENS
        tokens = payload["tokens"][len(SPECIAL_TOKENS):]
        return cls(Vocab(tokens), max_word_chars=payload["max_word_chars"])


def _word_frequencies(texts: Iterable[str]) -> Counter:
    counts: Counter = Counter()
    for text in texts:
        counts.update(word_tokenize(normalize_text(text)))
    return counts


def train_tokenizer(texts: Iterable[str], vocab_size: int = 2000,
                    min_pair_frequency: int = 2) -> WordPieceTokenizer:
    """Learn a WordPiece vocabulary from raw texts.

    Starts from single characters (word-initial and ``##``-continuation
    forms) and repeatedly merges the most frequent adjacent pair until
    ``vocab_size`` is reached or no pair passes ``min_pair_frequency``.
    """
    word_freq = _word_frequencies(texts)

    # Each word is a sequence of pieces; begin fully split into characters.
    words: list[tuple[list[str], int]] = []
    alphabet: set[str] = set()
    for word, freq in word_freq.items():
        pieces = [word[0]] + ["##" + ch for ch in word[1:]]
        words.append((pieces, freq))
        alphabet.update(pieces)

    vocab_tokens: list[str] = sorted(alphabet)
    budget = vocab_size - len(Vocab()) - len(vocab_tokens)

    merged: list[str] = []
    while budget > 0:
        pair_counts: Counter = Counter()
        for pieces, freq in words:
            for left, right in zip(pieces, pieces[1:]):
                pair_counts[(left, right)] += freq
        if not pair_counts:
            break
        (left, right), freq = pair_counts.most_common(1)[0]
        if freq < min_pair_frequency:
            break
        new_piece = left + right[2:] if right.startswith("##") else left + right
        merged.append(new_piece)
        budget -= 1
        for index, (pieces, word_count) in enumerate(words):
            out: list[str] = []
            i = 0
            while i < len(pieces):
                if i + 1 < len(pieces) and pieces[i] == left and pieces[i + 1] == right:
                    out.append(new_piece)
                    i += 2
                else:
                    out.append(pieces[i])
                    i += 1
            words[index] = (out, word_count)

    return WordPieceTokenizer(Vocab(vocab_tokens + merged))
