"""Vocabulary: token↔id mapping with reserved special tokens.

Besides the BERT specials, the vocabulary reserves *structural* tokens used
by the table serializers ([ROW], [HEADER], [EMPTY]) — the "data structure
aware" input markers the tutorial's Fig. 2b illustrates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = ["Vocab", "SPECIAL_TOKENS"]

PAD, UNK, CLS, SEP, MASK = "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"
ROW, HEADER, EMPTY = "[ROW]", "[HEADER]", "[EMPTY]"
BOS, EOS = "[BOS]", "[EOS]"

SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK, ROW, HEADER, EMPTY, BOS, EOS)


class Vocab:
    """Bidirectional token↔id mapping; ids are dense and start at 0."""

    pad_token, unk_token, cls_token = PAD, UNK, CLS
    sep_token, mask_token = SEP, MASK
    row_token, header_token, empty_token = ROW, HEADER, EMPTY
    bos_token, eos_token = BOS, EOS

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self.add(token)
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Add a token if absent; return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id(self, token: str) -> int:
        """Id of ``token``, falling back to [UNK]."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def token(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    # Convenience ids used throughout the models.
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def row_id(self) -> int:
        return self._token_to_id[ROW]

    @property
    def header_id(self) -> int:
        return self._token_to_id[HEADER]

    @property
    def empty_id(self) -> int:
        return self._token_to_id[EMPTY]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self._id_to_token, ensure_ascii=False))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Vocab":
        tokens = json.loads(Path(path).read_text())
        if tokens[: len(SPECIAL_TOKENS)] != list(SPECIAL_TOKENS):
            raise ValueError("vocabulary file does not start with the reserved specials")
        return cls(tokens[len(SPECIAL_TOKENS):])
