"""Visualization substrate: attention heatmaps, embedding inspection."""

from .attention import attention_entropy, attention_heatmap, top_attended_tokens
from .embeddings import nearest_neighbors, pca_2d, similarity_report
from .explain import (
    CellAttribution,
    attention_attribution,
    explain_scalar,
    gradient_saliency,
    render_attribution,
)

__all__ = [
    "attention_heatmap", "attention_entropy", "top_attended_tokens",
    "nearest_neighbors", "pca_2d", "similarity_report",
    "CellAttribution", "gradient_saliency", "attention_attribution",
    "explain_scalar", "render_attribution",
]
