"""Text-mode attention visualization (hands-on §3.3 "utility code to
visualize the attention weights").

Everything renders to plain strings so it works in any terminal or
notebook without plotting dependencies.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["attention_heatmap", "attention_entropy", "top_attended_tokens"]

_SHADES = " .:-=+*#%@"


def attention_heatmap(weights: np.ndarray, tokens: list[str],
                      max_tokens: int = 24, label_width: int = 10) -> str:
    """ASCII heatmap of one head's attention matrix.

    Parameters
    ----------
    weights:
        Square attention matrix ``(seq, seq)`` with rows summing to 1.
    tokens:
        Token labels, same length as the matrix.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError(f"expected a square matrix, got {weights.shape}")
    if len(tokens) != weights.shape[0]:
        raise ValueError("token count must match matrix size")
    n = min(len(tokens), max_tokens)
    peak = weights[:n, :n].max() or 1.0

    lines = []
    for i in range(n):
        label = tokens[i][:label_width].rjust(label_width)
        row = "".join(
            _SHADES[min(int(weights[i, j] / peak * (len(_SHADES) - 1)),
                        len(_SHADES) - 1)]
            for j in range(n)
        )
        lines.append(f"{label} |{row}|")
    return "\n".join(lines)


def attention_entropy(weights: np.ndarray) -> float:
    """Mean Shannon entropy (nats) of the attention rows.

    Low entropy = focused heads; high entropy = diffuse attention.  Useful
    for contrasting dense vs. masked attention patterns.
    """
    weights = np.asarray(weights)
    rows = weights.reshape(-1, weights.shape[-1])
    safe = np.clip(rows, 1e-12, 1.0)
    entropy = -(safe * np.log(safe)).sum(axis=-1)
    return float(entropy.mean())


def top_attended_tokens(weights: np.ndarray, tokens: list[str],
                        query_index: int, k: int = 5) -> list[tuple[str, float]]:
    """The ``k`` tokens a given query position attends to most."""
    weights = np.asarray(weights)
    if not 0 <= query_index < weights.shape[0]:
        raise IndexError(f"query_index {query_index} out of range")
    row = weights[query_index]
    order = np.argsort(-row)[:k]
    return [(tokens[int(j)], float(row[int(j)])) for j in order]
