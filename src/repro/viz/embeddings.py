"""Embedding inspection utilities: neighbours and 2-D projections."""

from __future__ import annotations

import numpy as np

__all__ = ["nearest_neighbors", "pca_2d", "similarity_report"]


def nearest_neighbors(matrix: np.ndarray, labels: list[str], query_index: int,
                      k: int = 5) -> list[tuple[str, float]]:
    """Top-k cosine neighbours of one row of an embedding matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or len(labels) != matrix.shape[0]:
        raise ValueError("matrix must be (n, d) with matching labels")
    if not 0 <= query_index < matrix.shape[0]:
        raise IndexError("query_index out of range")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True) + 1e-9
    unit = matrix / norms
    scores = unit @ unit[query_index]
    order = [i for i in np.argsort(scores)[::-1] if i != query_index][:k]
    return [(labels[int(i)], float(scores[int(i)])) for i in order]


def pca_2d(matrix: np.ndarray) -> np.ndarray:
    """Project rows onto their top two principal components, ``(n, 2)``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise ValueError("need at least two rows to project")
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:2].T


def similarity_report(matrix: np.ndarray, labels: list[str],
                      k: int = 3) -> str:
    """Multi-line report of each row's nearest neighbours."""
    lines = []
    for index, label in enumerate(labels):
        neighbours = nearest_neighbors(matrix, labels, index, k=k)
        rendered = ", ".join(f"{name} ({score:.2f})" for name, score in neighbours)
        lines.append(f"{label}: {rendered}")
    return "\n".join(lines)
