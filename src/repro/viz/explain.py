"""Model-output justification (§2.4: "model usage remains a black box").

The survey notes only a minority of systems expose a justification of
their output.  This module provides two post-hoc explanation methods for
any :class:`~repro.models.TableEncoder`-based task model:

- **gradient × input saliency** — exact input attribution through the
  autograd tape: how much each input token (and, pooled, each cell)
  contributed to a scalar model output;
- **attention attribution** — mean attention mass a chosen query position
  (e.g. [CLS]) places on each cell, averaged over layers and heads.

Both aggregate token scores into *cell-level* attributions, the unit a
database user reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..models import TableEncoder
from ..nn import Tensor
from ..serialize import BatchedFeatures, SerializedTable
from ..tables import Table

__all__ = ["CellAttribution", "gradient_saliency", "attention_attribution",
           "explain_scalar", "render_attribution"]


@dataclass
class CellAttribution:
    """Per-cell relevance scores for one model decision."""

    table: Table
    scores: dict[tuple[int, int], float]
    method: str

    def top_cells(self, k: int = 3) -> list[tuple[tuple[int, int], float]]:
        """The ``k`` most relevant cells, highest first."""
        ranked = sorted(self.scores.items(), key=lambda item: -item[1])
        return ranked[:k]

    def normalized(self) -> "CellAttribution":
        """Scores rescaled to sum to 1 (if any are positive)."""
        total = sum(max(0.0, s) for s in self.scores.values())
        if total <= 0:
            return self
        return CellAttribution(
            self.table,
            {c: max(0.0, s) / total for c, s in self.scores.items()},
            self.method,
        )


def _pool_token_scores(token_scores: np.ndarray,
                       serialized: SerializedTable) -> dict[tuple[int, int], float]:
    scores: dict[tuple[int, int], float] = {}
    for coord, (start, end) in serialized.cell_spans.items():
        if end > start:
            scores[coord] = float(token_scores[start:end].mean())
    return scores


def explain_scalar(model: TableEncoder, batch: BatchedFeatures,
                   scalar_fn: Callable[[Tensor], Tensor]) -> np.ndarray:
    """Gradient × input saliency per token for one scalar output.

    ``scalar_fn`` maps the encoder hidden states ``(B, T, D)`` to the
    scalar being explained (a logit, a cell score, a similarity).  Returns
    per-token saliency of shape ``(B, T)``.
    """
    was_training = model.training
    model.eval()
    try:
        model.zero_grad()
        embedded = model.embed(batch)
        hidden = model.encoder(embedded, mask=model.attention_mask(batch))
        scalar = scalar_fn(hidden)
        if scalar.data.size != 1:
            raise ValueError("scalar_fn must reduce to a single value")
        scalar.backward(np.ones_like(scalar.data))
        if embedded.grad is None:
            raise RuntimeError("no gradient reached the embeddings")
        inputs = embedded.numpy()
        saliency = np.abs(embedded.grad * inputs).sum(axis=-1)
    finally:
        model.zero_grad()
        if was_training:
            model.train()
    return saliency


def gradient_saliency(model: TableEncoder, table: Table,
                      context: str | None = None,
                      scalar_fn: Callable[[Tensor], Tensor] | None = None
                      ) -> CellAttribution:
    """Cell-level gradient×input attribution for one table.

    By default explains the norm-like scalar ``sum(cls ** 2)`` — "what
    shaped this table's representation"; pass ``scalar_fn`` to explain a
    task output instead (e.g. an NLI logit).
    """
    batch, serialized = model.batch([table], [context])
    if scalar_fn is None:
        def scalar_fn(hidden: Tensor) -> Tensor:  # noqa: F811 - default probe
            cls = hidden[:, 0]
            return (cls * cls).sum()
    token_scores = explain_scalar(model, batch, scalar_fn)[0]
    return CellAttribution(table, _pool_token_scores(token_scores,
                                                     serialized[0]),
                           method="gradient-x-input")


def attention_attribution(model: TableEncoder, table: Table,
                          context: str | None = None,
                          query_index: int = 0) -> CellAttribution:
    """Mean attention a query position pays to each cell.

    ``query_index=0`` explains the [CLS] pooled representation.  Averages
    over all layers and heads of the most recent stack.
    """
    batch, serialized = model.batch([table], [context])
    was_training = model.training
    model.eval()
    try:
        model(batch)
    finally:
        if was_training:
            model.train()
    maps = [m for m in model.encoder.attention_maps() if m is not None]
    if not maps:
        raise RuntimeError("no attention maps recorded")
    stacked = np.stack([m[0] for m in maps])            # (layers, H, T, T)
    row = stacked[:, :, query_index, :].mean(axis=(0, 1))  # (T,)
    return CellAttribution(table, _pool_token_scores(row, serialized[0]),
                           method="attention")


def render_attribution(attribution: CellAttribution, width: int = 14) -> str:
    """ASCII table of cell values annotated with relevance bars."""
    table = attribution.table
    normalized = attribution.normalized()
    peak = max(normalized.scores.values(), default=0.0) or 1.0
    lines = ["  ".join(h[:width].ljust(width) for h in table.header)]
    for r in range(table.num_rows):
        cells = []
        for c in range(table.num_columns):
            text = table.cell(r, c).text()[: width - 5]
            score = normalized.scores.get((r, c), 0.0)
            bars = "▮" * int(round(4 * score / peak))
            cells.append(f"{text} {bars}".ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
