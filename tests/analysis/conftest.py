"""Shared fixtures for the static-analysis suite."""

import pytest

from repro.analysis.checker import build_check_fixture


@pytest.fixture(scope="session")
def check_fixture():
    """(tables, tokenizer, config) — the triple ``repro check`` runs on."""
    return build_check_fixture()


@pytest.fixture(scope="session")
def tables(check_fixture):
    return check_fixture[0]


@pytest.fixture(scope="session")
def tokenizer(check_fixture):
    return check_fixture[1]


@pytest.fixture(scope="session")
def config(check_fixture):
    return check_fixture[2]
