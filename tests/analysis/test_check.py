"""Model-family checking: symbolic walk agrees with real forwards,
``check_all`` is exhaustive and provably static, planted
misconfigurations surface the right edge."""

import numpy as np
import pytest

from repro.analysis import (
    CHECKED_TASKS,
    OpCounter,
    ShapeSpec,
    check_all,
    check_model,
    check_pair,
    infer_shapes,
    numeric_spot_check,
)
from repro.core import create_model
from repro.models import MODEL_CLASSES, EncoderConfig, Tapex
from repro.nn.tensor import set_tape_hook


@pytest.mark.parametrize("model_name", sorted(MODEL_CLASSES))
def test_symbolic_walk_agrees_with_real_forward(model_name, tables,
                                                tokenizer, config):
    """Bound symbolic dims must reproduce the real hidden-state shape."""
    model = create_model(model_name, tokenizer, config=config, seed=0)
    encoder = model.encoder if isinstance(model, Tapex) else model
    batch, _ = encoder.batch(tables)
    real = encoder(batch)

    ids = ShapeSpec(("B", "T"), dtype="int", max_value=config.vocab_size - 1)
    symbolic = infer_shapes(encoder, ids)
    bindings = {"B": batch.token_ids.shape[0], "T": batch.token_ids.shape[1]}
    assert symbolic.concrete_shape(bindings) == real.shape

    if isinstance(model, Tapex):
        # The decoder walk ends at vocabulary logits.
        logits = infer_shapes(model, ids)
        assert logits.shape[-1] == config.vocab_size


def test_check_all_is_exhaustive_and_static():
    counter = OpCounter()
    previous = set_tape_hook(counter)
    try:
        results = check_all()
    finally:
        set_tape_hook(previous)
    assert len(results) == len(MODEL_CLASSES) * len(CHECKED_TASKS)
    assert all(result.ok for result in results), \
        [result.render() for result in results if not result.ok]
    # The whole sweep instantiated every model and task head yet recorded
    # zero autograd ops: validation is static.
    assert counter.forward_ops == 0
    assert counter.backward_ops == 0


def test_planted_role_misconfig_names_the_edge():
    result = check_pair("tapas", "qa",
                        config=EncoderConfig(vocab_size=1, num_roles=2))
    assert not result.ok
    assert "role_embedding" in result.error
    assert "ids may reach 3" in result.error


def test_planted_position_budget_overflow_names_the_edge(tokenizer, config):
    from repro.analysis import ShapeError

    model = create_model("bert", tokenizer, config=config, seed=0)
    # Simulate config drift after construction — the kind of wiring bug a
    # static walk must catch without running a forward pass.
    model.serializer.max_tokens = config.max_position * 2
    ids = ShapeSpec(("B", "T"), dtype="int", max_value=config.vocab_size - 1)
    with pytest.raises(ShapeError, match="serializer budget"):
        infer_shapes(model, ids)


def test_construction_errors_are_reported_not_raised():
    result = check_pair("turl", "imputation",
                        config=EncoderConfig(vocab_size=1, num_entities=0))
    assert not result.ok and result.error.startswith("construction:")


def test_unknown_names_raise_keyerror():
    with pytest.raises(KeyError, match="unknown model"):
        check_pair("bort", "qa")
    with pytest.raises(KeyError, match="unknown task"):
        check_pair("bert", "jousting")
    with pytest.raises(KeyError, match="unknown serializer"):
        check_pair("bert", "qa", serializer_name="interpretive_dance")


def test_check_model_stage_trace_is_rendered(tokenizer, config):
    model = create_model("mate", tokenizer, config=config, seed=0)
    stages = check_model(model)
    names = [name for name, _ in stages]
    assert names[0] == "serialization.token_ids"
    assert names[-1] == "encoder.hidden"


@pytest.mark.parametrize("serializer_name",
                         ["row_major", "column_major", "template", "markdown"])
def test_every_serializer_validates(serializer_name):
    result = check_pair("tapas", "qa", serializer_name=serializer_name)
    assert result.ok, result.render()


def test_numeric_spot_check_passes_on_real_layer(tokenizer, config):
    model = create_model("bert", tokenizer, config=config, seed=0)
    info = numeric_spot_check(model, seed=3)
    assert info["layer"]


def test_render_shapes_for_humans():
    result = check_pair("tabert", "retrieval")
    text = result.render(verbose=True)
    assert "tabert x retrieval" in text
    assert "encoder.hidden" in text
