"""Exit codes and output of ``repro check`` / ``repro lint``."""

import textwrap

import pytest

from repro.cli import main


def test_check_single_pair_exits_zero(capsys):
    assert main(["check", "--model", "tapas", "--task", "qa"]) == 0
    out = capsys.readouterr().out
    assert "ok   tapas x qa" in out
    assert "0 forward ops recorded" in out


def test_check_all_exits_zero(capsys):
    assert main(["check", "--all"]) == 0
    out = capsys.readouterr().out
    assert "checked 48 pair(s): 48 ok, 0 failed" in out


def test_check_rejects_unknown_model(capsys):
    with pytest.raises(SystemExit):
        main(["check", "--model", "bort", "--task", "qa"])


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "src" / "repro" / "ok.py"
    clean.parent.mkdir(parents=True)
    clean.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_violation_exits_one(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(textwrap.dedent("""
        import numpy as np
        def sample(history=[]):
            history.append(np.random.rand())
            return history
    """))
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out and "REPRO003" in out
    assert "finding(s)" in out


def test_lint_select_narrows_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def sample(history=[]):\n    return history\n")
    assert main(["lint", str(bad), "--select", "REPRO001"]) == 0
    assert main(["lint", str(bad), "--select", "REPRO003"]) == 1
